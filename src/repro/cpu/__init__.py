"""Cycle-accurate model of the PARWAN-class multicycle CPU core.

The control unit is an explicit finite-state machine advancing one state per
clock cycle; every memory access is split into an address phase and a data
phase, each one cycle, issued through a :class:`BusPort` so the surrounding
system can route them over the (crosstalk-corruptible) address and data
buses.  This mirrors the timing behaviour the paper relies on (Fig. 5): the
self-test methodology exploits exactly which words appear back-to-back on
each bus during instruction execution.
"""

from repro.cpu.registers import Flags, RegisterFile
from repro.cpu.alu import AluResult, alu_add, alu_and, alu_asl, alu_asr, alu_sub
from repro.cpu.control import ControlState, DecodedOp, decode_raw
from repro.cpu.datapath import BusPort, Cpu
from repro.cpu.microcode import CORES, MICROPROGRAMS, FastCpu, resolve_core

__all__ = [
    "CORES",
    "MICROPROGRAMS",
    "FastCpu",
    "resolve_core",
    "Flags",
    "RegisterFile",
    "AluResult",
    "alu_add",
    "alu_and",
    "alu_asl",
    "alu_asr",
    "alu_sub",
    "ControlState",
    "DecodedOp",
    "decode_raw",
    "BusPort",
    "Cpu",
]
