"""Fast-path microprogram interpreter for the PARWAN-class CPU.

:class:`~repro.cpu.datapath.Cpu` walks the control FSM one
``ControlState`` at a time, paying an enum-keyed dict dispatch, a
``decode_raw`` dataclass allocation per fetch and an ``AluResult``
dataclass per ALU operation on every instruction.  The control sequence
of an instruction, however, is a *static* function of its first byte:
once byte 1 is on the instruction register the remaining states — and
everything each state does — are fixed.

This module exploits that.  At import time every possible first byte is
compiled into a :class:`MicroProgram`: a flat tuple of plain functions
(micro-ops), one per remaining cycle, paired with the ``ControlState``
each one implements.  :class:`FastCpu` then ticks by indexing the
current program — no enum hashing, no decode on the hot path, no result
dataclasses, ``__slots__`` registers, flags packed into a single int
nibble (same bit layout as :meth:`repro.cpu.registers.Flags.as_mask`).

The fast core is *bit-identical* to the FSM core: same bus transactions
on the same cycles, same architectural state, same snapshots.  That
contract is enforced by :mod:`repro.cpu.lockstep` (a differential
harness that co-steps both cores) and by the tier-1 suite running under
``REPRO_FAST_CORE=1``.  The FSM core stays as the readable reference
model; core selection is :func:`resolve_core` (``micro`` / ``fast`` /
``auto``, the latter honouring the ``REPRO_FAST_CORE`` environment
variable and defaulting to ``fast``).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

from repro.cpu.control import ControlState, DecodedOp, OpClass, decode_raw
from repro.cpu.datapath import BusPort, CpuSnapshot
from repro.cpu.registers import Flags, RegisterFile
from repro.isa.instructions import Mnemonic
from repro.soc.bus import TransactionKind

__all__ = [
    "CORES",
    "FastCpu",
    "MICROPROGRAMS",
    "MicroProgram",
    "resolve_core",
]

#: Valid values for the ``core`` parameter threaded through
#: :class:`~repro.soc.system.CpuMemorySystem` and the engine layer.
CORES = ("micro", "fast", "auto")

#: ``REPRO_FAST_CORE`` values that select the FSM reference core.
_SLOW_TOKENS = ("0", "false", "no", "off", "micro")

_PC_MASK = 0xFFF
_AC_MASK = 0xFF

_FETCH = TransactionKind.FETCH
_POINTER = TransactionKind.POINTER_READ
_OPERAND = TransactionKind.OPERAND_READ
_WRITE = TransactionKind.OPERAND_WRITE

# Flag bits, matching Flags.as_mask() so packed values interchange
# freely with the FSM core's dataclass flags.
_FLAG_V = 8
_FLAG_C = 4
_FLAG_Z = 2
_FLAG_N = 1


def resolve_core(core: str = "auto") -> str:
    """Resolve a core selector to a concrete core name.

    ``micro`` is the FSM reference core, ``fast`` the microprogram
    interpreter.  ``auto`` consults ``REPRO_FAST_CORE``: any of
    ``0/false/no/off/micro`` selects the FSM core, everything else
    (including unset) selects the fast core.
    """
    if core not in CORES:
        raise ValueError(f"core must be one of {CORES}, got {core!r}")
    if core != "auto":
        return core
    token = os.environ.get("REPRO_FAST_CORE", "").strip().lower()
    if token in _SLOW_TOKENS:
        return "micro"
    return "fast"


MicroOp = Callable[["FastCpu"], None]


class MicroProgram:
    """The compiled control sequence for one first byte.

    ``steps[i]`` performs the work of control state ``states[i]``; the
    two tuples are parallel.  ``decoded`` is the (shared, precomputed)
    :class:`DecodedOp` the FSM core would produce for the same byte.
    """

    __slots__ = ("steps", "states", "decoded")

    def __init__(
        self,
        steps: Tuple[MicroOp, ...],
        states: Tuple[ControlState, ...],
        decoded: DecodedOp,
    ) -> None:
        if len(steps) != len(states):
            raise ValueError("steps and states must be parallel")
        self.steps = steps
        self.states = states
        self.decoded = decoded


# ---------------------------------------------------------------------------
# Micro-ops.  Each mirrors exactly one FSM handler in datapath.py; the
# comments name the handler so divergences are easy to audit.  Ops that
# end an instruction inline _finish (bump the count, swap back to the
# fetch program); ops that change the program overwrite _program /
# _states / _step after tick()'s pre-increment.
# ---------------------------------------------------------------------------


def _u_fetch1_addr(cpu: "FastCpu") -> None:  # _tick_fetch1_addr
    pc = cpu.pc
    cpu._instruction_start = pc
    cpu.mar = pc
    cpu.port.address_phase(pc, _FETCH)


def _u_fetch1_data(cpu: "FastCpu") -> None:  # _tick_fetch1_data + DEC dispatch
    ir = cpu.port.read_phase(_FETCH)
    cpu.ir = ir
    cpu.pc = (cpu.pc + 1) & _PC_MASK
    entry = MICROPROGRAMS[ir]
    cpu._decoded = entry.decoded
    cpu._program = entry.steps
    cpu._states = entry.states
    cpu._step = 0


def _u_decode(cpu: "FastCpu") -> None:  # _tick_decode (decode precomputed)
    pass


def _u_fetch2_addr(cpu: "FastCpu") -> None:  # _tick_fetch2_addr
    pc = cpu.pc
    cpu.mar = pc
    cpu.port.address_phase(pc, _FETCH)


def _u_fetch2_data_branch(cpu: "FastCpu") -> None:  # _tick_fetch2_data (branch)
    cpu.arg = cpu.port.read_phase(_FETCH)
    cpu.pc = (cpu.pc + 1) & _PC_MASK


def _make_fetch2_data_direct(page_base: int) -> MicroOp:
    def step(cpu: "FastCpu") -> None:  # _tick_fetch2_data (direct memref)
        arg = cpu.port.read_phase(_FETCH)
        cpu.arg = arg
        cpu.pc = (cpu.pc + 1) & _PC_MASK
        cpu._effective_address = page_base | arg

    return step


def _make_fetch2_data_indirect(page_base: int) -> MicroOp:
    def step(cpu: "FastCpu") -> None:  # _tick_fetch2_data (indirect memref)
        arg = cpu.port.read_phase(_FETCH)
        cpu.arg = arg
        cpu.pc = (cpu.pc + 1) & _PC_MASK
        effective = page_base | arg
        cpu._effective_address = effective
        cpu._pointer_address = effective

    return step


def _u_pointer_addr(cpu: "FastCpu") -> None:  # _tick_pointer_addr
    pointer = cpu._pointer_address
    cpu.mar = pointer
    cpu.port.address_phase(pointer, _POINTER)


def _make_pointer_data(page_base: int) -> MicroOp:
    def step(cpu: "FastCpu") -> None:  # _tick_pointer_data
        cpu._effective_address = page_base | cpu.port.read_phase(_POINTER)

    return step


def _u_operand_addr(cpu: "FastCpu") -> None:  # _tick_operand_addr
    effective = cpu._effective_address
    cpu.mar = effective
    cpu.port.address_phase(effective, _OPERAND)


def _u_operand_data(cpu: "FastCpu") -> None:  # _tick_operand_data
    cpu._operand = cpu.port.read_phase(_OPERAND)


def _u_write_addr(cpu: "FastCpu") -> None:  # _tick_write_addr
    effective = cpu._effective_address
    cpu.mar = effective
    cpu.port.address_phase(effective, _WRITE)


def _u_write_data_sta(cpu: "FastCpu") -> None:  # _tick_write_data (STA)
    cpu.port.write_phase(cpu.ac, _WRITE)
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _u_write_data_jsr(cpu: "FastCpu") -> None:  # _tick_write_data (JSR)
    cpu.port.write_phase(cpu.pc & _AC_MASK, _WRITE)
    # falls through to the EXECUTE_JUMP micro-op


def _u_execute_jump_jsr(cpu: "FastCpu") -> None:  # _tick_execute_jump (JSR)
    cpu.pc = (cpu._effective_address + 1) & _PC_MASK
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _u_execute_jump(cpu: "FastCpu") -> None:  # _tick_execute_jump (JMP)
    target = cpu._effective_address
    if target == cpu._instruction_start:
        # Halt convention: a jump to its own first byte.
        cpu.instruction_count += 1
        cpu.halted = True
        cpu._program = _HALT_STEPS
        cpu._states = _HALT_STATES
        cpu._step = 0
        return
    cpu.pc = target
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _make_execute_branch(mask: int) -> MicroOp:
    def step(cpu: "FastCpu") -> None:  # _tick_execute_branch
        if cpu.flags & mask:
            cpu.pc = (cpu.pc & 0xF00) | cpu.arg
        cpu.instruction_count += 1
        cpu._program = _FETCH_STEPS
        cpu._states = _FETCH_STATES
        cpu._step = 0

    return step


def _u_execute_lda(cpu: "FastCpu") -> None:  # _tick_execute_alu (LDA)
    value = cpu._operand & _AC_MASK
    cpu.ac = value
    flags = cpu.flags & (_FLAG_V | _FLAG_C)
    if value == 0:
        flags |= _FLAG_Z
    if value & 0x80:
        flags |= _FLAG_N
    cpu.flags = flags
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _u_execute_and(cpu: "FastCpu") -> None:  # _tick_execute_alu (AND)
    value = cpu.ac & cpu._operand & _AC_MASK
    cpu.ac = value
    flags = cpu.flags & (_FLAG_V | _FLAG_C)
    if value == 0:
        flags |= _FLAG_Z
    if value & 0x80:
        flags |= _FLAG_N
    cpu.flags = flags
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _u_execute_add(cpu: "FastCpu") -> None:  # _tick_execute_alu (ADD)
    a = cpu.ac
    b = cpu._operand & _AC_MASK
    raw = a + b
    value = raw & _AC_MASK
    flags = 0
    if value == 0:
        flags |= _FLAG_Z
    if value & 0x80:
        flags |= _FLAG_N
    if raw > _AC_MASK:
        flags |= _FLAG_C
    if ~(a ^ b) & (a ^ value) & 0x80:
        flags |= _FLAG_V
    cpu.ac = value
    cpu.flags = flags
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _u_execute_sub(cpu: "FastCpu") -> None:  # _tick_execute_alu (SUB)
    a = cpu.ac
    b = cpu._operand & _AC_MASK
    raw = a + ((~b) & _AC_MASK) + 1
    value = raw & _AC_MASK
    flags = 0
    if value == 0:
        flags |= _FLAG_Z
    if value & 0x80:
        flags |= _FLAG_N
    if raw > _AC_MASK:
        flags |= _FLAG_C
    if (a ^ b) & (a ^ value) & 0x80:
        flags |= _FLAG_V
    cpu.ac = value
    cpu.flags = flags
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _u_execute_nop(cpu: "FastCpu") -> None:  # _tick_execute_implied (NOP)
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _u_execute_cla(cpu: "FastCpu") -> None:  # _tick_execute_implied (CLA)
    cpu.ac = 0  # flags untouched, like the FSM core
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _u_execute_cma(cpu: "FastCpu") -> None:  # _tick_execute_implied (CMA)
    value = (~cpu.ac) & _AC_MASK
    cpu.ac = value
    flags = cpu.flags & (_FLAG_V | _FLAG_C)
    if value == 0:
        flags |= _FLAG_Z
    if value & 0x80:
        flags |= _FLAG_N
    cpu.flags = flags
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _u_execute_cmc(cpu: "FastCpu") -> None:  # _tick_execute_implied (CMC)
    cpu.flags ^= _FLAG_C
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _u_execute_asl(cpu: "FastCpu") -> None:  # _tick_execute_implied (ASL)
    a = cpu.ac
    value = (a << 1) & _AC_MASK
    cpu.ac = value
    flags = 0
    if value == 0:
        flags |= _FLAG_Z
    if value & 0x80:
        flags |= _FLAG_N
    if a & 0x80:
        flags |= _FLAG_C
    if (a ^ value) & 0x80:
        flags |= _FLAG_V
    cpu.flags = flags
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _u_execute_asr(cpu: "FastCpu") -> None:  # _tick_execute_implied (ASR)
    a = cpu.ac
    value = (a >> 1) | (a & 0x80)
    cpu.ac = value
    flags = cpu.flags & _FLAG_V
    if value == 0:
        flags |= _FLAG_Z
    if value & 0x80:
        flags |= _FLAG_N
    if a & 0x01:
        flags |= _FLAG_C
    cpu.flags = flags
    cpu.instruction_count += 1
    cpu._program = _FETCH_STEPS
    cpu._states = _FETCH_STATES
    cpu._step = 0


def _u_halted(cpu: "FastCpu") -> None:  # _tick_halted
    cpu._step = 0


_FETCH_STEPS: Tuple[MicroOp, ...] = (_u_fetch1_addr, _u_fetch1_data)
_FETCH_STATES: Tuple[ControlState, ...] = (
    ControlState.FETCH1_ADDR,
    ControlState.FETCH1_DATA,
)
_HALT_STEPS: Tuple[MicroOp, ...] = (_u_halted,)
_HALT_STATES: Tuple[ControlState, ...] = (ControlState.HALTED,)

_EXECUTE_ALU: Dict[Mnemonic, MicroOp] = {
    Mnemonic.LDA: _u_execute_lda,
    Mnemonic.AND: _u_execute_and,
    Mnemonic.ADD: _u_execute_add,
    Mnemonic.SUB: _u_execute_sub,
}
_EXECUTE_IMPLIED: Dict[Mnemonic, MicroOp] = {
    Mnemonic.NOP: _u_execute_nop,
    Mnemonic.CLA: _u_execute_cla,
    Mnemonic.CMA: _u_execute_cma,
    Mnemonic.CMC: _u_execute_cmc,
    Mnemonic.ASL: _u_execute_asl,
    Mnemonic.ASR: _u_execute_asr,
}


def _compile(byte1: int) -> MicroProgram:
    """Compile the post-FETCH1 control sequence for one first byte."""
    decoded = decode_raw(byte1)
    op_class = decoded.op_class

    if op_class is OpClass.IMPLIED:
        execute = _EXECUTE_IMPLIED.get(decoded.mnemonic, _u_execute_nop)
        return MicroProgram(
            steps=(_u_decode, execute),
            states=(ControlState.DECODE, ControlState.EXECUTE_IMPLIED),
            decoded=decoded,
        )

    if op_class is OpClass.BRANCH:
        return MicroProgram(
            steps=(
                _u_decode,
                _u_fetch2_addr,
                _u_fetch2_data_branch,
                _make_execute_branch(decoded.branch_mask),
            ),
            states=(
                ControlState.DECODE,
                ControlState.FETCH2_ADDR,
                ControlState.FETCH2_DATA,
                ControlState.EXECUTE_BRANCH,
            ),
            decoded=decoded,
        )

    # Memory-reference instruction: the page bits of the effective
    # address are baked into the operand-formation closures.
    page_base = decoded.page << 8
    if decoded.indirect:
        steps = [
            _u_decode,
            _u_fetch2_addr,
            _make_fetch2_data_indirect(page_base),
            _u_pointer_addr,
            _make_pointer_data(page_base),
        ]
        states = [
            ControlState.DECODE,
            ControlState.FETCH2_ADDR,
            ControlState.FETCH2_DATA,
            ControlState.POINTER_ADDR,
            ControlState.POINTER_DATA,
        ]
    else:
        steps = [_u_decode, _u_fetch2_addr, _make_fetch2_data_direct(page_base)]
        states = [
            ControlState.DECODE,
            ControlState.FETCH2_ADDR,
            ControlState.FETCH2_DATA,
        ]

    if op_class is OpClass.MEMREF_READ:
        steps += [_u_operand_addr, _u_operand_data, _EXECUTE_ALU[decoded.mnemonic]]
        states += [
            ControlState.OPERAND_ADDR,
            ControlState.OPERAND_DATA,
            ControlState.EXECUTE_ALU,
        ]
    elif op_class is OpClass.MEMREF_WRITE:
        steps += [_u_write_addr, _u_write_data_sta]
        states += [ControlState.WRITE_ADDR, ControlState.WRITE_DATA]
    elif op_class is OpClass.JSR:
        steps += [_u_write_addr, _u_write_data_jsr, _u_execute_jump_jsr]
        states += [
            ControlState.WRITE_ADDR,
            ControlState.WRITE_DATA,
            ControlState.EXECUTE_JUMP,
        ]
    elif op_class is OpClass.JUMP:
        steps += [_u_execute_jump]
        states += [ControlState.EXECUTE_JUMP]
    else:  # pragma: no cover - decode_raw covers every class above
        raise AssertionError(f"unhandled op class {op_class!r}")

    return MicroProgram(steps=tuple(steps), states=tuple(states), decoded=decoded)


#: One compiled microprogram per possible first byte, built at import
#: time — the fast core's whole "decoder".
MICROPROGRAMS: Tuple[MicroProgram, ...] = tuple(_compile(b) for b in range(256))


class FastCpu:
    """Drop-in replacement for :class:`~repro.cpu.datapath.Cpu`.

    Same bus protocol, same snapshot format, same observable state at
    every cycle boundary; only the dispatch machinery differs.  The
    architectural control state is ``self._states[self._step]`` — the
    state the *next* tick will execute, exactly matching the FSM core's
    ``state`` attribute between ticks.
    """

    __slots__ = (
        "port",
        "ac",
        "pc",
        "ir",
        "arg",
        "mar",
        "flags",
        "instruction_count",
        "halted",
        "_program",
        "_states",
        "_step",
        "_decoded",
        "_instruction_start",
        "_effective_address",
        "_pointer_address",
        "_operand",
    )

    def __init__(self, port: BusPort) -> None:
        self.port = port
        self.ac = 0
        self.pc = 0
        self.ir = 0
        self.arg = 0
        self.mar = 0
        self.flags = 0
        self.instruction_count = 0
        self.halted = False
        self._program = _FETCH_STEPS
        self._states = _FETCH_STATES
        self._step = 0
        self._decoded: Optional[DecodedOp] = None
        self._instruction_start = 0
        self._effective_address = 0
        self._pointer_address = 0
        self._operand = 0

    # -- hot path -----------------------------------------------------

    def tick(self) -> None:
        """Advance one clock cycle."""
        step = self._step
        self._step = step + 1
        self._program[step](self)

    def tick_counted(self, occupancy: Dict[ControlState, int]) -> None:
        """Advance one cycle, tallying the state into ``occupancy``."""
        step = self._step
        state = self._states[step]
        occupancy[state] = occupancy.get(state, 0) + 1
        self._step = step + 1
        self._program[step](self)

    # -- FSM-compatible surface ---------------------------------------

    @property
    def state(self) -> ControlState:
        """The control state the next tick will execute."""
        return self._states[self._step]

    @property
    def decoded(self) -> Optional[DecodedOp]:
        """The most recently fetched instruction, if any."""
        return self._decoded

    @property
    def registers(self) -> RegisterFile:
        """A read-only :class:`RegisterFile` view of the packed state."""
        flags = self.flags
        return RegisterFile(
            ac=self.ac,
            pc=self.pc,
            ir=self.ir,
            arg=self.arg,
            mar=self.mar,
            flags=Flags(
                v=bool(flags & _FLAG_V),
                c=bool(flags & _FLAG_C),
                z=bool(flags & _FLAG_Z),
                n=bool(flags & _FLAG_N),
            ),
        )

    def reset(self, pc: int = 0) -> None:
        """Reset architectural state and start fetching at ``pc``.

        Mirrors the FSM core: registers and flags clear, the
        microarchitectural latches keep their values.
        """
        self.ac = 0
        self.pc = pc & _PC_MASK
        self.ir = 0
        self.arg = 0
        self.mar = 0
        self.flags = 0
        self.instruction_count = 0
        self.halted = False
        self._program = _FETCH_STEPS
        self._states = _FETCH_STATES
        self._step = 0
        self._decoded = None

    def snapshot(self) -> CpuSnapshot:
        """Freeze the CPU state (interchangeable with the FSM core's)."""
        return CpuSnapshot(
            registers=self.registers,
            state=self._states[self._step],
            instruction_count=self.instruction_count,
            decoded=self._decoded,
            instruction_start=self._instruction_start,
            effective_address=self._effective_address,
            pointer_address=self._pointer_address,
            operand=self._operand,
        )

    def restore(self, snapshot: CpuSnapshot) -> None:
        """Restore a snapshot taken from either core."""
        registers = snapshot.registers
        self.ac = registers.ac
        self.pc = registers.pc
        self.ir = registers.ir
        self.arg = registers.arg
        self.mar = registers.mar
        self.flags = registers.flags.as_mask()
        self.instruction_count = snapshot.instruction_count
        self._decoded = snapshot.decoded
        self._instruction_start = snapshot.instruction_start
        self._effective_address = snapshot.effective_address
        self._pointer_address = snapshot.pointer_address
        self._operand = snapshot.operand
        state = snapshot.state
        if state is ControlState.HALTED:
            self.halted = True
            self._program = _HALT_STEPS
            self._states = _HALT_STATES
            self._step = 0
            return
        self.halted = False
        if state is ControlState.FETCH1_ADDR or state is ControlState.FETCH1_DATA:
            self._program = _FETCH_STEPS
            self._states = _FETCH_STATES
            self._step = 0 if state is ControlState.FETCH1_ADDR else 1
            return
        # Mid-instruction: IR still holds the first byte, so the state
        # must appear in that byte's microprogram.
        entry = MICROPROGRAMS[self.ir]
        try:
            step = entry.states.index(state)
        except ValueError:
            raise ValueError(
                f"snapshot state {state.value!r} is unreachable for "
                f"instruction byte {self.ir:#04x}"
            ) from None
        self._program = entry.steps
        self._states = entry.states
        self._step = step
