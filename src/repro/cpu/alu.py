"""The 8-bit ALU of the PARWAN-class CPU.

Each operation is a pure function returning an :class:`AluResult` so the
flag behaviour is unit-testable in isolation from the datapath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AluResult:
    """Result word plus the flag values the operation produces.

    ``v``/``c`` are ``None`` for operations that leave those flags
    untouched (e.g. ``AND`` only updates Z and N).
    """

    value: int
    z: bool
    n: bool
    v: Optional[bool] = None
    c: Optional[bool] = None


def _zn(value: int) -> dict:
    return {"z": (value & 0xFF) == 0, "n": bool(value & 0x80)}


def alu_add(a: int, b: int) -> AluResult:
    """8-bit addition with carry and signed-overflow detection."""
    raw = (a & 0xFF) + (b & 0xFF)
    value = raw & 0xFF
    carry = raw > 0xFF
    overflow = bool((~(a ^ b) & (a ^ value)) & 0x80)
    return AluResult(value=value, v=overflow, c=carry, **_zn(value))


def alu_sub(a: int, b: int) -> AluResult:
    """8-bit subtraction ``a - b``.

    Carry is the *no-borrow* convention (C set when ``a >= b`` unsigned),
    overflow is signed overflow of the subtraction.
    """
    raw = (a & 0xFF) + ((~b) & 0xFF) + 1
    value = raw & 0xFF
    carry = raw > 0xFF
    overflow = bool(((a ^ b) & (a ^ value)) & 0x80)
    return AluResult(value=value, v=overflow, c=carry, **_zn(value))


def alu_and(a: int, b: int) -> AluResult:
    """Bitwise AND; updates only Z and N."""
    value = (a & b) & 0xFF
    return AluResult(value=value, **_zn(value))


def alu_asl(a: int) -> AluResult:
    """Arithmetic shift left.

    C receives the bit shifted out; V flags a sign change (the shifted
    value's sign differs from the original's).
    """
    value = (a << 1) & 0xFF
    carry = bool(a & 0x80)
    overflow = bool((a ^ value) & 0x80)
    return AluResult(value=value, v=overflow, c=carry, **_zn(value))


def alu_asr(a: int) -> AluResult:
    """Arithmetic shift right (sign-preserving); C receives the bit
    shifted out."""
    value = ((a >> 1) | (a & 0x80)) & 0xFF
    carry = bool(a & 0x01)
    return AluResult(value=value, c=carry, **_zn(value))


def alu_complement(a: int) -> AluResult:
    """One's complement (CMA); updates only Z and N."""
    value = (~a) & 0xFF
    return AluResult(value=value, **_zn(value))
