"""The CPU datapath: executes one control state per clock tick.

The datapath never touches memory directly — every access goes through a
:class:`BusPort` provided by the surrounding system, split into an address
phase and a data phase on consecutive cycles.  This is what lets the
defect-simulation environment corrupt the address word and the data word of
the *same* access independently, exactly as the paper's HDL simulation does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpu.alu import (
    alu_add,
    alu_and,
    alu_asl,
    alu_asr,
    alu_complement,
    alu_sub,
    AluResult,
)
from repro.cpu.control import (
    ControlState,
    DecodedOp,
    OpClass,
    decode_raw,
    state_after_decode,
    state_after_operand_formed,
)
from repro.cpu.registers import RegisterFile
from repro.isa.encoding import make_address, page_of
from repro.isa.instructions import Mnemonic
from repro.soc.bus import TransactionKind


class BusPort:
    """Interface the CPU uses to reach the system buses.

    ``address_phase`` drives the address bus; the following ``read_phase``
    or ``write_phase`` moves the data word for that access.  Implementations
    must apply the *received* (possibly corrupted) address when servicing
    the data phase.
    """

    def address_phase(self, address: int, kind: TransactionKind) -> None:
        raise NotImplementedError

    def read_phase(self, kind: TransactionKind) -> int:
        raise NotImplementedError

    def write_phase(self, value: int, kind: TransactionKind) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class CpuSnapshot:
    """Complete architectural + control state of a :class:`Cpu`.

    ``decoded`` may be shared with the live CPU — :class:`DecodedOp` is
    frozen, so sharing is safe.  Everything else is copied.
    """

    registers: RegisterFile
    state: ControlState
    instruction_count: int
    decoded: Optional[DecodedOp]
    instruction_start: int
    effective_address: int
    pointer_address: int
    operand: int


class Cpu:
    """PARWAN-class multicycle CPU.

    Call :meth:`tick` once per clock cycle.  The CPU halts when it executes
    a ``JMP`` targeting its own first byte (the conventional self-loop end
    of a self-test program); :attr:`halted` then stays true until
    :meth:`reset`.
    """

    def __init__(self, port: BusPort):
        self.port = port
        self.registers = RegisterFile()
        self.state = ControlState.FETCH1_ADDR
        self.instruction_count = 0
        self._decoded: Optional[DecodedOp] = None
        self._instruction_start = 0
        self._effective_address = 0
        self._pointer_address = 0
        self._operand = 0

    # -- observability ----------------------------------------------------

    @property
    def halted(self) -> bool:
        """True once the halt convention (self-loop JMP) was executed."""
        return self.state is ControlState.HALTED

    @property
    def decoded(self) -> Optional[DecodedOp]:
        """The currently-executing decoded instruction (None mid-fetch)."""
        return self._decoded

    def reset(self, pc: int = 0) -> None:
        """Reset architectural state and restart fetching at ``pc``."""
        self.registers = RegisterFile()
        self.registers.write_pc(pc)
        self.state = ControlState.FETCH1_ADDR
        self.instruction_count = 0
        self._decoded = None

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> CpuSnapshot:
        """Capture the complete CPU state, mid-instruction included.

        The control FSM state and the microarchitectural latches are part
        of the snapshot, so a restore may land between the cycles of one
        instruction and execution still continues exactly.
        """
        return CpuSnapshot(
            registers=self.registers.snapshot(),
            state=self.state,
            instruction_count=self.instruction_count,
            decoded=self._decoded,
            instruction_start=self._instruction_start,
            effective_address=self._effective_address,
            pointer_address=self._pointer_address,
            operand=self._operand,
        )

    def restore(self, snapshot: CpuSnapshot) -> None:
        """Overwrite the CPU state with a previously captured snapshot."""
        self.registers.restore(snapshot.registers)
        self.state = snapshot.state
        self.instruction_count = snapshot.instruction_count
        self._decoded = snapshot.decoded
        self._instruction_start = snapshot.instruction_start
        self._effective_address = snapshot.effective_address
        self._pointer_address = snapshot.pointer_address
        self._operand = snapshot.operand

    # -- execution ----------------------------------------------------------

    def tick(self) -> None:
        """Advance the control unit by one clock cycle."""
        handler = self._HANDLERS[self.state]
        handler(self)

    def tick_counted(self, occupancy: dict) -> None:
        """:meth:`tick`, also tallying FSM-state occupancy.

        The observed run loop (``CpuMemorySystem`` under full-detail
        observability) uses this variant so the plain :meth:`tick` hot
        path carries no per-cycle accounting when telemetry is off.
        """
        state = self.state
        occupancy[state] = occupancy.get(state, 0) + 1
        self._HANDLERS[state](self)

    def _tick_fetch1_addr(self) -> None:
        registers = self.registers
        self._instruction_start = registers.pc
        registers.mar = registers.pc
        self.port.address_phase(registers.pc, TransactionKind.FETCH)
        self.state = ControlState.FETCH1_DATA

    def _tick_fetch1_data(self) -> None:
        registers = self.registers
        registers.ir = self.port.read_phase(TransactionKind.FETCH)
        registers.advance_pc()
        self._decoded = decode_raw(registers.ir)
        self.state = ControlState.DECODE

    def _tick_decode(self) -> None:
        self.state = state_after_decode(self._decoded)

    def _tick_fetch2_addr(self) -> None:
        registers = self.registers
        registers.mar = registers.pc
        self.port.address_phase(registers.pc, TransactionKind.FETCH)
        self.state = ControlState.FETCH2_DATA

    def _tick_fetch2_data(self) -> None:
        registers = self.registers
        registers.arg = self.port.read_phase(TransactionKind.FETCH)
        registers.advance_pc()
        decoded = self._decoded
        if decoded.op_class is OpClass.BRANCH:
            self.state = state_after_operand_formed(decoded)
            return
        self._effective_address = make_address(decoded.page, registers.arg)
        if decoded.indirect:
            self._pointer_address = self._effective_address
            self.state = ControlState.POINTER_ADDR
        else:
            self.state = state_after_operand_formed(decoded)

    def _tick_pointer_addr(self) -> None:
        self.registers.mar = self._pointer_address
        self.port.address_phase(self._pointer_address, TransactionKind.POINTER_READ)
        self.state = ControlState.POINTER_DATA

    def _tick_pointer_data(self) -> None:
        pointer_byte = self.port.read_phase(TransactionKind.POINTER_READ)
        self._effective_address = make_address(self._decoded.page, pointer_byte)
        self.state = state_after_operand_formed(self._decoded)

    def _tick_operand_addr(self) -> None:
        self.registers.mar = self._effective_address
        self.port.address_phase(self._effective_address, TransactionKind.OPERAND_READ)
        self.state = ControlState.OPERAND_DATA

    def _tick_operand_data(self) -> None:
        self._operand = self.port.read_phase(TransactionKind.OPERAND_READ)
        self.state = ControlState.EXECUTE_ALU

    def _tick_execute_alu(self) -> None:
        registers = self.registers
        mnemonic = self._decoded.mnemonic
        if mnemonic is Mnemonic.LDA:
            registers.write_ac(self._operand)
            registers.flags.set_zn(registers.ac)
        elif mnemonic is Mnemonic.AND:
            self._apply_alu(alu_and(registers.ac, self._operand))
        elif mnemonic is Mnemonic.ADD:
            self._apply_alu(alu_add(registers.ac, self._operand))
        elif mnemonic is Mnemonic.SUB:
            self._apply_alu(alu_sub(registers.ac, self._operand))
        self._finish_instruction()

    def _tick_write_addr(self) -> None:
        self.registers.mar = self._effective_address
        self.port.address_phase(self._effective_address, TransactionKind.OPERAND_WRITE)
        self.state = ControlState.WRITE_DATA

    def _tick_write_data(self) -> None:
        decoded = self._decoded
        if decoded.op_class is OpClass.JSR:
            # Save the 8-bit return offset at the target, then jump past it.
            self.port.write_phase(
                self.registers.pc & 0xFF, TransactionKind.OPERAND_WRITE
            )
            self.state = ControlState.EXECUTE_JUMP
        else:  # STA
            self.port.write_phase(self.registers.ac, TransactionKind.OPERAND_WRITE)
            self._finish_instruction()

    def _tick_execute_jump(self) -> None:
        decoded = self._decoded
        if decoded.op_class is OpClass.JSR:
            self.registers.write_pc(self._effective_address + 1)
            self._finish_instruction()
            return
        target = self._effective_address
        if target == self._instruction_start:
            # Halt convention: a JMP to its own first byte is a self-loop.
            self.instruction_count += 1
            self.state = ControlState.HALTED
            return
        self.registers.write_pc(target)
        self._finish_instruction()

    def _tick_execute_branch(self) -> None:
        registers = self.registers
        if registers.flags.matches(self._decoded.branch_mask):
            registers.write_pc(make_address(page_of(registers.pc), registers.arg))
        self._finish_instruction()

    def _tick_execute_implied(self) -> None:
        registers = self.registers
        mnemonic = self._decoded.mnemonic
        if mnemonic is Mnemonic.CLA:
            registers.write_ac(0)
        elif mnemonic is Mnemonic.CMA:
            self._apply_alu(alu_complement(registers.ac))
        elif mnemonic is Mnemonic.CMC:
            registers.flags.c = not registers.flags.c
        elif mnemonic is Mnemonic.ASL:
            self._apply_alu(alu_asl(registers.ac))
        elif mnemonic is Mnemonic.ASR:
            self._apply_alu(alu_asr(registers.ac))
        # NOP (and undefined sub-opcodes decoded as NOP): nothing to do.
        self._finish_instruction()

    def _tick_halted(self) -> None:
        # Remain halted; the system stops clocking a halted CPU anyway.
        return

    def _apply_alu(self, result: AluResult) -> None:
        registers = self.registers
        registers.write_ac(result.value)
        registers.flags.z = result.z
        registers.flags.n = result.n
        if result.v is not None:
            registers.flags.v = result.v
        if result.c is not None:
            registers.flags.c = result.c

    def _finish_instruction(self) -> None:
        self.instruction_count += 1
        self.state = ControlState.FETCH1_ADDR

    _HANDLERS = {
        ControlState.FETCH1_ADDR: _tick_fetch1_addr,
        ControlState.FETCH1_DATA: _tick_fetch1_data,
        ControlState.DECODE: _tick_decode,
        ControlState.FETCH2_ADDR: _tick_fetch2_addr,
        ControlState.FETCH2_DATA: _tick_fetch2_data,
        ControlState.POINTER_ADDR: _tick_pointer_addr,
        ControlState.POINTER_DATA: _tick_pointer_data,
        ControlState.OPERAND_ADDR: _tick_operand_addr,
        ControlState.OPERAND_DATA: _tick_operand_data,
        ControlState.WRITE_ADDR: _tick_write_addr,
        ControlState.WRITE_DATA: _tick_write_data,
        ControlState.EXECUTE_ALU: _tick_execute_alu,
        ControlState.EXECUTE_JUMP: _tick_execute_jump,
        ControlState.EXECUTE_BRANCH: _tick_execute_branch,
        ControlState.EXECUTE_IMPLIED: _tick_execute_implied,
        ControlState.HALTED: _tick_halted,
    }
