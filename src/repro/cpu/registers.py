"""Architectural registers and status flags of the PARWAN-class CPU."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import ADDR_BITS, DATA_BITS

_AC_MASK = (1 << DATA_BITS) - 1
_PC_MASK = (1 << ADDR_BITS) - 1


@dataclass
class Flags:
    """The V, C, Z, N status flags.

    The branch instructions select flags with a 4-bit mask whose bit 3 is V,
    bit 2 is C, bit 1 is Z and bit 0 is N (matching the instruction
    encoding in :mod:`repro.isa.instructions`).
    """

    v: bool = False
    c: bool = False
    z: bool = False
    n: bool = False

    def as_mask(self) -> int:
        """Pack the flags into the branch-condition nibble layout."""
        return (
            (8 if self.v else 0)
            | (4 if self.c else 0)
            | (2 if self.z else 0)
            | (1 if self.n else 0)
        )

    def matches(self, mask: int) -> bool:
        """True if any flag selected by ``mask`` is set (branch condition)."""
        return bool(self.as_mask() & mask)

    def snapshot(self) -> "Flags":
        """An independent copy of the current flag values."""
        return Flags(v=self.v, c=self.c, z=self.z, n=self.n)

    def restore(self, snapshot: "Flags") -> None:
        """Overwrite the flags with a previously captured snapshot."""
        self.v = snapshot.v
        self.c = snapshot.c
        self.z = snapshot.z
        self.n = snapshot.n

    def set_zn(self, value: int) -> None:
        """Update Z and N from an 8-bit result."""
        self.z = (value & _AC_MASK) == 0
        self.n = bool(value & 0x80)


@dataclass
class RegisterFile:
    """Programmer-visible and microarchitectural registers.

    ``ac``  accumulator (8 bits)
    ``pc``  program counter (12 bits)
    ``ir``  instruction register, first instruction byte (8 bits)
    ``arg`` second instruction byte (8 bits)
    ``mar`` memory address register (12 bits) — the last address the CPU
            *intended* to drive (the bus may deliver a corrupted one).
    """

    ac: int = 0
    pc: int = 0
    ir: int = 0
    arg: int = 0
    mar: int = 0
    flags: Flags = field(default_factory=Flags)

    def write_ac(self, value: int) -> None:
        """Clamp and store an accumulator value."""
        self.ac = value & _AC_MASK

    def write_pc(self, value: int) -> None:
        """Clamp and store a program-counter value."""
        self.pc = value & _PC_MASK

    def advance_pc(self) -> None:
        """Increment the program counter with 12-bit wraparound."""
        self.write_pc(self.pc + 1)

    def snapshot(self) -> "RegisterFile":
        """An independent copy of the whole register file.

        The returned object shares nothing with the live one; treat it
        as immutable (it backs checkpoint/restore in the defect
        simulator's screened engine).
        """
        return RegisterFile(
            ac=self.ac,
            pc=self.pc,
            ir=self.ir,
            arg=self.arg,
            mar=self.mar,
            flags=self.flags.snapshot(),
        )

    def restore(self, snapshot: "RegisterFile") -> None:
        """Overwrite every register with a previously captured snapshot."""
        self.ac = snapshot.ac
        self.pc = snapshot.pc
        self.ir = snapshot.ir
        self.arg = snapshot.arg
        self.mar = snapshot.mar
        self.flags.restore(snapshot.flags)
