"""Control-unit state machine definitions and raw instruction decoding.

The control unit advances exactly one :class:`ControlState` per clock
cycle.  Memory accesses occupy two states each (an address phase and a data
phase), giving the instruction timings below — these are the cycle costs
used when the paper-style "total execution cycles" numbers are reported:

===================  =========================================  ======
instruction          state sequence                             cycles
===================  =========================================  ======
implied (NOP, ...)   F1A F1D DEC EXI                               4
JMP                  F1A F1D DEC F2A F2D EXJ                       6
branch               F1A F1D DEC F2A F2D EXB                       6
LDA/AND/ADD/SUB      F1A F1D DEC F2A F2D OPA OPD EXA               8
STA                  F1A F1D DEC F2A F2D WRA WRD                   7
JSR                  F1A F1D DEC F2A F2D WRA WRD EXJ               8
indirect variants    + PTA PTD (pointer fetch)                    +2
===================  =========================================  ======

Decoding here is *permissive*, mirroring hardware: every 8-bit value is a
valid first byte (undefined implied sub-opcodes fall back to NOP; any
branch condition mask is honoured as a flag-OR; the indirect bit of JSR is
ignored).  This matters for defect simulation: a crosstalk-corrupted opcode
fetch must do *something* deterministic, not raise a Python error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.instructions import IMPLIED_SUBOPS, MEMREF_OPCODES, Mnemonic

_IMPLIED_BY_SUBOP = {sub: m for m, sub in IMPLIED_SUBOPS.items()}
_MEMREF_BY_OPCODE = {code: m for m, code in MEMREF_OPCODES.items()}


class ControlState(enum.Enum):
    """States of the multicycle control FSM (one state per cycle)."""

    FETCH1_ADDR = "f1a"
    FETCH1_DATA = "f1d"
    DECODE = "dec"
    FETCH2_ADDR = "f2a"
    FETCH2_DATA = "f2d"
    POINTER_ADDR = "pta"
    POINTER_DATA = "ptd"
    OPERAND_ADDR = "opa"
    OPERAND_DATA = "opd"
    WRITE_ADDR = "wra"
    WRITE_DATA = "wrd"
    EXECUTE_ALU = "exa"
    EXECUTE_JUMP = "exj"
    EXECUTE_BRANCH = "exb"
    EXECUTE_IMPLIED = "exi"
    HALTED = "halt"


class OpClass(enum.Enum):
    """Coarse instruction classes used by the control sequencing."""

    MEMREF_READ = "memref_read"  # LDA, AND, ADD, SUB
    MEMREF_WRITE = "memref_write"  # STA
    JUMP = "jump"  # JMP
    JSR = "jsr"
    BRANCH = "branch"
    IMPLIED = "implied"


@dataclass(frozen=True)
class DecodedOp:
    """Raw-decoded first instruction byte.

    ``page`` is meaningful for MEMREF classes, ``branch_mask`` for BRANCH
    and ``mnemonic`` for MEMREF/IMPLIED (branches keep the mask instead,
    because a corrupted fetch may produce a multi-condition mask that has
    no mnemonic).
    """

    op_class: OpClass
    mnemonic: Mnemonic
    indirect: bool = False
    page: int = 0
    branch_mask: int = 0

    @property
    def two_bytes(self) -> bool:
        """True for two-byte instructions."""
        return self.op_class is not OpClass.IMPLIED


def decode_raw(byte1: int) -> DecodedOp:
    """Permissively decode a first instruction byte (never raises)."""
    byte1 &= 0xFF
    top = byte1 >> 4
    if top == 0b1111:
        mnemonic = _IMPLIED_BY_SUBOP.get(byte1 & 0x0F, Mnemonic.NOP)
        return DecodedOp(op_class=OpClass.IMPLIED, mnemonic=mnemonic)
    if top == 0b1110:
        return DecodedOp(
            op_class=OpClass.BRANCH,
            mnemonic=Mnemonic.BRA_Z,  # placeholder; the mask is authoritative
            branch_mask=byte1 & 0x0F,
        )
    opcode = byte1 >> 5
    mnemonic = _MEMREF_BY_OPCODE[opcode]
    indirect = bool(byte1 & 0x10)
    page = byte1 & 0x0F
    if mnemonic is Mnemonic.JSR:
        return DecodedOp(OpClass.JSR, mnemonic, indirect=False, page=page)
    if mnemonic is Mnemonic.JMP:
        return DecodedOp(OpClass.JUMP, mnemonic, indirect=indirect, page=page)
    if mnemonic is Mnemonic.STA:
        return DecodedOp(OpClass.MEMREF_WRITE, mnemonic, indirect=indirect, page=page)
    return DecodedOp(OpClass.MEMREF_READ, mnemonic, indirect=indirect, page=page)


def state_after_decode(op: DecodedOp) -> ControlState:
    """First state following DECODE for the decoded instruction."""
    if op.op_class is OpClass.IMPLIED:
        return ControlState.EXECUTE_IMPLIED
    return ControlState.FETCH2_ADDR


def state_after_operand_formed(op: DecodedOp) -> ControlState:
    """State entered once the effective address is available.

    Called after FETCH2_DATA (direct) or POINTER_DATA (indirect).
    """
    if op.op_class is OpClass.MEMREF_READ:
        return ControlState.OPERAND_ADDR
    if op.op_class in (OpClass.MEMREF_WRITE, OpClass.JSR):
        return ControlState.WRITE_ADDR
    if op.op_class is OpClass.JUMP:
        return ControlState.EXECUTE_JUMP
    return ControlState.EXECUTE_BRANCH


#: Base cycle cost per instruction class (the table at the top of this
#: module); indirect addressing adds :data:`INDIRECT_EXTRA_CYCLES` for
#: the pointer fetch (PTA + PTD).
CYCLES_BY_CLASS = {
    OpClass.IMPLIED: 4,
    OpClass.JUMP: 6,
    OpClass.BRANCH: 6,
    OpClass.MEMREF_READ: 8,
    OpClass.MEMREF_WRITE: 7,
    OpClass.JSR: 8,
}

INDIRECT_EXTRA_CYCLES = 2

#: Coarse activity category of each FSM state, used by observability to
#: report bounded-cardinality occupancy (``cpu.state_class.fetch`` ...)
#: alongside the full per-state table in ``detail="full"`` mode.
STATE_CATEGORIES = {
    ControlState.FETCH1_ADDR: "fetch",
    ControlState.FETCH1_DATA: "fetch",
    ControlState.DECODE: "decode",
    ControlState.FETCH2_ADDR: "fetch",
    ControlState.FETCH2_DATA: "fetch",
    ControlState.POINTER_ADDR: "memory",
    ControlState.POINTER_DATA: "memory",
    ControlState.OPERAND_ADDR: "memory",
    ControlState.OPERAND_DATA: "memory",
    ControlState.WRITE_ADDR: "memory",
    ControlState.WRITE_DATA: "memory",
    ControlState.EXECUTE_ALU: "execute",
    ControlState.EXECUTE_JUMP: "execute",
    ControlState.EXECUTE_BRANCH: "execute",
    ControlState.EXECUTE_IMPLIED: "execute",
    ControlState.HALTED: "halted",
}


def expected_cycles(op: DecodedOp) -> int:
    """Cycle cost of one instruction under this control unit."""
    base = CYCLES_BY_CLASS[op.op_class]
    return base + (INDIRECT_EXTRA_CYCLES if op.indirect else 0)
