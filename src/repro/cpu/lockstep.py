"""Lockstep differential harness for the two CPU cores.

:func:`run_lockstep` builds two identical :class:`CpuMemorySystem`
instances — one on the FSM reference core (``micro``), one on the
microprogram interpreter (``fast``) — loads the same memory image into
both, and clocks them *one cycle at a time*, diffing after every cycle:

* every bus transaction either system emitted that cycle (both buses,
  full :class:`BusTransaction` equality — kind, direction, previous,
  driven, received, cycle stamp);
* the halt flag;
* optionally the complete CPU snapshot (registers, flags, control
  state, mid-instruction latches).

On the first difference it raises :class:`LockstepDivergence` carrying
the cycle number and a description of the mismatch, which makes the
failure actionable (the divergent cycle, not just "traces differ").
A shared corruption hook can be installed on one bus of *both* systems
so the equivalence is exercised under defect injection too.

This is the enforcement mechanism behind the fast core's bit-identical
contract; the tier-1 suite and ``benchmarks/bench_fast_core.py`` call
it, and the hypothesis property test feeds it random images (every
byte decodes — the decoder is total — so arbitrary memory is a valid
program).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from repro.isa.instructions import MEMORY_SIZE
from repro.soc.bus import BusTransaction, CorruptionHook
from repro.soc.system import CpuMemorySystem

__all__ = ["LockstepDivergence", "LockstepReport", "run_lockstep"]


class LockstepDivergence(AssertionError):
    """The two cores disagreed; ``cycle`` is the first divergent cycle."""

    def __init__(self, cycle: int, detail: str) -> None:
        super().__init__(f"cores diverged at cycle {cycle}: {detail}")
        self.cycle = cycle
        self.detail = detail


@dataclass(frozen=True)
class LockstepReport:
    """Summary of a green lockstep run."""

    cycles: int
    instructions: int
    transactions: int
    halted: bool


def _build(
    image: Mapping[int, int],
    memory_size: int,
    core: str,
    hook: Optional[CorruptionHook],
    hook_bus: str,
    log: List[BusTransaction],
) -> CpuMemorySystem:
    system = CpuMemorySystem(memory_size=memory_size, core=core)
    system.load_image(image)
    if hook is not None:
        bus = system.address_bus if hook_bus == "addr" else system.data_bus
        bus.install_corruption_hook(hook)
    system.address_bus.add_observer(log.append)
    system.data_bus.add_observer(log.append)
    return system


def run_lockstep(
    image: Mapping[int, int],
    entry: int = 0,
    memory_size: int = MEMORY_SIZE,
    max_cycles: int = 100_000,
    hook: Optional[CorruptionHook] = None,
    hook_bus: str = "addr",
    check_state: bool = True,
) -> LockstepReport:
    """Co-step both cores over ``image`` and diff them cycle by cycle.

    Returns a :class:`LockstepReport` when the cores stay identical
    (including when both time out at ``max_cycles`` — a timeout is a
    behaviour to agree on, not an error).  Raises
    :class:`LockstepDivergence` on the first mismatch.
    """
    if hook_bus not in ("addr", "data"):
        raise ValueError(f"hook_bus must be 'addr' or 'data', got {hook_bus!r}")
    reference_log: List[BusTransaction] = []
    fast_log: List[BusTransaction] = []
    reference = _build(image, memory_size, "micro", hook, hook_bus, reference_log)
    fast = _build(image, memory_size, "fast", hook, hook_bus, fast_log)
    reference.reset(entry)
    fast.reset(entry)

    seen = 0
    while not reference.cpu.halted and reference.cycle < max_cycles:
        reference.step()
        fast.step()
        cycle = reference.cycle
        if len(reference_log) != len(fast_log):
            raise LockstepDivergence(
                cycle,
                f"transaction count differs ({len(reference_log) - seen} vs "
                f"{len(fast_log) - seen} this cycle)",
            )
        for index in range(seen, len(reference_log)):
            if reference_log[index] != fast_log[index]:
                raise LockstepDivergence(
                    cycle,
                    f"transaction #{index} differs:\n"
                    f"  micro: {reference_log[index]}\n"
                    f"  fast:  {fast_log[index]}",
                )
        seen = len(reference_log)
        if reference.cpu.halted != fast.cpu.halted:
            raise LockstepDivergence(
                cycle,
                f"halt flag differs (micro={reference.cpu.halted}, "
                f"fast={fast.cpu.halted})",
            )
        if check_state:
            ref_snapshot = reference.cpu.snapshot()
            fast_snapshot = fast.cpu.snapshot()
            if ref_snapshot != fast_snapshot:
                raise LockstepDivergence(
                    cycle,
                    f"cpu state differs:\n  micro: {ref_snapshot}\n"
                    f"  fast:  {fast_snapshot}",
                )

    final_cycle = reference.cycle
    if reference.cycle != fast.cycle:
        raise LockstepDivergence(
            final_cycle,
            f"cycle count differs (micro={reference.cycle}, fast={fast.cycle})",
        )
    if reference.cpu.instruction_count != fast.cpu.instruction_count:
        raise LockstepDivergence(
            final_cycle,
            f"instruction count differs "
            f"(micro={reference.cpu.instruction_count}, "
            f"fast={fast.cpu.instruction_count})",
        )
    if reference.memory.snapshot() != fast.memory.snapshot():
        raise LockstepDivergence(final_cycle, "final memory images differ")
    return LockstepReport(
        cycles=reference.cycle,
        instructions=reference.cpu.instruction_count,
        transactions=len(reference_log),
        halted=reference.cpu.halted,
    )
