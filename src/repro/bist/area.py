"""First-order area model for the hardware self-test circuitry.

The paper's motivation for SBST is that "for small systems, the amount
of relative area overhead may be unacceptable".  This model produces a
gate-equivalent estimate of the DAC'00-style BIST blocks so experiment
E7 can put a number on that claim:

* **sequencer** — a test counter plus decode logic stepping through the
  MA patterns: one flip-flop per counter bit (~6 gate equivalents each)
  plus decode gates proportional to the bus width;
* **pattern driver** — per-wire pattern formation (victim select,
  aggressor polarity) and test-mode multiplexers onto the bus;
* **error detector** — per-wire XOR against the expected vector, an OR
  reduction and a latch;
* **response register** — one bit per test family for diagnosis.

Constants are rough standard-cell gate-equivalents; the point of the
experiment is the scaling and the contrast with SBST's zero overhead,
not absolute precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Gate equivalents per flip-flop.
GE_PER_FLOP = 6.0
#: Gate equivalents per 2-input combinational gate.
GE_PER_GATE = 1.0
#: Gate equivalents of a 2:1 bus multiplexer bit.
GE_PER_MUX_BIT = 3.0
#: Gate equivalents of an XOR bit plus its share of the OR reduction.
GE_PER_XOR_BIT = 3.5


@dataclass(frozen=True)
class AreaEstimate:
    """Gate-equivalent breakdown of one bus's BIST circuitry."""

    sequencer: float
    pattern_driver: float
    error_detector: float
    response_register: float

    @property
    def total(self) -> float:
        """Total gate equivalents."""
        return (
            self.sequencer
            + self.pattern_driver
            + self.error_detector
            + self.response_register
        )

    def relative_to(self, system_gates: float) -> float:
        """Overhead as a fraction of a host system's gate count."""
        if system_gates <= 0:
            raise ValueError("system_gates must be positive")
        return self.total / system_gates


def estimate_bist_area(
    width: int, bidirectional: bool = False
) -> AreaEstimate:
    """Estimate the BIST area for one ``width``-bit bus."""
    test_count = 4 * width * (2 if bidirectional else 1)
    counter_bits = max(1, math.ceil(math.log2(2 * test_count + 2)))
    sequencer = counter_bits * GE_PER_FLOP + 4 * width * GE_PER_GATE
    # Victim-select decoder (one-hot over wires) + polarity logic + muxes,
    # doubled for a bidirectional bus (drivers at both ends).
    driver_sides = 2 if bidirectional else 1
    pattern_driver = driver_sides * (
        width * GE_PER_MUX_BIT + 2 * width * GE_PER_GATE
    )
    error_detector = driver_sides * (width * GE_PER_XOR_BIT + GE_PER_FLOP)
    response_register = 4 * GE_PER_FLOP
    return AreaEstimate(
        sequencer=sequencer,
        pattern_driver=pattern_driver,
        error_detector=error_detector,
        response_register=response_register,
    )


#: Approximate gate count of the demonstrator SoC (a PARWAN-class CPU is
#: roughly 1.5k gate equivalents; 4K x 8 SRAM excluded, as BIST overhead
#: is conventionally quoted against logic).
DEMONSTRATOR_SYSTEM_GATES = 1500.0
