"""Hardware built-in self-test baseline (Bai, Dey & Rajski, DAC 2000).

The paper positions software-based self-test against the earlier
hardware BIST approach, in which on-chip pattern generators and error
detectors apply the MA tests in a dedicated test mode.  This package
models that baseline so the comparison experiments (E7) can quantify the
paper's two claims:

* hardware BIST costs area (pattern generator + detector per bus), while
  SBST costs none;
* hardware BIST applies *every* MA pattern regardless of whether the
  functional mode could ever produce it, risking over-testing —
  rejecting chips whose defects can never corrupt real operation.
"""

from repro.bist.pattern_gen import MAPatternGenerator
from repro.bist.error_detector import ErrorDetector
from repro.bist.controller import BistController, BistResult
from repro.bist.area import AreaEstimate, estimate_bist_area
from repro.bist.overtest import OverTestReport, analyze_overtesting

__all__ = [
    "MAPatternGenerator",
    "ErrorDetector",
    "BistController",
    "BistResult",
    "AreaEstimate",
    "estimate_bist_area",
    "OverTestReport",
    "analyze_overtesting",
]
