"""Model of an on-chip MA test pattern generator.

The DAC'00 hardware self-test builds a small finite-state machine per bus
that walks through all MA tests: for each victim and each error effect it
drives the two-vector sequence onto the bus in test mode.  Here the
generator is modeled functionally (the sequence it produces), plus the
bookkeeping a hardware implementation needs (state count) for the area
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.maf import MAFault, VectorPair, enumerate_bus_faults, ma_vector_pair
from repro.soc.bus import BusDirection


@dataclass(frozen=True)
class GeneratedTest:
    """One test the pattern generator applies."""

    fault: MAFault
    pair: VectorPair
    direction: BusDirection


class MAPatternGenerator:
    """Enumerates the MA test sequence for one bus.

    Parameters
    ----------
    width:
        Bus width in bits.
    directions:
        Driving directions to cover; one for a unidirectional bus, both
        for the bidirectional data bus.
    """

    def __init__(
        self,
        width: int,
        directions: Tuple[BusDirection, ...] = (BusDirection.CPU_TO_MEM,),
    ):
        if not directions:
            raise ValueError("at least one direction required")
        self.width = width
        self.directions = directions

    @property
    def test_count(self) -> int:
        """Total number of MA tests (4N per direction)."""
        return 4 * self.width * len(self.directions)

    def tests(self) -> Iterator[GeneratedTest]:
        """Yield every MA test in generator order."""
        for direction in self.directions:
            faults: List[MAFault] = enumerate_bus_faults(
                self.width,
                (direction if len(self.directions) > 1 else None,),
            )
            for fault in faults:
                yield GeneratedTest(
                    fault=fault,
                    pair=ma_vector_pair(fault),
                    direction=direction,
                )

    def state_count(self) -> int:
        """States a hardware FSM implementation needs.

        Two states (drive v1, drive v2) per test plus setup/done states —
        the basis of the sequencer part of the area estimate.
        """
        return 2 * self.test_count + 2

    def vectors(self, direction: Optional[BusDirection] = None) -> List[VectorPair]:
        """All vector pairs (optionally for one direction)."""
        return [
            test.pair
            for test in self.tests()
            if direction is None or test.direction is direction
        ]
