"""Over-testing analysis: BIST versus functionally excitable errors.

The paper argues (Section 1) that hardware self-test "may cause
over-testing, as not all test patterns generated in the test mode are
valid in the normal operational mode of the system.  ...  the rejection
of a chip due to a failure response in these cases causes unnecessary
yield loss."

This module quantifies that argument for a given functional corpus:

1. collect the set of bus transitions a representative set of programs
   actually produces in the normal operational mode (the SBST programs
   themselves plus any workload programs supplied);
2. for each library defect, check whether *any* functional transition
   is corrupted (functionally relevant defect) and whether the BIST
   pattern set detects it;
3. defects detected by BIST but corrupting no functional transition are
   over-test rejections — yield lost to errors that could never bite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Set, Tuple

from repro.bist.controller import BistController
from repro.core.program_builder import SelfTestProgram
from repro.core.validate import observed_transitions
from repro.soc.bus import BusDirection
from repro.xtalk.calibration import Calibration
from repro.xtalk.defects import DefectLibrary
from repro.xtalk.error_model import CrosstalkErrorModel
from repro.xtalk.params import ElectricalParams


@dataclass
class OverTestReport:
    """Outcome of the over-testing comparison."""

    library_size: int
    bist_detected: int
    functionally_relevant: int
    over_tested: int
    functional_transition_count: int

    @property
    def over_test_rate(self) -> float:
        """Fraction of the library rejected without functional relevance."""
        if self.library_size == 0:
            return 0.0
        return self.over_tested / self.library_size

    @property
    def unnecessary_yield_loss(self) -> float:
        """Fraction of BIST rejections that were unnecessary."""
        if self.bist_detected == 0:
            return 0.0
        return self.over_tested / self.bist_detected


def collect_functional_transitions(
    programs: Sequence[SelfTestProgram], bus: str
) -> Set[Tuple[int, int, BusDirection]]:
    """Transitions (with direction) the corpus produces on ``bus``."""
    transitions: Set[Tuple[int, int, BusDirection]] = set()
    for program in programs:
        address_t, data_t, halted, _ = observed_transitions(program)
        if not halted:
            raise RuntimeError("corpus program did not halt")
        if bus == "addr":
            transitions |= {
                (v1, v2, BusDirection.CPU_TO_MEM) for v1, v2 in address_t
            }
        else:
            transitions |= data_t
    return transitions


def analyze_overtesting(
    library: DefectLibrary,
    params: ElectricalParams,
    calibration: Calibration,
    controller: BistController,
    corpus: Sequence[SelfTestProgram],
    bus: str = "addr",
) -> OverTestReport:
    """Compare BIST rejections against functional excitability.

    ``corpus`` should contain the programs considered representative of
    the normal operational mode.
    """
    transitions = collect_functional_transitions(corpus, bus)
    bist_detected = controller.detected_set(library)
    functionally_relevant = 0
    over_tested = 0
    for defect in library:
        model = CrosstalkErrorModel(defect.caps, params, calibration)
        relevant = any(
            model.corrupt(v1, v2, direction) != v2
            for v1, v2, direction in transitions
        )
        if relevant:
            functionally_relevant += 1
        elif defect.index in bist_detected:
            over_tested += 1
    return OverTestReport(
        library_size=len(library),
        bist_detected=len(bist_detected),
        functionally_relevant=functionally_relevant,
        over_tested=over_tested,
        functional_transition_count=len(transitions),
    )
