"""Model of the receiver-side error detector.

In the hardware self-test, the receiving end of the bus compares the
sampled word against the expected second vector and latches any
mismatch.  The model keeps the mismatch log so diagnosis experiments can
attribute failures to individual MA tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class DetectedError:
    """One latched mismatch."""

    test_index: int
    expected: int
    sampled: int

    @property
    def error_bits(self) -> int:
        """Bit mask of the mismatching wires."""
        return self.expected ^ self.sampled


@dataclass
class ErrorDetector:
    """Compares sampled words against expectations and latches failures."""

    width: int
    log: List[DetectedError] = field(default_factory=list)

    def check(self, test_index: int, expected: int, sampled: int) -> bool:
        """Compare one sampled word; returns True when it matches."""
        if sampled == expected:
            return True
        self.log.append(
            DetectedError(test_index=test_index, expected=expected, sampled=sampled)
        )
        return False

    @property
    def failed(self) -> bool:
        """True once any mismatch was latched."""
        return bool(self.log)

    def failing_tests(self) -> List[int]:
        """Indices of the tests that latched an error."""
        return sorted({entry.test_index for entry in self.log})

    def reset(self) -> None:
        """Clear the latch (start of a new test session)."""
        self.log.clear()
