"""BIST session controller: applies the MA pattern set to a bus model.

In test mode the hardware drives the bus directly — no CPU, no memory
traffic in between — so every MA pattern is applied back-to-back exactly
as specified.  The same crosstalk error model used for the SBST defect
simulation corrupts the receiver-side words, and the error detector
latches mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.bist.error_detector import ErrorDetector
from repro.bist.pattern_gen import MAPatternGenerator
from repro.soc.bus import Bus, TransactionKind
from repro.xtalk.calibration import Calibration
from repro.xtalk.defects import Defect, DefectLibrary
from repro.xtalk.error_model import CrosstalkErrorModel
from repro.xtalk.params import ElectricalParams


@dataclass(frozen=True)
class BistResult:
    """Outcome of one BIST session against one defect."""

    defect_index: int
    detected: bool
    failing_tests: Tuple[int, ...]


class BistController:
    """Runs hardware self-test sessions over a defect library."""

    def __init__(
        self,
        generator: MAPatternGenerator,
        params: ElectricalParams,
        calibration: Calibration,
    ):
        self.generator = generator
        self.params = params
        self.calibration = calibration

    def run_session(self, defect: Defect) -> BistResult:
        """Apply the full MA pattern set with ``defect`` present."""
        bus = Bus("bist", self.generator.width)
        model = CrosstalkErrorModel(defect.caps, self.params, self.calibration)
        bus.install_corruption_hook(model.corrupt)
        detector = ErrorDetector(self.generator.width)
        cycle = 0
        for index, test in enumerate(self.generator.tests()):
            # Drive v1, then v2; only the v2 sampling matters (the
            # transition of interest happens when v2 is driven).
            bus.transfer(test.pair.v1, test.direction, TransactionKind.FETCH, cycle)
            sampled = bus.transfer(
                test.pair.v2, test.direction, TransactionKind.FETCH, cycle + 1
            )
            detector.check(index, test.pair.v2, sampled)
            cycle += 2
        return BistResult(
            defect_index=defect.index,
            detected=detector.failed,
            failing_tests=tuple(detector.failing_tests()),
        )

    def run_library(self, library: DefectLibrary) -> List[BistResult]:
        """Run one session per library defect."""
        return [self.run_session(defect) for defect in library]

    def detected_set(self, library: DefectLibrary) -> Set[int]:
        """Indices of defects the BIST detects."""
        return {
            result.defect_index
            for result in self.run_library(library)
            if result.detected
        }

    def coverage(self, library: DefectLibrary) -> float:
        """Fraction of library defects detected."""
        if len(library) == 0:
            return 0.0
        return len(self.detected_set(library)) / len(library)

    @property
    def test_cycles(self) -> int:
        """Bus cycles one BIST session takes (two per MA test)."""
        return 2 * self.generator.test_count
