"""Experiment records: paper value versus measured value.

Benchmarks emit these so EXPERIMENTS.md and the terminal output state
the reproduction deltas in one uniform format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.tables import format_table


@dataclass(frozen=True)
class ExperimentRecord:
    """One paper-vs-measured comparison line."""

    experiment: str  # e.g. "E4/Fig.11"
    quantity: str  # what is being compared
    paper: str  # the paper's reported value (verbatim-ish)
    measured: str  # this reproduction's value
    note: str = ""  # deviation explanation, if any


def format_records(records: Iterable[ExperimentRecord], title: str = "") -> str:
    """Render records as an aligned table."""
    return format_table(
        headers=("experiment", "quantity", "paper", "measured", "note"),
        rows=[
            (r.experiment, r.quantity, r.paper, r.measured, r.note)
            for r in records
        ],
        title=title,
    )
