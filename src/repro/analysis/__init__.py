"""Reporting helpers: tables, ASCII charts, experiment records."""

from repro.analysis.tables import format_table
from repro.analysis.charts import bar_chart, coverage_chart
from repro.analysis.records import ExperimentRecord, format_records

__all__ = [
    "format_table",
    "bar_chart",
    "coverage_chart",
    "ExperimentRecord",
    "format_records",
]
