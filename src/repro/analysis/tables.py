"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)
