"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    align: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    ``align`` gives one character per column — ``"l"`` (default) or
    ``"r"`` — so numeric columns can be right-aligned; a short string
    leaves the remaining columns left-aligned.
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    if any(spec not in "lr" for spec in align):
        raise ValueError(f"bad align spec: {align!r}")

    def _pad(cell: str, index: int) -> str:
        if index < len(align) and align[index] == "r":
            return cell.rjust(widths[index])
        return cell.ljust(widths[index])

    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(_pad(header, index) for index, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append("  ".join(_pad(cell, index) for index, cell in enumerate(row)))
    return "\n".join(lines)
