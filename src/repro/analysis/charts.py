"""ASCII chart rendering (the terminal stand-in for the paper's figures)."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    max_value: float = 1.0,
    title: str = "",
) -> str:
    """Horizontal bar chart with one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if max_value <= 0:
        raise ValueError("max_value must be positive")
    label_width = max((len(label) for label in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        clamped = min(max(value, 0.0), max_value)
        bar = "#" * round(width * clamped / max_value)
        lines.append(f"{label.ljust(label_width)}  {value:6.3f}  {bar}")
    return "\n".join(lines)


def coverage_chart(
    lines_data: Sequence[Tuple[int, float, float]],
    width: int = 40,
) -> str:
    """Fig. 11-style chart: per-line individual and cumulative coverage.

    ``lines_data`` holds ``(line number, individual, cumulative)``.
    """
    out: List[str] = [
        "line  individual  cumulative  "
        "(light: individual '#', dark: cumulative '=')"
    ]
    for line, individual, cumulative in lines_data:
        ind_bar = "#" * round(width * min(individual, 1.0))
        cum_bar = "=" * round(width * min(cumulative, 1.0))
        out.append(f"{line:4d}   {individual:9.3f}  {cumulative:9.3f}")
        out.append(f"      ind |{ind_bar}")
        out.append(f"      cum |{cum_bar}")
    return "\n".join(out)
