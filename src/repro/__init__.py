"""repro — software-based self-test for interconnect crosstalk defects.

A production-quality reproduction of Chen, Bai & Dey, "Testing for
Interconnect Crosstalk Defects Using On-Chip Embedded Processor Cores"
(DAC 2001 / JETTA 2002).

Quickstart::

    from repro import (
        SelfTestProgramBuilder, DefectSimulator,
        default_address_bus_setup,
    )

    setup = default_address_bus_setup()
    builder = SelfTestProgramBuilder()
    program = builder.build_address_bus_program()
    simulator = DefectSimulator(
        program, setup.params, setup.calibration, bus="addr"
    )
    print("coverage:", simulator.coverage(setup.library))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from dataclasses import dataclass

from repro import obs
from repro.core import (
    AppliedTest,
    CampaignJournal,
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    CoverageReport,
    DefectSimulator,
    ExactEngine,
    FaultType,
    MAFault,
    ScreenedEngine,
    SelfTestProgram,
    SelfTestProgramBuilder,
    SkippedTest,
    VectorPair,
    address_bus_line_coverage,
    build_sessions,
    enumerate_bus_faults,
    ma_vector_pair,
    run_campaign,
    session_coverage,
)
from repro.soc import BusDirection, CpuMemorySystem
from repro.static import (
    LintReport,
    StaticAnalysisReport,
    analyze_program,
    crosscheck,
)
from repro.xtalk import (
    BusGeometry,
    Calibration,
    CapacitanceSet,
    CrosstalkErrorModel,
    DefectLibrary,
    ElectricalParams,
    calibrate,
    extract_capacitance,
    generate_defect_library,
)

__version__ = "1.0.0"


@dataclass(frozen=True)
class BusTestSetup:
    """Everything needed to evaluate one bus: caps, thresholds, defects."""

    geometry: BusGeometry
    caps: CapacitanceSet
    params: ElectricalParams
    calibration: Calibration
    library: DefectLibrary


def default_bus_setup(
    wire_count: int,
    defect_count: int = 1000,
    seed: int = 2001,
    safety_factor: float = 1.25,
) -> BusTestSetup:
    """The paper's default experimental setup for one bus.

    Edge-relaxed geometry, nominal extraction, consistent calibration,
    and a Gaussian (3-sigma = 150 %) defect library.
    """
    geometry = BusGeometry.edge_relaxed(wire_count)
    caps = extract_capacitance(geometry)
    params = ElectricalParams()
    calibration = calibrate(caps, params, safety_factor)
    library = generate_defect_library(
        caps, calibration, count=defect_count, seed=seed
    )
    return BusTestSetup(
        geometry=geometry,
        caps=caps,
        params=params,
        calibration=calibration,
        library=library,
    )


def default_address_bus_setup(
    defect_count: int = 1000, seed: int = 2001
) -> BusTestSetup:
    """Setup for the demonstrator's 12-bit address bus."""
    return default_bus_setup(12, defect_count=defect_count, seed=seed)


def default_data_bus_setup(
    defect_count: int = 1000, seed: int = 2001
) -> BusTestSetup:
    """Setup for the demonstrator's 8-bit data bus."""
    return default_bus_setup(8, defect_count=defect_count, seed=seed)


__all__ = [
    "AppliedTest",
    "BusDirection",
    "BusGeometry",
    "BusTestSetup",
    "Calibration",
    "CampaignJournal",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CapacitanceSet",
    "CoverageReport",
    "CpuMemorySystem",
    "CrosstalkErrorModel",
    "DefectLibrary",
    "DefectSimulator",
    "ElectricalParams",
    "ExactEngine",
    "FaultType",
    "LintReport",
    "MAFault",
    "ScreenedEngine",
    "SelfTestProgram",
    "SelfTestProgramBuilder",
    "SkippedTest",
    "StaticAnalysisReport",
    "VectorPair",
    "address_bus_line_coverage",
    "analyze_program",
    "build_sessions",
    "calibrate",
    "crosscheck",
    "default_address_bus_setup",
    "default_bus_setup",
    "default_data_bus_setup",
    "enumerate_bus_faults",
    "extract_capacitance",
    "generate_defect_library",
    "ma_vector_pair",
    "obs",
    "run_campaign",
    "session_coverage",
    "__version__",
]
