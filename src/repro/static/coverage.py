"""Static MA-coverage prediction and the static/dynamic cross-check.

:func:`predict_coverage` answers the same question as
:func:`repro.core.validate.validate_applied_tests` — *does every applied
test's MA vector pair really appear on the bus under test?* — but from
the abstract trace alone, without simulating a single cycle.

:func:`crosscheck` then runs both and diffs them.  On builder-generated
programs the abstract trace is exact (single constant path), so any
disagreement — a fault confirmed by one side only, a transition set
mismatch, a halting mismatch — is a bug in either the static replay or
the dynamic machine model, never an acceptable approximation.  The test
suite pins this agreement for every seed-built program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.maf import MAFault, ma_vector_pair
from repro.core.program_builder import SelfTestProgram
from repro.core.validate import ValidationReport, observed_transitions, validate_applied_tests
from repro.soc.bus import BusDirection
from repro.static.absint import PredictedRun, predict_run


@dataclass
class StaticCoverage:
    """Statically predicted fate of every applied test."""

    confirmed: List[MAFault] = field(default_factory=list)
    missing: List[MAFault] = field(default_factory=list)
    halts: bool = True
    #: True when the prediction came from a single fully-constant path.
    exact: bool = True

    @property
    def all_confirmed(self) -> bool:
        """True when every applied test's transition is predicted."""
        return self.halts and not self.missing


def fault_transition_seen(fault: MAFault, run: PredictedRun) -> bool:
    """Whether the fault's MA vector pair appears in the predicted trace."""
    pair = ma_vector_pair(fault)
    if fault.direction is None:
        return (pair.v1, pair.v2) in run.address_transitions
    return (pair.v1, pair.v2, fault.direction) in run.data_transitions


def predict_coverage(
    program: SelfTestProgram, run: Optional[PredictedRun] = None
) -> StaticCoverage:
    """Predict the validation outcome of ``program`` without running it."""
    if run is None:
        run = predict_run(program.image, program.entry, program.memory_size)
    coverage = StaticCoverage(halts=run.all_paths_halt, exact=run.exact)
    for test in program.applied:
        if fault_transition_seen(test.fault, run):
            coverage.confirmed.append(test.fault)
        else:
            coverage.missing.append(test.fault)
    return coverage


@dataclass
class CrosscheckResult:
    """The diff between static prediction and dynamic validation."""

    static: StaticCoverage
    dynamic: ValidationReport
    #: Faults the static pass confirms but the traced run does not.
    static_only: List[MAFault] = field(default_factory=list)
    #: Faults the traced run confirms but the static pass does not.
    dynamic_only: List[MAFault] = field(default_factory=list)
    #: Address-bus transition pairs seen by exactly one side.
    address_diff: Set[Tuple[int, int]] = field(default_factory=set)
    #: Data-bus transition triples seen by exactly one side.
    data_diff: Set[Tuple[int, int, BusDirection]] = field(default_factory=set)

    @property
    def agreed(self) -> bool:
        """True when both sides reached identical conclusions."""
        return (
            not self.static_only
            and not self.dynamic_only
            and not self.address_diff
            and not self.data_diff
            and self.static.halts == self.dynamic.halted
        )


def crosscheck(
    program: SelfTestProgram, run: Optional[PredictedRun] = None
) -> CrosscheckResult:
    """Diff the static prediction against a traced fault-free run.

    Compares per-fault verdicts *and* the raw transition sets; on an
    exact abstract trace both must match bit for bit.
    """
    if run is None:
        run = predict_run(program.image, program.entry, program.memory_size)
    static = predict_coverage(program, run)
    dynamic = validate_applied_tests(program)
    observed_addr, observed_data, _, _ = observed_transitions(program)

    statically_confirmed = set(static.confirmed)
    dynamically_confirmed = set(dynamic.confirmed)
    return CrosscheckResult(
        static=static,
        dynamic=dynamic,
        static_only=sorted(
            statically_confirmed - dynamically_confirmed, key=lambda f: f.name
        ),
        dynamic_only=sorted(
            dynamically_confirmed - statically_confirmed, key=lambda f: f.name
        ),
        address_diff=run.address_transitions ^ observed_addr,
        data_diff=run.data_transitions ^ observed_data,
    )
