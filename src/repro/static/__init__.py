"""Static analysis of generated self-test programs.

The dynamic validator (:mod:`repro.core.validate`) answers "did the
program work?" by running it; this package answers the same question —
plus "and if not, *why*?" — without executing a cycle:

* :mod:`repro.static.cfg` recovers the control-flow graph of the
  scattered program image,
* :mod:`repro.static.absint` abstractly interprets the accumulator
  machine and predicts every bus word the program will drive,
* :mod:`repro.static.coverage` turns the predicted transitions into an
  MA-coverage verdict and cross-checks it against the dynamic trace,
* :mod:`repro.static.analyzer` condenses everything into stable
  ``SBST0xx`` diagnostics (:mod:`repro.static.diagnostics`).
"""

from repro.static.absint import (
    AbstractInterpreter,
    PredictedRun,
    PredictedTransaction,
    predict_run,
)
from repro.static.analyzer import StaticAnalysisReport, analyze_program
from repro.static.cfg import CfgNode, ControlFlowGraph, recover_cfg
from repro.static.coverage import (
    CrosscheckResult,
    StaticCoverage,
    crosscheck,
    predict_coverage,
)
from repro.static.diagnostics import Code, Diagnostic, LintReport, Severity

__all__ = [
    "AbstractInterpreter",
    "CfgNode",
    "Code",
    "ControlFlowGraph",
    "CrosscheckResult",
    "Diagnostic",
    "LintReport",
    "PredictedRun",
    "PredictedTransaction",
    "Severity",
    "StaticAnalysisReport",
    "StaticCoverage",
    "analyze_program",
    "crosscheck",
    "predict_coverage",
    "predict_run",
    "recover_cfg",
]
