"""Stable diagnostic codes and the lint report of the static analyzer.

Every finding of the static passes is a :class:`Diagnostic` carrying one
of the stable ``SBST0xx`` codes below, so downstream tooling (CI gates,
dashboards, the ``repro-sbst check`` exit code) can filter on codes and
severities without parsing messages:

=========  ========================================================
code       meaning
=========  ========================================================
SBST001    unreachable fragment (an applied test's entry is never
           reached from the program entry point)
SBST002    a store clobbers code or another fragment's placed byte
SBST003    response-region hazard (a run-time-written response cell
           overlaps executed code, or is registered twice)
SBST004    adopted byte changed instruction semantics (a reachable
           byte decodes differently under the permissive hardware
           decoder than under the strict ISA decoder, or execution
           falls through into unplaced memory)
SBST005    missing/duplicate MA transition (an applied test's vector
           pair is absent from the statically predicted bus
           transitions, or the same fault is applied twice)
SBST006    possible non-termination (a constant-state loop that is
           not the halt convention, or the step budget ran out)
=========  ========================================================

Severities: ``ERROR`` findings mean the program demonstrably deviates
from its specification; ``WARNING`` findings are suspicious-but-survivable
(e.g. analysis imprecision); ``INFO`` is commentary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.tables import format_table


class Code(enum.Enum):
    """Stable diagnostic codes of the static analyzer."""

    UNREACHABLE_FRAGMENT = "SBST001"
    STORE_CLOBBERS_CODE = "SBST002"
    RESPONSE_HAZARD = "SBST003"
    SEMANTICS_CHANGED = "SBST004"
    MA_TRANSITION = "SBST005"
    NON_TERMINATION = "SBST006"


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    ``address`` is the image address the finding anchors to (``None``
    for whole-program findings) and ``subject`` names the test, fragment
    or region concerned.
    """

    code: Code
    severity: Severity
    message: str
    address: Optional[int] = None
    subject: str = ""

    def __str__(self) -> str:
        where = f" at {self.address:#05x}" if self.address is not None else ""
        who = f" [{self.subject}]" if self.subject else ""
        return (
            f"{self.code.value} {self.severity.name.lower()}{where}{who}: "
            f"{self.message}"
        )


@dataclass
class LintReport:
    """The ordered diagnostic list of one analysis run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(
        self,
        code: Code,
        severity: Severity,
        message: str,
        address: Optional[int] = None,
        subject: str = "",
    ) -> None:
        """Record one finding."""
        self.diagnostics.append(
            Diagnostic(code, severity, message, address=address, subject=subject)
        )

    def extend(self, diagnostics: Sequence[Diagnostic]) -> None:
        """Merge findings from a sub-pass."""
        self.diagnostics.extend(diagnostics)

    def by_code(self, code: Code) -> List[Diagnostic]:
        """All findings with the given code."""
        return [d for d in self.diagnostics if d.code is code]

    @property
    def errors(self) -> List[Diagnostic]:
        """Findings at ERROR severity."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Findings at WARNING severity."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def clean(self) -> bool:
        """True when no finding reaches ERROR severity."""
        return not self.errors

    def render(self, title: str = "static analysis findings") -> str:
        """The findings as an aligned table (empty reports say so)."""
        if not self.diagnostics:
            return f"{title}\n(no findings)"
        rows = []
        for diagnostic in sorted(
            self.diagnostics, key=lambda d: (-d.severity, d.code.value)
        ):
            rows.append(
                (
                    diagnostic.code.value,
                    diagnostic.severity.name.lower(),
                    "-" if diagnostic.address is None
                    else f"{diagnostic.address:#05x}",
                    diagnostic.subject or "-",
                    diagnostic.message,
                )
            )
        return format_table(
            ("code", "severity", "address", "subject", "message"),
            rows,
            title=title,
        )
