"""Control-flow-graph recovery from an assembled self-test image.

The generated programs are scattered: fragments sit at vector-dictated
addresses, chained by ``JMP``s and terminated by a self-loop halt.  This
pass re-discovers that structure from the bytes alone — it decodes with
the *permissive* hardware decoder (:func:`repro.cpu.control.decode_raw`),
because that is what the CPU will actually execute, and separately
consults the strict ISA decoder to flag bytes whose adopted values changed
the instruction's meaning.

The walk follows every statically resolvable edge:

* fall-through for non-control instructions,
* both arms of a branch,
* direct ``JMP``/``JSR`` targets,
* indirect ``JMP@`` targets through the *initial* pointer-cell value
  (a pointer cell that a reachable store may rewrite is reported as an
  unresolved edge instead of guessed).

A ``JMP`` to its own first byte is the halt convention and terminates a
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.cpu.control import OpClass, decode_raw
from repro.isa.disassembler import instruction_bytes, strict_decode_at
from repro.isa.encoding import make_address, page_of

#: Power-on content of unplaced memory cells (the memory core's fill).
MEMORY_FILL = 0x00


@dataclass(frozen=True)
class CfgNode:
    """One reachable instruction.

    ``successors`` holds the statically resolved follow-on addresses;
    ``is_halt`` marks the self-loop ``JMP``; ``from_hole`` is true when
    any consumed byte came from unplaced memory; ``strict_mismatch`` is
    true when the strict ISA decode of the same bytes disagrees with the
    permissive hardware decode (or fails entirely).
    """

    address: int
    length: int
    op_class: OpClass
    byte1: int
    byte2: Optional[int]
    successors: Tuple[int, ...]
    is_halt: bool = False
    from_hole: bool = False
    strict_mismatch: bool = False

    @property
    def text(self) -> str:
        """Raw bytes as hex, e.g. ``"80 22"``."""
        raw = f"{self.byte1:02x}"
        if self.byte2 is not None:
            raw += f" {self.byte2:02x}"
        return raw

    @property
    def indirect(self) -> bool:
        """True for the indirect-addressing MEMREF variants."""
        return decode_raw(self.byte1).indirect

    def effective_address(self) -> Optional[int]:
        """The direct effective address of a MEMREF node (else ``None``).

        Indirect variants return ``None`` — their effective address goes
        through a pointer cell and belongs to the abstract interpreter.
        """
        decoded = decode_raw(self.byte1)
        if decoded.op_class in (OpClass.IMPLIED, OpClass.BRANCH):
            return None
        if decoded.indirect:
            return None
        operand = self.byte2 if self.byte2 is not None else MEMORY_FILL
        return make_address(decoded.page, operand)


@dataclass
class ControlFlowGraph:
    """The recovered control-flow graph of one program image."""

    entry: int
    memory_size: int = 4096
    nodes: Dict[int, CfgNode] = field(default_factory=dict)
    #: Addresses of halt-convention self-loops.
    halt_nodes: Set[int] = field(default_factory=set)
    #: Nodes whose indirect jump target could not be resolved statically.
    unresolved_nodes: Set[int] = field(default_factory=set)

    @property
    def reachable(self) -> Set[int]:
        """Addresses of all reachable instructions."""
        return set(self.nodes)

    def code_bytes(self) -> Set[int]:
        """Every image address occupied by a reachable instruction."""
        covered: Set[int] = set()
        for node in self.nodes.values():
            covered.update(
                (node.address + k) % self.memory_size for k in range(node.length)
            )
        return covered

    def is_reachable(self, address: int) -> bool:
        """True when an instruction starts at ``address`` in the walk."""
        return address in self.nodes

    def basic_blocks(self) -> List[Tuple[int, ...]]:
        """Group nodes into maximal single-entry straight-line runs."""
        preds: Dict[int, List[int]] = {a: [] for a in self.nodes}
        for node in self.nodes.values():
            for succ in node.successors:
                if succ in preds:
                    preds[succ].append(node.address)
        leaders = {self.entry}
        for node in self.nodes.values():
            if len(node.successors) != 1:
                leaders.update(s for s in node.successors if s in self.nodes)
            else:
                succ = node.successors[0]
                if succ in preds and len(preds[succ]) > 1:
                    leaders.add(succ)
        blocks: List[Tuple[int, ...]] = []
        for leader in sorted(leaders & set(self.nodes)):
            run = [leader]
            node = self.nodes[leader]
            while (
                len(node.successors) == 1
                and node.successors[0] in self.nodes
                and node.successors[0] not in leaders
            ):
                run.append(node.successors[0])
                node = self.nodes[node.successors[0]]
            blocks.append(tuple(run))
        return blocks


def _successors(
    address: int,
    byte1: int,
    byte2: Optional[int],
    image: Mapping[int, int],
    memory_size: int,
) -> Tuple[Tuple[int, ...], bool]:
    """Resolve the follow-on addresses of the instruction at ``address``.

    Returns ``(successors, is_halt)``.
    """
    decoded = decode_raw(byte1)
    fallthrough = (address + (2 if decoded.two_bytes else 1)) % memory_size
    if decoded.op_class is OpClass.IMPLIED:
        return (fallthrough,), False
    if byte2 is None:
        byte2 = MEMORY_FILL
    if decoded.op_class is OpClass.BRANCH:
        # The hardware branches within the page of the *advanced* PC.
        target = make_address(page_of(fallthrough), byte2)
        if target == fallthrough:
            return (fallthrough,), False
        return (fallthrough, target), False
    effective = make_address(decoded.page, byte2)
    if decoded.op_class is OpClass.JUMP:
        if decoded.indirect:
            pointer = image.get(effective % memory_size)
            if pointer is None:
                pointer = MEMORY_FILL
            effective = make_address(decoded.page, pointer)
        if effective == address:
            return (), True
        return (effective,), False
    if decoded.op_class is OpClass.JSR:
        return ((effective + 1) % memory_size,), False
    # Plain memory reads/writes fall through.
    return (fallthrough,), False


def recover_cfg(
    image: Mapping[int, int],
    entry: int,
    memory_size: int = 4096,
    max_nodes: int = 65536,
) -> ControlFlowGraph:
    """Walk every statically resolvable path of ``image`` from ``entry``."""
    cfg = ControlFlowGraph(entry=entry % memory_size, memory_size=memory_size)
    worklist: List[int] = [cfg.entry]
    while worklist and len(cfg.nodes) < max_nodes:
        address = worklist.pop() % memory_size
        if address in cfg.nodes:
            continue
        byte1, byte2, from_hole = instruction_bytes(
            image, address, memory_size, fill=MEMORY_FILL
        )
        assert byte1 is not None  # fill guarantees a byte
        decoded = decode_raw(byte1)
        # The strict decoder rejects undefined implied sub-opcodes,
        # unknown branch masks and the indirect-JSR bit; when it *does*
        # decode, its semantics agree with the hardware by construction.
        strict = strict_decode_at(image, address, memory_size, fill=MEMORY_FILL)
        strict_mismatch = strict is None
        successors, is_halt = _successors(
            address, byte1, byte2, image, memory_size
        )
        node = CfgNode(
            address=address,
            length=2 if decoded.two_bytes else 1,
            op_class=decoded.op_class,
            byte1=byte1,
            byte2=byte2 if decoded.two_bytes else None,
            successors=successors,
            is_halt=is_halt,
            from_hole=from_hole,
            strict_mismatch=strict_mismatch,
        )
        cfg.nodes[address] = node
        if is_halt:
            cfg.halt_nodes.add(address)
        # Record instructions fetched from wholly unplaced memory (the
        # walk arrived there, which SBST004 reports) but do not follow
        # them further: decoding an unbounded run of fill bytes would
        # bury the graph in fictitious nodes.
        if address in image:
            worklist.extend(successors)
    _mark_unresolved_indirect_jumps(cfg)
    return cfg


def _mark_unresolved_indirect_jumps(cfg: ControlFlowGraph) -> None:
    """Flag ``JMP@`` nodes whose pointer cell a reachable store may rewrite.

    The walk resolved indirect jumps through the *initial* image value of
    the pointer cell; if a reachable ``STA``/``JSR`` targets that cell, the
    run-time target may differ, so the edge is only a best guess.
    """
    store_targets = {
        node.effective_address()
        for node in cfg.nodes.values()
        if node.op_class in (OpClass.MEMREF_WRITE, OpClass.JSR)
        and node.effective_address() is not None
    }
    for node in cfg.nodes.values():
        if node.op_class is OpClass.JUMP and node.indirect:
            operand = node.byte2 if node.byte2 is not None else MEMORY_FILL
            pointer_cell = make_address(
                decode_raw(node.byte1).page, operand
            ) % cfg.memory_size
            if pointer_cell in store_targets:
                cfg.unresolved_nodes.add(node.address)
