"""The static analyzer: CFG + abstract interpretation -> diagnostics.

:func:`analyze_program` is the front door used by the ``repro-sbst
check`` subcommand and the builder's lint hook.  It recovers the control
flow of the built image, abstractly executes it, predicts MA coverage
and condenses everything into a :class:`LintReport` of stable
``SBST0xx`` findings (see :mod:`repro.static.diagnostics` for the code
table).

Severity policy: a finding is an ERROR only when the program demonstrably
deviates from its own specification (an applied test that cannot work, a
clobbered placed byte, a loop that cannot end).  Artefacts the builder
creates *on purpose* — adopted bytes in the implied-NOP range, branch
arms that point into unplaced memory but are never taken — surface as
INFO so the seed programs lint clean without silencing the analysis.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Set

from repro.core.program_builder import AppliedTest, SelfTestProgram
from repro.cpu.control import OpClass
from repro.isa.instructions import IMPLIED_SUBOPS
from repro.static.absint import PredictedRun, predict_run
from repro.static.cfg import ControlFlowGraph, recover_cfg
from repro.static.coverage import StaticCoverage, fault_transition_seen, predict_coverage
from repro.static.diagnostics import Code, LintReport, Severity


@dataclass
class StaticAnalysisReport:
    """Everything one static analysis run produced."""

    program: SelfTestProgram
    cfg: ControlFlowGraph
    run: PredictedRun
    coverage: StaticCoverage
    lint: LintReport

    @property
    def clean(self) -> bool:
        """True when no finding reached ERROR severity."""
        return self.lint.clean

    def render(self) -> str:
        """Human-readable summary of the run and its findings."""
        header = (
            f"entry {self.program.entry:#05x}: "
            f"{len(self.cfg.nodes)} reachable instructions, "
            f"{self.run.steps} abstract steps, "
            f"{len(self.coverage.confirmed)}/"
            f"{len(self.program.applied)} MA transitions predicted"
        )
        return header + "\n" + self.lint.render()


def analyze_program(
    program: SelfTestProgram, max_steps: int = 50_000
) -> StaticAnalysisReport:
    """Statically lint a built self-test program."""
    cfg = recover_cfg(program.image, program.entry, program.memory_size)
    run = predict_run(
        program.image, program.entry, program.memory_size, max_steps=max_steps
    )
    coverage = predict_coverage(program, run)
    lint = LintReport()
    _check_reachability(program, cfg, lint)
    _check_stores(program, cfg, run, lint)
    _check_responses(program, cfg, lint)
    _check_decode_integrity(cfg, run, lint)
    _check_ma_transitions(program, run, lint)
    _check_termination(cfg, run, lint)
    return StaticAnalysisReport(
        program=program, cfg=cfg, run=run, coverage=coverage, lint=lint
    )


def _subject(test: AppliedTest) -> str:
    return test.fault.name


def _check_reachability(
    program: SelfTestProgram, cfg: ControlFlowGraph, lint: LintReport
) -> None:
    """SBST001 — every applied test's fragment must be reachable."""
    for test in program.applied:
        if not cfg.is_reachable(test.entry):
            lint.add(
                Code.UNREACHABLE_FRAGMENT,
                Severity.ERROR,
                "applied test fragment is never reached from the program "
                "entry point",
                address=test.entry,
                subject=_subject(test),
            )


def _check_stores(
    program: SelfTestProgram,
    cfg: ControlFlowGraph,
    run: PredictedRun,
    lint: LintReport,
) -> None:
    """SBST002 — no store may land on a placed byte it does not own."""
    writable: Set[int] = set(program.response_addresses)
    code_bytes = cfg.code_bytes()
    for store in run.stores:
        if store.target is None:
            lint.add(
                Code.STORE_CLOBBERS_CODE,
                Severity.WARNING,
                "store target is run-time dependent; clobbering cannot be "
                "ruled out",
                address=store.instruction,
            )
            continue
        if store.target in writable:
            continue
        if store.target in code_bytes:
            lint.add(
                Code.STORE_CLOBBERS_CODE,
                Severity.ERROR,
                f"store overwrites executed code at {store.target:#05x}",
                address=store.instruction,
            )
        elif store.target in program.image:
            lint.add(
                Code.STORE_CLOBBERS_CODE,
                Severity.ERROR,
                f"store overwrites placed byte {store.target:#05x} outside "
                "every declared response region",
                address=store.instruction,
            )


def _check_responses(
    program: SelfTestProgram, cfg: ControlFlowGraph, lint: LintReport
) -> None:
    """SBST003 — response cells must be distinct and outside the code."""
    counts = Counter(program.response_addresses)
    for address, count in sorted(counts.items()):
        if count > 1:
            lint.add(
                Code.RESPONSE_HAZARD,
                Severity.ERROR,
                f"response cell registered {count} times; a later test "
                "overwrites an earlier response",
                address=address,
            )
    code_bytes = cfg.code_bytes()
    for address in sorted(counts):
        if address in code_bytes:
            lint.add(
                Code.RESPONSE_HAZARD,
                Severity.ERROR,
                "response cell overlaps a reachable instruction byte",
                address=address,
            )


def _check_decode_integrity(
    cfg: ControlFlowGraph, run: PredictedRun, lint: LintReport
) -> None:
    """SBST004 — adopted/hole bytes whose decode the builder did not write.

    Undefined implied sub-opcodes execute as NOP by design (the builder
    adopts conflicting bytes into that range), so they are INFO.  Any
    other strict/permissive divergence on an *executed* instruction is an
    error; on a merely walk-reachable one (e.g. the untaken arm of a
    branch) it is a warning.
    """
    for node in sorted(cfg.nodes.values(), key=lambda n: n.address):
        executed = node.address in run.executed
        if node.strict_mismatch:
            benign = (
                node.op_class is OpClass.IMPLIED
                and (node.byte1 & 0x0F) not in _DEFINED_IMPLIED_SUBOPS
            )
            if benign:
                lint.add(
                    Code.SEMANTICS_CHANGED,
                    Severity.INFO,
                    f"adopted byte {node.byte1:#04x} is an undefined "
                    "implied sub-opcode; the hardware executes it as NOP",
                    address=node.address,
                )
            else:
                lint.add(
                    Code.SEMANTICS_CHANGED,
                    Severity.ERROR if executed else Severity.WARNING,
                    f"bytes `{node.text}` decode differently under the "
                    "strict ISA decoder than on the hardware",
                    address=node.address,
                )
        if node.from_hole:
            lint.add(
                Code.SEMANTICS_CHANGED,
                Severity.WARNING if executed else Severity.INFO,
                "instruction reads unplaced memory (power-on fill); the "
                "assembler never emitted these bytes",
                address=node.address,
            )


def _check_ma_transitions(
    program: SelfTestProgram, run: PredictedRun, lint: LintReport
) -> None:
    """SBST005 — every applied test's vector pair must be predicted."""
    seen: Dict[object, AppliedTest] = {}
    for test in program.applied:
        if test.fault in seen:
            lint.add(
                Code.MA_TRANSITION,
                Severity.WARNING,
                "fault is applied twice; the second application is "
                "redundant",
                address=test.entry,
                subject=_subject(test),
            )
        seen[test.fault] = test
        if not fault_transition_seen(test.fault, run):
            lint.add(
                Code.MA_TRANSITION,
                Severity.ERROR,
                "MA vector pair never appears in the statically predicted "
                "bus transitions",
                address=test.entry,
                subject=_subject(test),
            )


def _check_termination(
    cfg: ControlFlowGraph, run: PredictedRun, lint: LintReport
) -> None:
    """SBST006 — the program must provably reach the halt convention."""
    if not cfg.halt_nodes:
        lint.add(
            Code.NON_TERMINATION,
            Severity.ERROR,
            "no halt-convention self-loop is reachable from the entry",
        )
    for note in run.notes:
        if note.kind in ("state-loop", "budget"):
            lint.add(
                Code.NON_TERMINATION,
                Severity.ERROR,
                note.message,
                address=note.address,
            )
        else:  # unknown-fetch / lost-control: analysis imprecision
            lint.add(
                Code.NON_TERMINATION,
                Severity.WARNING,
                f"termination cannot be proven: {note.message}",
                address=note.address,
            )


#: Implied sub-opcodes the strict ISA defines (low nibble of 0xF?).
_DEFINED_IMPLIED_SUBOPS = frozenset(IMPLIED_SUBOPS.values())
