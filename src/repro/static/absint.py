"""Abstract interpretation of the PARWAN accumulator machine.

This pass predicts, without running anything, the exact sequence of
address-bus and data-bus words a program emits.  Values live in a
constant-propagation lattice: a byte/word is either a known constant or
``None`` (unknown / ⊤).  The interpreter replays the control unit's
per-instruction state sequence — the same FETCH/DECODE/OPERAND/WRITE
phases as :mod:`repro.cpu.control`, one cycle per state — and emits one
:class:`PredictedTransaction` wherever the hardware would drive a bus.

On the generated self-test programs every placed byte is a known
constant and there are no data-dependent branches, so the abstract
trace is *exact*: its transition sets equal what a traced fault-free
run observes, which is what the static/dynamic cross-check in
:mod:`repro.static.coverage` exploits.  Hand-written programs may
branch on run-time values; the interpreter then forks both arms and
unions their transitions (an over-approximation, reported via
:attr:`PredictedRun.exact`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.cpu.alu import (
    AluResult,
    alu_add,
    alu_and,
    alu_asl,
    alu_asr,
    alu_complement,
    alu_sub,
)
from repro.cpu.control import DecodedOp, OpClass, decode_raw, expected_cycles
from repro.isa.encoding import make_address, page_of
from repro.isa.instructions import Mnemonic
from repro.soc.bus import BusDirection, TransactionKind

#: Power-on content of unplaced memory cells.
MEMORY_FILL = 0x00

_PC_MASK = 0xFFF


@dataclass(frozen=True)
class PredictedTransaction:
    """One statically predicted bus transaction.

    Mirrors :class:`repro.soc.bus.BusTransaction` minus the received
    word (no defect model runs here); ``value`` is ``None`` when the
    driven word is not a compile-time constant.
    """

    cycle: int
    bus: str
    kind: TransactionKind
    direction: BusDirection
    value: Optional[int]


@dataclass(frozen=True)
class AbstractFlags:
    """The V/C/Z/N flags over the three-valued lattice."""

    v: Optional[bool] = False
    c: Optional[bool] = False
    z: Optional[bool] = False
    n: Optional[bool] = False

    def matches(self, mask: int) -> Optional[bool]:
        """Abstract branch condition: ``True``/``False`` when decidable.

        Mirrors :meth:`repro.cpu.registers.Flags.matches` — the branch
        is taken when any selected flag is set.  Returns ``None`` when a
        selected flag is unknown and no selected flag is definitely set.
        """
        selected = [
            flag
            for bit, flag in ((8, self.v), (4, self.c), (2, self.z), (1, self.n))
            if mask & bit
        ]
        if any(flag is True for flag in selected):
            return True
        if all(flag is False for flag in selected):
            return False
        return None


class AbstractMemory:
    """Constant-propagated memory: image bytes plus tracked run-time stores.

    Cells default to the power-on fill; a store of an unknown value makes
    the cell unknown.  ``version`` counts mutations so loop detection can
    tell "memory unchanged" apart cheaply.
    """

    def __init__(self, image: Mapping[int, int], size: int, fill: int = MEMORY_FILL):
        self.size = size
        self.fill = fill
        self._cells: Dict[int, Optional[int]] = dict(image)
        self.version = 0

    def copy(self) -> "AbstractMemory":
        """Independent copy for a forked execution path."""
        clone = AbstractMemory({}, self.size, self.fill)
        clone._cells = dict(self._cells)
        clone.version = self.version
        return clone

    def read(self, address: Optional[int]) -> Optional[int]:
        """The cell's abstract value (unknown address reads unknown)."""
        if address is None:
            return None
        return self._cells.get(address % self.size, self.fill)

    def write(self, address: Optional[int], value: Optional[int]) -> None:
        """Store ``value``; an unknown address degrades the whole memory
        to unknown (every later read would have to account for it).

        ``version`` only advances when a cell actually changes, so a loop
        re-storing the same values still reaches a fixed point and trips
        the state-loop detector instead of the step budget.
        """
        if address is None:
            self.version += 1
            self._cells = {a: None for a in range(self.size)}
            return
        address %= self.size
        if self._cells.get(address, self.fill) != value:
            self.version += 1
            self._cells[address] = value


@dataclass(frozen=True)
class PredictedStore:
    """One statically observed memory write (STA or JSR return byte)."""

    instruction: int
    target: Optional[int]
    value: Optional[int]


@dataclass(frozen=True)
class AbsintNote:
    """A noteworthy event of the abstract run, for the diagnostics pass."""

    kind: str  # "unknown-fetch" | "lost-control" | "state-loop" | "budget"
    address: Optional[int]
    message: str


@dataclass
class PredictedRun:
    """Everything the abstract interpretation learned about one program."""

    entry: int
    transactions: List[PredictedTransaction] = field(default_factory=list)
    address_transitions: Set[Tuple[int, int]] = field(default_factory=set)
    data_transitions: Set[Tuple[int, int, BusDirection]] = field(
        default_factory=set
    )
    stores: List[PredictedStore] = field(default_factory=list)
    notes: List[AbsintNote] = field(default_factory=list)
    executed: Set[int] = field(default_factory=set)
    steps: int = 0
    paths: int = 1
    halted_paths: int = 0
    #: Bus words whose value could not be predicted (each breaks a pair).
    imprecise_words: int = 0

    @property
    def exact(self) -> bool:
        """True when the prediction is a single fully-constant path."""
        return (
            self.paths == 1
            and self.imprecise_words == 0
            and not self.notes
        )

    @property
    def all_paths_halt(self) -> bool:
        """True when every explored path reached the halt convention."""
        return self.halted_paths == self.paths and not self.notes


@dataclass
class _Path:
    """Mutable state of one abstract execution path."""

    pc: int
    ac: Optional[int]
    flags: AbstractFlags
    memory: AbstractMemory
    cycle: int = 0
    last_addr: Optional[int] = 0
    last_data: Optional[int] = 0
    seen: Dict[int, Tuple] = field(default_factory=dict)

    def fork(self, pc: int) -> "_Path":
        return _Path(
            pc=pc,
            ac=self.ac,
            flags=self.flags,
            memory=self.memory.copy(),
            cycle=self.cycle,
            last_addr=self.last_addr,
            last_data=self.last_data,
            seen=dict(self.seen),
        )


class AbstractInterpreter:
    """Predicts the bus activity of a program image.

    Parameters
    ----------
    image:
        Sparse ``address -> byte`` program image.
    memory_size:
        Size of the memory core (addresses are taken modulo this).
    max_steps:
        Instruction budget across all explored paths; exhausting it adds
        a ``budget`` note (surfaced as possible non-termination).
    max_paths:
        Fork budget for unknown branch conditions.
    """

    def __init__(
        self,
        image: Mapping[int, int],
        memory_size: int = 4096,
        max_steps: int = 200_000,
        max_paths: int = 64,
    ):
        self.image = dict(image)
        self.memory_size = memory_size
        self.max_steps = max_steps
        self.max_paths = max_paths

    # -- public API --------------------------------------------------------

    def run(self, entry: int) -> PredictedRun:
        """Explore every path from ``entry`` and collect predictions."""
        run = PredictedRun(entry=entry & _PC_MASK)
        initial = _Path(
            pc=entry & _PC_MASK,
            ac=0,
            flags=AbstractFlags(),
            memory=AbstractMemory(self.image, self.memory_size),
        )
        pending = [initial]
        while pending:
            path = pending.pop()
            if run.paths > self.max_paths:
                run.notes.append(
                    AbsintNote("budget", None, "fork budget exhausted")
                )
                break
            self._run_path(path, run, pending)
        return run

    # -- path execution ----------------------------------------------------

    def _run_path(
        self, path: _Path, run: PredictedRun, pending: List[_Path]
    ) -> None:
        while True:
            if run.steps >= self.max_steps:
                run.notes.append(
                    AbsintNote(
                        "budget",
                        path.pc,
                        f"step budget ({self.max_steps}) exhausted",
                    )
                )
                return
            state_key = (
                path.ac,
                path.flags,
                path.memory.version,
            )
            previous = path.seen.get(path.pc)
            if previous == state_key:
                run.notes.append(
                    AbsintNote(
                        "state-loop",
                        path.pc,
                        "revisited an identical machine state without "
                        "reaching the halt convention",
                    )
                )
                return
            path.seen[path.pc] = state_key
            run.steps += 1
            outcome = self._step(path, run, pending)
            if outcome == "halt":
                run.halted_paths += 1
                return
            if outcome == "dead":
                return

    def _emit(
        self,
        run: PredictedRun,
        path: _Path,
        bus: str,
        kind: TransactionKind,
        direction: BusDirection,
        value: Optional[int],
    ) -> None:
        path.cycle += 1
        run.transactions.append(
            PredictedTransaction(path.cycle, bus, kind, direction, value)
        )
        if bus == "addr":
            if path.last_addr is not None and value is not None:
                run.address_transitions.add((path.last_addr, value))
            else:
                run.imprecise_words += 1
            path.last_addr = value
        else:
            if path.last_data is not None and value is not None:
                run.data_transitions.add((path.last_data, value, direction))
            else:
                run.imprecise_words += 1
            path.last_data = value

    def _emit_addr(
        self,
        run: PredictedRun,
        path: _Path,
        address: Optional[int],
        kind: TransactionKind,
    ) -> None:
        self._emit(run, path, "addr", kind, BusDirection.CPU_TO_MEM, address)

    def _step(
        self, path: _Path, run: PredictedRun, pending: List[_Path]
    ) -> str:
        """Execute one instruction; returns "ok", "halt" or "dead"."""
        memory = path.memory
        pc0 = path.pc
        start_cycle = path.cycle
        run.executed.add(pc0)

        # FETCH1_ADDR / FETCH1_DATA
        self._emit_addr(run, path, pc0, TransactionKind.FETCH)
        byte1 = memory.read(pc0)
        self._emit(
            run,
            path,
            "data",
            TransactionKind.FETCH,
            BusDirection.MEM_TO_CPU,
            byte1,
        )
        if byte1 is None:
            run.notes.append(
                AbsintNote(
                    "unknown-fetch",
                    pc0,
                    "instruction byte is run-time dependent; execution "
                    "cannot be predicted past this point",
                )
            )
            return "dead"
        decoded = decode_raw(byte1)
        path.cycle += 1  # DECODE

        if decoded.op_class is OpClass.IMPLIED:
            path.cycle += 1  # EXECUTE_IMPLIED
            self._apply_implied(path, decoded.mnemonic)
            path.pc = (pc0 + 1) & _PC_MASK
            self._check_cycles(decoded, path, start_cycle)
            return "ok"

        # FETCH2_ADDR / FETCH2_DATA
        pc1 = (pc0 + 1) & _PC_MASK
        self._emit_addr(run, path, pc1, TransactionKind.FETCH)
        byte2 = memory.read(pc1)
        self._emit(
            run,
            path,
            "data",
            TransactionKind.FETCH,
            BusDirection.MEM_TO_CPU,
            byte2,
        )
        next_pc = (pc0 + 2) & _PC_MASK

        if decoded.op_class is OpClass.BRANCH:
            path.cycle += 1  # EXECUTE_BRANCH
            taken = path.flags.matches(decoded.branch_mask)
            if byte2 is None and taken is not False:
                run.notes.append(
                    AbsintNote(
                        "lost-control",
                        pc0,
                        "branch target byte is run-time dependent",
                    )
                )
                return "dead"
            target = (
                make_address(page_of(next_pc), byte2)
                if byte2 is not None
                else None
            )
            if taken is None:
                fork = path.fork(target)
                pending.append(fork)
                path.pc = next_pc
            else:
                path.pc = target if taken else next_pc
            self._check_cycles(decoded, path, start_cycle)
            return "ok"

        effective: Optional[int] = (
            make_address(decoded.page, byte2) if byte2 is not None else None
        )
        if decoded.indirect:
            # POINTER_ADDR / POINTER_DATA
            self._emit_addr(run, path, effective, TransactionKind.POINTER_READ)
            pointer = memory.read(effective)
            self._emit(
                run,
                path,
                "data",
                TransactionKind.POINTER_READ,
                BusDirection.MEM_TO_CPU,
                pointer,
            )
            effective = (
                make_address(decoded.page, pointer)
                if pointer is not None
                else None
            )

        if decoded.op_class is OpClass.MEMREF_READ:
            # OPERAND_ADDR / OPERAND_DATA / EXECUTE_ALU
            self._emit_addr(run, path, effective, TransactionKind.OPERAND_READ)
            operand = memory.read(effective)
            self._emit(
                run,
                path,
                "data",
                TransactionKind.OPERAND_READ,
                BusDirection.MEM_TO_CPU,
                operand,
            )
            path.cycle += 1  # EXECUTE_ALU
            self._apply_alu_op(path, decoded.mnemonic, operand)
            path.pc = next_pc
            self._check_cycles(decoded, path, start_cycle)
            return "ok"

        if decoded.op_class is OpClass.MEMREF_WRITE:
            # WRITE_ADDR / WRITE_DATA
            self._emit_addr(run, path, effective, TransactionKind.OPERAND_WRITE)
            self._emit(
                run,
                path,
                "data",
                TransactionKind.OPERAND_WRITE,
                BusDirection.CPU_TO_MEM,
                path.ac,
            )
            memory.write(effective, path.ac)
            run.stores.append(PredictedStore(pc0, effective, path.ac))
            path.pc = next_pc
            self._check_cycles(decoded, path, start_cycle)
            return "ok"

        if decoded.op_class is OpClass.JSR:
            # WRITE_ADDR / WRITE_DATA / EXECUTE_JUMP
            return_byte = next_pc & 0xFF
            self._emit_addr(run, path, effective, TransactionKind.OPERAND_WRITE)
            self._emit(
                run,
                path,
                "data",
                TransactionKind.OPERAND_WRITE,
                BusDirection.CPU_TO_MEM,
                return_byte,
            )
            memory.write(effective, return_byte)
            run.stores.append(PredictedStore(pc0, effective, return_byte))
            path.cycle += 1  # EXECUTE_JUMP
            if effective is None:
                run.notes.append(
                    AbsintNote(
                        "lost-control", pc0, "JSR target is run-time dependent"
                    )
                )
                return "dead"
            path.pc = (effective + 1) & _PC_MASK
            self._check_cycles(decoded, path, start_cycle)
            return "ok"

        # OpClass.JUMP
        path.cycle += 1  # EXECUTE_JUMP
        if effective is None:
            run.notes.append(
                AbsintNote(
                    "lost-control", pc0, "jump target is run-time dependent"
                )
            )
            return "dead"
        self._check_cycles(decoded, path, start_cycle)
        if effective == pc0:
            return "halt"
        path.pc = effective & _PC_MASK
        return "ok"

    # -- semantics helpers -------------------------------------------------

    def _apply_implied(self, path: _Path, mnemonic: Mnemonic) -> None:
        ac, flags = path.ac, path.flags
        if mnemonic is Mnemonic.CLA:
            path.ac = 0
        elif mnemonic is Mnemonic.CMA:
            self._apply_alu_result(
                path, alu_complement(ac) if ac is not None else None, "ZN"
            )
        elif mnemonic is Mnemonic.CMC:
            path.flags = replace(
                flags, c=(not flags.c) if flags.c is not None else None
            )
        elif mnemonic is Mnemonic.ASL:
            self._apply_alu_result(
                path, alu_asl(ac) if ac is not None else None, "VCZN"
            )
        elif mnemonic is Mnemonic.ASR:
            self._apply_alu_result(
                path, alu_asr(ac) if ac is not None else None, "CZN"
            )
        # NOP and undefined sub-opcodes: no architectural effect.

    def _apply_alu_op(
        self, path: _Path, mnemonic: Mnemonic, operand: Optional[int]
    ) -> None:
        ac = path.ac
        if mnemonic is Mnemonic.LDA:
            path.ac = operand
            if operand is not None:
                path.flags = replace(
                    path.flags,
                    z=(operand & 0xFF) == 0,
                    n=bool(operand & 0x80),
                )
            else:
                path.flags = replace(path.flags, z=None, n=None)
            return
        known = ac is not None and operand is not None
        if mnemonic is Mnemonic.AND:
            result = alu_and(ac, operand) if known else None
            self._apply_alu_result(path, result, "ZN")
        elif mnemonic is Mnemonic.ADD:
            result = alu_add(ac, operand) if known else None
            self._apply_alu_result(path, result, "VCZN")
        elif mnemonic is Mnemonic.SUB:
            result = alu_sub(ac, operand) if known else None
            self._apply_alu_result(path, result, "VCZN")

    def _apply_alu_result(
        self, path: _Path, result: Optional[AluResult], touched: str
    ) -> None:
        if result is None:
            path.ac = None
            path.flags = AbstractFlags(
                v=None if "V" in touched else path.flags.v,
                c=None if "C" in touched else path.flags.c,
                z=None if "Z" in touched else path.flags.z,
                n=None if "N" in touched else path.flags.n,
            )
            return
        path.ac = result.value
        path.flags = AbstractFlags(
            v=result.v if result.v is not None else path.flags.v,
            c=result.c if result.c is not None else path.flags.c,
            z=result.z,
            n=result.n,
        )

    def _check_cycles(
        self, decoded: "DecodedOp", path: _Path, start_cycle: int
    ) -> None:
        """Tie the static replay to the control unit's timing table.

        Every completed instruction must have cost exactly
        :func:`repro.cpu.control.expected_cycles` cycles; any drift
        between this replay and the real control FSM is a bug in the
        analyzer, not in the analyzed program.
        """
        spent = path.cycle - start_cycle
        if spent != expected_cycles(decoded):
            raise AssertionError(
                f"static replay spent {spent} cycles on {decoded.mnemonic} "
                f"but the control unit publishes {expected_cycles(decoded)}"
            )


def predict_run(
    image: Mapping[int, int],
    entry: int,
    memory_size: int = 4096,
    max_steps: int = 200_000,
) -> PredictedRun:
    """One-shot helper: abstractly execute ``image`` from ``entry``."""
    return AbstractInterpreter(
        image, memory_size=memory_size, max_steps=max_steps
    ).run(entry)
