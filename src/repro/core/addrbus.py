"""Address-bus MA test fragments (paper Section 4.2).

Delay faults (Section 4.2.1) use the in-instruction transition
``Ai+1 -> Ax`` of a load: the load's second byte sits at address ``v1``
(instruction at ``v1 - 1``) and its operand address is ``v2``.  Marker
bytes at ``v2`` (pass) and at the corrupted address ``v2'`` (fail) make
the error observable through the loaded value.

Glitch faults (Section 4.2.2) cannot use that transition — every positive
glitch test starts from vector 0...0, so all of them would need their
second byte at address 0 (an address conflict).  Instead they use the
*between-instruction* transition ``Ax -> Ai+2``: a first load reads from
``v1``, and the next instruction sits at ``v2``.  A corrupted fetch
address ``v2'`` makes the CPU execute a *different planted first byte*
(``lda`` from another page), while the second byte still comes from the
true ``v2 + 1`` — so pass/fail markers live at ``p1:o`` and ``p2:o``
(Fig. 7).

Address conflicts and their resolution
--------------------------------------
Tests pin bytes at vector-dictated addresses, so their windows overlap
(e.g. the rising-delay and positive-glitch tests of line *k* both need
bytes around ``~bit_k``).  Three mechanisms dissolve most collisions:

* *value adoption* — flexible bytes (markers, the shared offset ``o``,
  planted load pages) take whatever value an overlapping test fixed;
* *adaptive trailing jumps* — when an overlapping test pre-placed one of
  a fragment's ``JMP`` bytes, the jump's glue target is steered so the
  encoding matches (see
  :meth:`~repro.core.assembly.ProgramAssembly.emit_trailing_jump`);
* *indirect first instruction* — a glitch test whose ``lda v1`` second
  byte collides can switch to ``lda@``: the offset byte becomes flexible
  and a pointer cell placed elsewhere redirects the operand fetch to
  ``v1``, preserving the ``v1 -> v2`` bus transition.

What remains unplaceable (e.g. the negative glitch of line 1, whose
corrupted target *is* its own instruction byte) is skipped — the paper's
"tests that cannot be applied due to address conflicts" — and deferred to
follow-up sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple

from repro.core.allocator import AllocationError
from repro.core.assembly import ProgramAssembly
from repro.core.image import ConflictError, MemoryImage
from repro.core.maf import MAFault, corrupted_vector, ma_vector_pair
from repro.isa.encoding import Instruction, make_address, offset_of, page_of
from repro.isa.instructions import Mnemonic

#: Preferred marker values; flexible placement may adopt others.
PASS_PREFERRED = 0x55
FAIL_PREFERRED = 0x2A
#: Preferred pages for the planted true/corrupted glitch loads (the paper's
#: Fig. 7 uses pages 1 and 2).
TRUE_PAGE_PREFERRED = 0x1
CORRUPT_PAGE_PREFERRED = 0x2


@dataclass(frozen=True)
class FragmentInfo:
    """Result of building one test fragment."""

    entry: int
    responses: Tuple[int, ...]
    technique: str
    faults: Tuple[MAFault, ...]


def _adopt_or_pick_page(
    image: MemoryImage,
    address: int,
    owner: str,
    preferred: int,
    forbidden: Set[int],
) -> Tuple[int, bool]:
    """Choose the planted ``lda`` first byte at ``address``.

    Returns ``(page, indirect)``.  A direct-``lda`` first byte encodes as
    the bare page number (opcode 000, indirect 0), so an existing byte
    0x00-0x0F is adopted as a direct load; 0x10-0x1F is adopted as an
    *indirect* load (the marker then sits one pointer hop away, see
    :func:`_place_path_marker`).  A free byte gets the preferred page
    planted as a direct load.
    """
    existing = image.value_at(address)
    if existing is not None:
        if existing <= 0x0F and existing not in forbidden:
            image.place(address, existing, owner, role="planted lda")
            return existing, False
        if 0x10 <= existing <= 0x1F:
            image.place(address, existing, owner, role="adopted lda@")
            return existing & 0x0F, True
        raise ConflictError(
            address % image.size,
            image.provenance()[address % image.size],
            existing,
            owner,
        )
    page = preferred & 0x0F
    while page in forbidden:
        page = (page + 1) & 0x0F
    image.place(address, page, owner, role="planted lda")
    return page, False


def _place_path_marker(
    image: MemoryImage,
    page: int,
    indirect: bool,
    offset: int,
    owner: str,
    role: str,
    preferred: int,
    avoid: Tuple[int, ...],
) -> int:
    """Place the marker a planted load will deliver into the accumulator.

    For a direct load the marker sits at ``page:offset``.  For an
    adopted *indirect* load the cell at ``page:offset`` is a pointer and
    the marker sits at ``page:pointer`` — one extra, equally flexible
    hop.  Returns the marker value.
    """
    address = make_address(page, offset)
    if not indirect:
        return image.place_flexible(
            address, owner, role=role, preferred=preferred, avoid=avoid
        )
    pointer = image.place_flexible(
        address, owner, role=role + " pointer", preferred=(0x90 + page) & 0xFF
    )
    target = make_address(page, pointer)
    if target == address:
        # Self-pointing cell: the pointer byte doubles as the marker.
        if pointer in avoid:
            raise ConflictError(
                address % image.size,
                image.provenance()[address % image.size],
                pointer,
                owner,
            )
        return pointer
    return image.place_flexible(
        target, owner, role=role, preferred=preferred, avoid=avoid
    )


def delay_footprint(fault: MAFault, memory_size: int = 4096) -> Set[int]:
    """Addresses a delay-fault fragment pins (for allocator lookahead)."""
    pair = ma_vector_pair(fault)
    v1, v2 = pair.v1, pair.v2
    addresses = {(v1 - 1) % memory_size, v1, (v1 + 1) % memory_size,
                 (v1 + 2) % memory_size, v2, corrupted_vector(fault)}
    return {a % memory_size for a in addresses}


def glitch_footprint(fault: MAFault, memory_size: int = 4096) -> Set[int]:
    """Addresses a glitch-fault fragment pins (for allocator lookahead)."""
    pair = ma_vector_pair(fault)
    v2 = pair.v2
    addresses = {(v2 + k) % memory_size for k in range(-2, 4)}
    addresses.add(corrupted_vector(fault) % memory_size)
    return addresses


def build_delay_fragment(assembly: ProgramAssembly, fault: MAFault) -> FragmentInfo:
    """Build the one-instruction delay-fault test (Section 4.2.1).

    Layout (all addresses mod memory size)::

        v1-1: lda <v2>          ; second byte lands at v1
        v1+1: jmp glue
        glue: sta resp
              jmp next
        v2:   PASS marker       ; loaded when the bus is healthy
        v2':  FAIL marker       ; loaded when the victim is late

    Raises :class:`ConflictError`/``AllocationError`` when the pinned
    bytes collide with earlier placements; the caller rolls back.
    """
    if not fault.fault_type.is_delay:
        raise ValueError("delay builder called with a glitch fault")
    pair = ma_vector_pair(fault)
    size = assembly.image.size
    owner = fault.name
    v1, v2 = pair.v1, pair.v2
    v2_corrupt = corrupted_vector(fault)
    entry = (v1 - 1) % size

    # A jump opcode at address 0x000 or 0xFFF would block every other
    # test that plants an adoptable load byte at the shared corruption
    # targets (all-zeros / all-ones); fail over to the two-instruction
    # technique instead.
    hot = {0, size - 1}
    if {(v1 + 1) % size, (v1 + 2) % size} & hot:
        raise AllocationError(
            f"{owner}: one-instruction jump window touches a shared "
            "corruption target"
        )
    response = assembly.new_response_byte(owner)
    assembly.emit_code_at(
        entry, [Instruction(Mnemonic.LDA, operand=v2)], owner, role="pinned lda"
    )
    assembly.emit_trailing_jump(
        (v1 + 1) % size,
        owner,
        [Instruction(Mnemonic.STA, operand=response)],
    )
    # Markers are deferred: their cells often coincide with bytes a
    # later-built test pins (e.g. this line's falling-delay counterpart),
    # and adoption must happen after those bytes exist.
    assembly.defer_marker_pair(
        owner, v2, v2_corrupt, PASS_PREFERRED, FAIL_PREFERRED
    )
    return FragmentInfo(
        entry=entry,
        responses=(response,),
        technique="addr/delay",
        faults=(fault,),
    )


def _emit_first_load_direct(
    assembly: ProgramAssembly, entry: int, v1: int, owner: str
) -> None:
    """Instr. 1 of a glitch test as a direct load: ``lda v1``."""
    assembly.emit_code_at(
        entry, [Instruction(Mnemonic.LDA, operand=v1)], owner, role="pinned lda v1"
    )


def _emit_first_load_indirect(
    assembly: ProgramAssembly, entry: int, v1: int, owner: str
) -> None:
    """Instr. 1 of a glitch test as an indirect load: ``lda@ P:off``.

    The pointer cell ``P:off`` holds ``offset(v1)``, so the operand fetch
    still drives ``v1`` on the address bus — but the instruction's second
    byte (``off``) is now a free choice, dissolving collisions at
    ``entry + 1``.
    """
    size = assembly.image.size
    image = assembly.image
    page = page_of(v1)
    byte1 = 0b0001_0000 | page  # lda, indirect, page of v1
    image.place(entry, byte1, owner, role="pinned lda@ v1")
    offset_address = (entry + 1) % size
    existing = image.value_at(offset_address)
    if existing is not None:
        candidates = [existing]
    elif offset_address in (0, size - 1):
        # The all-zeros/all-ones cells are every test family's corruption
        # target; whatever lands there should stay adoptable as a planted
        # load (0x00-0x0F), preferring "lda page F" which several other
        # constructions want at these cells.
        candidates = [0x0F] + [v for v in range(0x10) if v != 0x0F] + list(
            range(0x10, 256)
        )
    else:
        candidates = list(range(256))
    pointer_value = offset_of(v1)
    for off in candidates:
        pointer = make_address(page, off)
        if pointer == offset_address and off != pointer_value:
            continue  # pointer cell and offset byte coincide but disagree
        held = image.value_at(pointer)
        if held is not None and held != pointer_value:
            continue
        if held is None and not image.is_free(pointer):
            continue  # reserved-pending byte
        if (
            held is None
            and pointer in assembly.allocator.avoid
            and pointer not in assembly.marker_addresses
        ):
            # Future pinned bytes are off limits, but a deferred-marker
            # cell is fair game — the marker adopts whatever we place.
            continue
        image.place(offset_address, off, owner, role="lda@ offset")
        image.place(pointer, pointer_value, owner, role="lda@ pointer")
        return
    raise AllocationError(
        f"{owner}: no pointer cell available for indirect load of {v1:#05x}"
    )


def build_two_instruction_fragment(
    assembly: ProgramAssembly,
    fault: MAFault,
    indirect_first: bool = False,
) -> FragmentInfo:
    """Build the two-instruction test (Section 4.2.2, Fig. 7).

    The paper introduces this technique for the glitch faults, whose MA
    pairs all start from the same first vector and therefore collide in
    the one-instruction scheme.  The same construction is equally valid
    for *delay* faults — the corrupted fetch address is the second vector
    with the victim bit held at its old value — and serves as a fallback
    when a delay test's one-instruction window is contested.

    Layout::

        v2-2: lda <v1>          ; operand fetch puts v1 on the address bus
        v2:   lda p1:o          ; its fetch puts v2 on the address bus
        v2+2: jmp glue
        glue: sta resp
              jmp next
        v2':  first byte "lda p2"   ; executed instead when v2 glitches
        p1:o  PASS marker
        p2:o  FAIL marker

    The second byte ``o`` at ``v2+1`` is shared by the true and the
    corrupted instruction (the CPU's program counter is not corrupted, so
    the second fetch always reads the true ``v2+1``).  With
    ``indirect_first`` the first load uses indirect addressing (see
    :func:`_emit_first_load_indirect`).
    """
    pair = ma_vector_pair(fault)
    size = assembly.image.size
    owner = fault.name
    v1, v2 = pair.v1, pair.v2
    v2_corrupt = corrupted_vector(fault)
    entry = (v2 - 2) % size

    hot = {0, size - 1}
    if {(v2 + 2) % size, (v2 + 3) % size} & hot:
        raise AllocationError(
            f"{owner}: two-instruction jump window touches a shared "
            "corruption target"
        )
    response = assembly.new_response_byte(owner)
    if indirect_first:
        _emit_first_load_indirect(assembly, entry, v1, owner)
    else:
        _emit_first_load_direct(assembly, entry, v1, owner)
    # The *true* second instruction at v2 comes in two modes:
    #   - "lda": a planted (or adopted, value <= 0x0F) direct load from
    #     page p1; pass marker at p1:o (the paper's Fig. 7 construction);
    #   - "implied": an overlapping test fixed the byte at v2 to 0xF0-0xFF,
    #     which executes as a one-byte implied instruction.  The true path
    #     then also executes o (constrained to implied encodings) and the
    #     accumulator keeps a deterministic, instr.1-derived value, while
    #     the corrupted path still loads the fail marker from p2:o.
    existing = assembly.image.value_at(v2)
    implied_mode = existing is not None and existing >= 0xF0
    true_page = None
    true_indirect = False
    if implied_mode:
        assembly.image.place(v2, existing, owner, role="adopted implied")
    else:
        true_page, true_indirect = _adopt_or_pick_page(
            assembly.image, v2, owner, TRUE_PAGE_PREFERRED, forbidden=set()
        )
    forbidden = set()
    if true_page is not None and not true_indirect:
        forbidden = {true_page}
    corrupt_page, corrupt_indirect = _adopt_or_pick_page(
        assembly.image, v2_corrupt, owner, CORRUPT_PAGE_PREFERRED, forbidden
    )
    # Shared second byte (the arbitrary offset "o" of Fig. 7).  In implied
    # mode the true path executes it, so it must itself be implied.
    implied_values = tuple(range(0xF0, 0x100))
    offset = assembly.image.place_flexible(
        (v2 + 1) % size,
        owner,
        role="shared offset",
        preferred=0xF0 if implied_mode else 0x0D,
        allowed=implied_values if implied_mode else None,
    )
    # Markers distinguish the executed path through the loaded value.
    pass_value = None
    if true_page is not None:
        pass_value = _place_path_marker(
            assembly.image,
            true_page,
            true_indirect,
            offset,
            owner,
            role="pass marker",
            preferred=PASS_PREFERRED,
            avoid=(),
        )
    _place_path_marker(
        assembly.image,
        corrupt_page,
        corrupt_indirect,
        offset,
        owner,
        role="fail marker",
        preferred=FAIL_PREFERRED,
        avoid=(pass_value,) if pass_value is not None else (),
    )
    assembly.emit_trailing_jump(
        (v2 + 2) % size,
        owner,
        [Instruction(Mnemonic.STA, operand=response)],
    )
    technique = "addr/two-instr"
    if indirect_first:
        technique += "+indirect"
    if implied_mode:
        technique += "+implied"
    return FragmentInfo(
        entry=entry,
        responses=(response,),
        technique=technique,
        faults=(fault,),
    )


def fragment_variants(fault: MAFault):
    """Builder callables to try for ``fault``, most preferred first.

    Each takes the assembly and returns a :class:`FragmentInfo`; the
    program builder tries them transactionally in order.  Delay faults
    prefer the paper's one-instruction technique and fall back to the
    two-instruction one; glitch faults only have the two-instruction
    technique, optionally with an indirect first load.
    """
    two_instruction = (
        lambda assembly, f=fault: build_two_instruction_fragment(assembly, f),
        lambda assembly, f=fault: build_two_instruction_fragment(
            assembly, f, indirect_first=True
        ),
    )
    if fault.fault_type.is_delay:
        return (
            lambda assembly, f=fault: build_delay_fragment(assembly, f),
        ) + two_instruction
    return two_instruction


def build_address_fragment(
    assembly: ProgramAssembly, fault: MAFault
) -> FragmentInfo:
    """Dispatch to the preferred address-bus builder for ``fault``."""
    if fault.fault_type.is_delay:
        return build_delay_fragment(assembly, fault)
    return build_two_instruction_fragment(assembly, fault)


def address_footprint(fault: MAFault, memory_size: int = 4096) -> Set[int]:
    """Pinned-address lookahead for ``fault``.

    Delay faults may end up using either technique, so both windows are
    reserved.
    """
    if fault.fault_type.is_delay:
        return delay_footprint(fault, memory_size) | glitch_footprint(
            fault, memory_size
        )
    return glitch_footprint(fault, memory_size)
