"""Fault diagnosis from test responses (paper Section 4.3).

The compaction scheme was designed "without losing any diagnostic
information": each test of a compacted family contributes a one-hot
value, so "the position of the '0' bit tells which test failed".  This
module generalizes that idea to every response the self-test programs
produce:

* an individual response cell diverging from the golden value implicates
  the test that owns the cell;
* a diverged compacted signature implicates, per flipped bit, the family
  test whose one-hot contribution carries that bit;
* a run that never halts implicates nothing specific (the report flags
  it instead).

Aggregating the implicated tests' victims gives a per-wire suspicion
vote — the data an off-chip tester would use to localize the defective
interconnect.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.maf import MAFault, ma_vector_pair
from repro.core.program_builder import AppliedTest, SelfTestProgram
from repro.core.signature import GoldenReference
from repro.soc.system import CpuMemorySystem


@dataclass(frozen=True)
class Implication:
    """One piece of diagnostic evidence."""

    fault: MAFault
    response_address: int
    expected: int
    observed: int
    via: str  # "cell" or "signature bit k"


@dataclass
class DiagnosisReport:
    """Localization evidence extracted from one defective run."""

    implications: List[Implication] = field(default_factory=list)
    timed_out: bool = False
    unattributed_cells: List[int] = field(default_factory=list)

    @property
    def suspected_faults(self) -> List[MAFault]:
        """Faults implicated by at least one piece of evidence."""
        seen = []
        for implication in self.implications:
            if implication.fault not in seen:
                seen.append(implication.fault)
        return seen

    def victim_votes(self) -> Dict[int, int]:
        """How often each wire's tests were implicated (0-based wires)."""
        votes = Counter(
            implication.fault.victim for implication in self.implications
        )
        return dict(votes)

    def prime_suspect(self) -> Optional[int]:
        """The wire with the most evidence (None without evidence)."""
        votes = self.victim_votes()
        if not votes:
            return None
        return max(votes, key=lambda wire: (votes[wire], -wire))


def _response_owners(
    program: SelfTestProgram,
) -> Dict[int, List[AppliedTest]]:
    owners: Dict[int, List[AppliedTest]] = {}
    for test in program.applied:
        for address in test.responses:
            owners.setdefault(address, []).append(test)
    return owners


def _signature_bit_owner(
    group: List[AppliedTest], bit: int
) -> Optional[AppliedTest]:
    """The group member whose contribution carries ``bit``.

    Compaction adds each test's second vector into the signature; for
    one-hot families the mapping bit -> test is exact, otherwise the
    first contributor with that bit set is blamed (best effort, as in
    the paper's diagnosis discussion).
    """
    for test in group:
        if ma_vector_pair(test.fault).v2 & (1 << bit):
            return test
    return None


def diagnose(
    program: SelfTestProgram,
    golden: GoldenReference,
    system: CpuMemorySystem,
    halted: bool = True,
) -> DiagnosisReport:
    """Extract localization evidence from a finished defective run."""
    report = DiagnosisReport(timed_out=not halted)
    if not halted:
        return report
    owners = _response_owners(program)
    snapshot = system.memory.snapshot()
    for address, group in owners.items():
        expected = golden.snapshot[address]
        observed = snapshot[address]
        if expected == observed:
            continue
        if len(group) == 1:
            report.implications.append(
                Implication(
                    fault=group[0].fault,
                    response_address=address,
                    expected=expected,
                    observed=observed,
                    via="cell",
                )
            )
            continue
        # Compacted signature: blame per flipped bit.
        flipped = expected ^ observed
        blamed_any = False
        for bit in range(8):
            if not flipped & (1 << bit):
                continue
            owner = _signature_bit_owner(group, bit)
            if owner is None:
                continue
            blamed_any = True
            report.implications.append(
                Implication(
                    fault=owner.fault,
                    response_address=address,
                    expected=expected,
                    observed=observed,
                    via=f"signature bit {bit}",
                )
            )
        if not blamed_any:
            report.unattributed_cells.append(address)
    # Divergence outside known response cells (e.g. a corrupted store
    # address) is recorded but not attributed.
    for address, (expected, observed) in system.memory.diff(
        golden.snapshot
    ).items():
        if address not in owners:
            report.unattributed_cells.append(address)
    return report


def diagnosis_accuracy(
    reports_and_defects: List[Tuple[DiagnosisReport, Tuple[int, ...]]],
) -> float:
    """Fraction of diagnosable runs whose prime suspect is a defective
    wire or its direct neighbour (coupling defects straddle two wires)."""
    hits = 0
    total = 0
    for report, defective_wires in reports_and_defects:
        suspect = report.prime_suspect()
        if suspect is None:
            continue
        total += 1
        near = set(defective_wires)
        near |= {w + 1 for w in defective_wires} | {
            w - 1 for w in defective_wires
        }
        if suspect in near:
            hits += 1
    return hits / total if total else 0.0
