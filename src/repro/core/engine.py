"""Two-tier defect-simulation engines: exact replay and screen-then-replay.

The defect simulator's contract is per-defect :class:`DetectionOutcome`
values; *how* a defect is judged is an engine concern:

:class:`ExactEngine`
    One full cycle-accurate replay per defect with the crosstalk error
    model installed on the bus under test — the original behavior of
    :class:`~repro.core.coverage.DefectSimulator`.

:class:`ScreenedEngine`
    Exploits the screening invariant (see :mod:`repro.xtalk.screen`):
    the system is deterministic and the error model is a pure function
    of each bus transition, so a defective run is cycle-identical to the
    golden run up to its first corrupted transaction.  The engine

    1. captures the golden run **once** with the full transaction trace
       of the bus under test and periodic :class:`SystemSnapshot`
       checkpoints,
    2. screens the whole library against that trace in one (optionally
       vectorized) pass,
    3. skips simulation entirely for defects whose trace is clean
       (provably undetected — outcome identical to fault-free),
    4. *dedups* the rest by replay behavior: every real replay records
       the ``transition -> received`` decisions its run actually used;
       a later defect whose kernel agrees with a recorded run on every
       one of those transitions provably reproduces that run cycle for
       cycle, so its outcome is reused without simulating (random
       capacitance perturbations cluster heavily — thousands of
       corrupting defects typically collapse to a few dozen behaviors),
    5. and replays the genuinely new behaviors from the last golden
       checkpoint before their first corrupted transaction — the replay
       only pays for the suffix.

    The outcomes are bit-identical to :class:`ExactEngine` by
    construction: clean defects cannot diverge, a deduped defect's run
    is forced through the same decisions as the recorded run it matched
    (the bus hook is the *only* path a defect influences the system
    through), and a resumed replay re-executes every cycle from a state
    the defective run provably shares.

Engines do not do their own per-defect observability — the simulator
remains the instrumented facade — but the screened engine counts its
triage decisions (``coverage.engine.screened_clean`` /
``coverage.engine.replay_deduped`` / ``coverage.engine.replayed`` /
``coverage.engine.checkpoint_resumed``) through the null-safe registry
so campaign reports can show how much work screening saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.program_builder import SelfTestProgram
from repro.core.signature import (
    GoldenReference,
    ResponseCheck,
    build_base_image,
    check_response,
    make_system,
)
from repro.obs import runtime as obs_runtime
from repro.soc.bus import Bus, BusDirection, BusTransaction
from repro.soc.system import CpuMemorySystem, SystemSnapshot
from repro.xtalk.calibration import Calibration
from repro.xtalk.defects import Defect
from repro.xtalk.error_model import CrosstalkErrorModel
from repro.xtalk.kernel import TransitionKernel
from repro.xtalk.params import ElectricalParams
from repro.xtalk.screen import DecisionEvaluator, ScreenVerdict, TraceScreen

ENGINES = ("exact", "screened")

#: Bounds on the automatic checkpoint spacing (cycles).  The golden runs
#: of per-line programs are well under 100 cycles, so the lower clamp
#: keeps even those resumable near their first corruption; the upper
#: clamp bounds snapshot memory for long programs.
MIN_CHECKPOINT_INTERVAL = 4
MAX_CHECKPOINT_INTERVAL = 256
CHECKPOINT_DENSITY = 64  # target ~this many checkpoints per golden run


def _bus_of(system: CpuMemorySystem, bus: str) -> Bus:
    return system.address_bus if bus == "addr" else system.data_bus


@dataclass(frozen=True)
class Checkpoint:
    """A golden-run :class:`SystemSnapshot` tagged with its cycle."""

    cycle: int
    snapshot: SystemSnapshot


@dataclass(frozen=True)
class GoldenCapture:
    """One golden run's reference, bus trace, and checkpoint series."""

    golden: GoldenReference
    trace: List[BusTransaction]
    checkpoints: List[Checkpoint]


def auto_checkpoint_interval(golden_cycles: int) -> int:
    """Checkpoint spacing targeting ~:data:`CHECKPOINT_DENSITY` snapshots."""
    return max(
        MIN_CHECKPOINT_INTERVAL,
        min(MAX_CHECKPOINT_INTERVAL, golden_cycles // CHECKPOINT_DENSITY),
    )


def _count_golden_cycles(cycles: int) -> None:
    """Tally fault-free simulation work (``coverage.engine.golden_cycles``).

    Warm-cache engine builds skip golden simulation entirely, which is
    exactly what this counter staying at zero proves.
    """
    obs_runtime.registry().counter("coverage.engine.golden_cycles").inc(cycles)


def capture_golden_with_trace(
    program: SelfTestProgram,
    bus: str,
    interval: Optional[int] = None,
    base_image: Optional[bytes] = None,
    core: str = "auto",
) -> GoldenCapture:
    """Run ``program`` fault-free, recording trace and checkpoints.

    The run is step-for-step the one :meth:`CpuMemorySystem.run`
    performs (reset to the program entry, clock until halt), so the
    captured trace and checkpoints are exactly what every defective
    replay reproduces up to its first corruption.

    ``interval`` is the checkpoint spacing in cycles;
    ``None`` derives it from the golden cycle count via
    :func:`auto_checkpoint_interval` (which costs one extra fault-free
    run — negligible against a library-sized campaign).
    """
    if interval is None:
        probe = make_system(program, base_image, core=core)
        result = probe.run(entry=program.entry, max_cycles=10_000_000)
        if not result.halted:
            raise RuntimeError("golden run did not reach the halt convention")
        _count_golden_cycles(result.cycles)
        interval = auto_checkpoint_interval(result.cycles)
    if interval <= 0:
        raise ValueError("checkpoint interval must be positive")

    system = make_system(program, base_image, core=core)
    trace: List[BusTransaction] = []
    _bus_of(system, bus).add_observer(trace.append)
    system.reset(program.entry)
    checkpoints = [Checkpoint(cycle=0, snapshot=system.snapshot())]
    while not system.cpu.halted and system.cycle < 10_000_000:
        system.step()
        if system.cycle % interval == 0 and not system.cpu.halted:
            checkpoints.append(
                Checkpoint(cycle=system.cycle, snapshot=system.snapshot())
            )
    if not system.cpu.halted:
        raise RuntimeError("golden run did not reach the halt convention")
    _count_golden_cycles(system.cycle)
    golden = GoldenReference(
        snapshot=system.memory.snapshot(),
        cycles=system.cycle,
        instructions=system.cpu.instruction_count,
    )
    return GoldenCapture(golden=golden, trace=trace, checkpoints=checkpoints)


class SimulationEngine:
    """Judges one defect at a time against one self-test program.

    Contract shared by every engine:

    * :attr:`golden` is the fault-free reference of the program.
    * :meth:`check` returns the :class:`ResponseCheck` the paper's
      external tester would produce for the defective chip — engines
      must be outcome-equivalent, whatever shortcut they take.
    * :attr:`last_model` is the error model of the most recent
      :meth:`check` call, or ``None`` when the engine proved the defect
      clean without simulating (callers roll its verdict statistics into
      observability when present).
    * :meth:`prepare` is an optional whole-library hook so batch-capable
      engines can amortize work across defects.
    """

    name: str
    golden: GoldenReference
    last_model: Optional[CrosstalkErrorModel]

    def prepare(self, defects: Iterable[Defect]) -> None:
        """Optional batch hook called before a library sweep."""

    def check(self, defect: Defect) -> ResponseCheck:
        raise NotImplementedError


class ExactEngine(SimulationEngine):
    """One full replay per defect (the original simulator behavior).

    ``golden`` may be injected (e.g. from the golden-run artifact
    cache, :mod:`repro.core.cache`) to skip the fault-free probe run;
    ``core`` selects the CPU implementation for every replay.
    """

    name = "exact"

    def __init__(
        self,
        program: SelfTestProgram,
        params: ElectricalParams,
        calibration: Calibration,
        bus: str,
        core: str = "auto",
        golden: Optional[GoldenReference] = None,
    ):
        self.program = program
        self.params = params
        self.calibration = calibration
        self.bus = bus
        self.core = core
        self._base_image = build_base_image(program)
        if golden is None:
            probe = make_system(program, self._base_image, core=core)
            result = probe.run(entry=program.entry, max_cycles=10_000_000)
            if not result.halted:
                raise RuntimeError(
                    "golden run did not reach the halt convention"
                )
            _count_golden_cycles(result.cycles)
            golden = GoldenReference(
                snapshot=probe.memory.snapshot(),
                cycles=result.cycles,
                instructions=result.instructions,
            )
        self.golden = golden
        self.last_model = None

    def check(self, defect: Defect) -> ResponseCheck:
        system = make_system(self.program, self._base_image, core=self.core)
        model = CrosstalkErrorModel(defect.caps, self.params, self.calibration)
        _bus_of(system, self.bus).install_corruption_hook(model.corrupt)
        result = system.run(
            entry=self.program.entry, max_cycles=self.golden.max_cycles
        )
        self.last_model = model
        return check_response(self.golden, system, result.halted)


#: A fault-free run is indistinguishable from golden by definition.
CLEAN_CHECK = ResponseCheck(detected=False, timed_out=False, mismatches=0)

#: Cap on recorded replay behaviors per first-corruption group.  Real
#: libraries collapse to a handful of behaviors per group; the cap only
#: bounds the cost of the agreement scan if a pathological library keeps
#: producing new ones (defects beyond it are simply replayed).
MAX_REPLAY_CLASSES = 32

#: Total recorded decision entries in a group beyond which the
#: agreement scan switches from the scalar kernel to the vectorized
#: :class:`DecisionEvaluator` (timed-out replays record hundreds of
#: transitions; below this the scalar scan with move-to-front wins).
VECTOR_MATCH_MIN_ENTRIES = 64

#: One deduplicated transition decision: ``(previous, driven, direction)
#: -> received``.
_Decision = Tuple[Tuple[int, int, BusDirection], int]


class _ReplayClass:
    """One observed replay behavior and the outcome it produced.

    ``decisions`` holds every distinct corruptible transition the
    recorded run pushed through its corruption hook, with the word the
    receiver sampled.  Any defect whose kernel reproduces all of these
    decisions drives the deterministic system through the identical
    cycle sequence, so it provably shares ``check``.  The record is
    immutable; ``evaluator`` lazily caches the vectorized matcher for
    large decision maps.
    """

    __slots__ = ("decisions", "check", "evaluator")

    def __init__(
        self, decisions: Tuple[_Decision, ...], check: ResponseCheck
    ):
        self.decisions = decisions
        self.check = check
        self.evaluator: Optional[DecisionEvaluator] = None


class ScreenedEngine(SimulationEngine):
    """Screen the library against the golden trace; replay only divergers.

    Parameters
    ----------
    checkpoint_interval:
        Golden checkpoint spacing in cycles (``None``: derived from the
        golden cycle count).
    screen_backend:
        Passed to :class:`~repro.xtalk.screen.TraceScreen` (``"auto"``,
        ``"numpy"`` or ``"python"``).
    core:
        CPU implementation for the capture and every replay.
    capture / verdicts:
        Warm golden artifacts (e.g. from :mod:`repro.core.cache`).
        With a ``capture`` the engine does zero golden simulation;
        ``verdicts`` preloads screening results keyed by defect index,
        so already-screened defects skip the screen too.
    """

    name = "screened"

    def __init__(
        self,
        program: SelfTestProgram,
        params: ElectricalParams,
        calibration: Calibration,
        bus: str,
        checkpoint_interval: Optional[int] = None,
        screen_backend: str = "auto",
        core: str = "auto",
        capture: Optional[GoldenCapture] = None,
        verdicts: Optional[Dict[int, ScreenVerdict]] = None,
    ):
        self.program = program
        self.params = params
        self.calibration = calibration
        self.bus = bus
        self.core = core
        self._base_image = build_base_image(program)
        if capture is None:
            capture = capture_golden_with_trace(
                program, bus, interval=checkpoint_interval,
                base_image=self._base_image, core=core,
            )
        self.capture = capture
        self.golden = capture.golden
        self.checkpoints = capture.checkpoints
        self.screen = TraceScreen(
            capture.trace, params, calibration, backend=screen_backend
        )
        self._scratch = make_system(program, self._base_image, core=core)
        self._verdicts: Dict[int, ScreenVerdict] = dict(verdicts or {})
        #: Optional write-back hook: called with the cumulative verdict
        #: map whenever :meth:`prepare` screens defects it did not
        #: already know (the cache layer uses this to persist verdicts).
        self.screen_sink = None
        # first corrupted trace index -> replay behaviors seen so far,
        # most-recently-matched first (defect libraries cluster, so the
        # scan almost always hits the front entry).
        self._replay_classes: Dict[int, List[_ReplayClass]] = {}
        # Vectorized agreement checks only when the screen itself runs
        # vectorized, so backend="python" stays a genuine pure-Python
        # configuration.
        self._vector_match = self.screen.backend == "numpy"
        self.last_model = None

    # -- screening ----------------------------------------------------------

    def prepare(self, defects: Iterable[Defect]) -> None:
        """Screen the library in one (vectorized) pass.

        Defects with preloaded verdicts (from the cache) are skipped
        and counted as ``coverage.engine.verdicts_preloaded``; when the
        pass screened anything new, the cumulative verdict map is
        offered to :attr:`screen_sink` for write-back.
        """
        defects = list(defects)
        missing = [
            defect for defect in defects if defect.index not in self._verdicts
        ]
        preloaded = len(defects) - len(missing)
        if preloaded:
            obs_runtime.registry().counter(
                "coverage.engine.verdicts_preloaded"
            ).inc(preloaded)
        if not missing:
            return
        verdicts = self.screen.screen(missing)
        for defect, verdict in zip(missing, verdicts):
            self._verdicts[defect.index] = verdict
        if self.screen_sink is not None:
            self.screen_sink(dict(self._verdicts))

    def _verdict_for(self, defect: Defect) -> ScreenVerdict:
        verdict = self._verdicts.get(defect.index)
        if verdict is None:
            verdict = self.screen.screen_one(defect)
            self._verdicts[defect.index] = verdict
        return verdict

    def _checkpoint_before(self, cycle: int) -> Checkpoint:
        """The latest golden checkpoint strictly before ``cycle``.

        A transaction stamped with cycle *c* happens during the step
        that advances the clock to *c*, so any checkpoint taken at a
        cycle ``< c`` precedes it.
        """
        best = self.checkpoints[0]
        for checkpoint in self.checkpoints:
            if checkpoint.cycle >= cycle:
                break
            best = checkpoint
        return best

    # -- judging ------------------------------------------------------------

    def _agrees(
        self, known: _ReplayClass, defect: Defect, kernel: TransitionKernel
    ) -> bool:
        """Does ``defect`` reproduce every decision of ``known``'s run?

        Agreement must hold on *every* transition the recorded run
        pushed through its hook — including the ones it left intact —
        because a defect that additionally corrupts a later transition
        of that run would diverge from it there.  Large decision maps
        (timed-out replays record hundreds of transitions) go through
        the vectorized :class:`DecisionEvaluator`; small maps and
        borderline comparisons use the scalar kernel.
        """
        if (
            self._vector_match
            and len(known.decisions) >= VECTOR_MATCH_MIN_ENTRIES
        ):
            if known.evaluator is None:
                known.evaluator = DecisionEvaluator(
                    known.decisions, self.params, self.calibration,
                    width=defect.caps.wire_count,
                )
            agreement = known.evaluator.agreement(defect.caps)
            if agreement is not None:
                return bool(agreement.all())
            # Borderline comparison: only the scalar kernel is exact.
        decide = kernel.decide
        return all(
            decide(previous, driven, direction)[0] == received
            for (previous, driven, direction), received in known.decisions
        )

    def _matching_class(
        self, classes: List[_ReplayClass], defect: Defect,
        kernel: TransitionKernel,
    ) -> Optional[_ReplayClass]:
        """The recorded behavior ``defect`` reproduces, if any."""
        for position, known in enumerate(classes):
            if self._agrees(known, defect, kernel):
                if position:  # move-to-front: clusters are heavily skewed
                    del classes[position]
                    classes.insert(0, known)
                return known
        return None

    def check(self, defect: Defect) -> ResponseCheck:
        verdict = self._verdict_for(defect)
        registry = obs_runtime.registry()
        if verdict.clean:
            # Provably identical to the fault-free run: no simulation.
            self.last_model = None
            registry.counter("coverage.engine.screened_clean").inc()
            return CLEAN_CHECK
        kernel = TransitionKernel(defect.caps, self.params, self.calibration)
        classes = self._replay_classes.setdefault(verdict.first_index, [])
        known = self._matching_class(classes, defect, kernel)
        if known is not None:
            # Provably identical to an already-simulated defective run.
            self.last_model = None
            registry.counter("coverage.engine.replay_deduped").inc()
            return known.check
        registry.counter("coverage.engine.replayed").inc()
        checkpoint = self._checkpoint_before(verdict.first_cycle)
        if checkpoint.cycle > 0:
            registry.counter("coverage.engine.checkpoint_resumed").inc()
        system = self._scratch
        system.restore(checkpoint.snapshot)
        model = CrosstalkErrorModel(
            defect.caps, self.params, self.calibration, kernel=kernel
        )
        corrupt = model.corrupt
        decisions: Dict[Tuple[int, int, BusDirection], int] = {}

        def recording_hook(
            previous: int, driven: int, direction: BusDirection
        ) -> int:
            received = corrupt(previous, driven, direction)
            if previous != driven:  # no-transition words corrupt for no kernel
                decisions[(previous, driven, direction)] = received
            return received

        bus = _bus_of(system, self.bus)
        bus.install_corruption_hook(recording_hook)
        try:
            result = system.resume(max_cycles=self.golden.max_cycles)
        finally:
            bus.install_corruption_hook(None)
        self.last_model = model
        outcome = check_response(self.golden, system, result.halted)
        if len(classes) < MAX_REPLAY_CLASSES:
            classes.append(
                _ReplayClass(decisions=tuple(decisions.items()), check=outcome)
            )
        return outcome


def make_engine(
    engine: str,
    program: SelfTestProgram,
    params: ElectricalParams,
    calibration: Calibration,
    bus: str,
    checkpoint_interval: Optional[int] = None,
    screen_backend: str = "auto",
    core: str = "auto",
    capture: Optional[GoldenCapture] = None,
    verdicts: Optional[Dict[int, ScreenVerdict]] = None,
) -> SimulationEngine:
    """Engine factory keyed by name (``"exact"`` / ``"screened"``).

    ``capture``/``verdicts`` inject warm golden artifacts (from
    :mod:`repro.core.cache`); with a capture neither engine simulates
    the golden run.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}")
    if engine == "exact":
        return ExactEngine(
            program,
            params,
            calibration,
            bus,
            core=core,
            golden=capture.golden if capture is not None else None,
        )
    return ScreenedEngine(
        program,
        params,
        calibration,
        bus,
        checkpoint_interval=checkpoint_interval,
        screen_backend=screen_backend,
        core=core,
        capture=capture,
        verdicts=verdicts,
    )


__all__ = [
    "ENGINES",
    "Checkpoint",
    "GoldenCapture",
    "SimulationEngine",
    "ExactEngine",
    "ScreenedEngine",
    "auto_checkpoint_interval",
    "capture_golden_with_trace",
    "make_engine",
]
