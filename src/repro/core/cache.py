"""Content-addressed on-disk cache of golden-run artifacts.

Since PR 4, every :class:`~repro.core.campaign.CampaignSpec` can rebuild
its engine from scratch — which each process-pool worker, each
``--resume``, and each repeated CLI invocation did by re-simulating the
entire golden run.  The golden artifacts are pure functions of the
spec's :meth:`~repro.core.campaign.CampaignSpec.fingerprint` (program
image + entry, electrical parameters, calibration, defect library, bus)
plus the checkpoint-interval knob, so this module stores them on disk
keyed by exactly that.

Entry layout (one file per key, ``<sha256>.rgc`` under the cache root):

* line 1 — a JSON header: magic, format version, key, fingerprint,
  human-readable stats, and a section table ``{name: {offset, length,
  raw_length, codec, sha256}}`` with offsets relative to the byte after
  the header newline;
* body — the concatenated sections, each packed with :mod:`struct` and
  optionally zlib-compressed:

  - ``golden``   — cycle/instruction counts + final memory image,
  - ``trace``    — the golden bus-transaction stream,
  - ``checkpoints`` — the mid-run :class:`SystemSnapshot` series,
  - ``verdicts`` — screen verdicts already computed for this golden
    trace (written back after screening so warm runs skip the screen
    for known defects).

Integrity: every section carries a SHA-256 over its stored bytes and is
verified on load; any mismatch, truncation, or undecodable structure
evicts the entry (``corrupt_evicted`` counter) and reports a miss —
a damaged cache can cost time, never correctness.  Writes go through a
temp file + :func:`os.replace`, so readers never observe a partial
entry.  Invalidation is purely key-based: any input change moves the
fingerprint, and :data:`FORMAT_VERSION` is folded into the key so
layout changes orphan (rather than misread) old entries.

Environment: ``REPRO_CACHE_DIR`` overrides the default ``.repro-cache``
root; ``REPRO_GOLDEN_CACHE=0`` disables the cache entirely.  All
operations count into ``coverage.engine.golden_cache.*`` when an
observability session is active.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.cpu.control import ControlState, decode_raw
from repro.cpu.datapath import CpuSnapshot
from repro.cpu.registers import Flags, RegisterFile
from repro.core.engine import Checkpoint, GoldenCapture
from repro.core.signature import GoldenReference
from repro.obs import runtime as obs_runtime
from repro.soc.bus import BusDirection, BusSnapshot, BusTransaction, TransactionKind
from repro.soc.system import SystemSnapshot
from repro.xtalk.screen import ScreenVerdict

__all__ = [
    "CacheEntryInfo",
    "CacheError",
    "CachedCampaign",
    "DEFAULT_CACHE_DIR",
    "FORMAT_VERSION",
    "GoldenRunCache",
    "cache_enabled",
    "cache_root",
    "default_cache",
]

logger = logging.getLogger(__name__)

MAGIC = "repro-golden-cache"
FORMAT_VERSION = 1
DEFAULT_CACHE_DIR = ".repro-cache"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_ENABLE = "REPRO_GOLDEN_CACHE"
_DISABLE_TOKENS = ("0", "off", "false", "no")
_SUFFIX = ".rgc"
_COUNTER_PREFIX = "coverage.engine.golden_cache"

_KINDS: Tuple[TransactionKind, ...] = tuple(TransactionKind)
_KIND_INDEX = {kind: index for index, kind in enumerate(_KINDS)}
_DIRECTIONS: Tuple[BusDirection, ...] = tuple(BusDirection)
_DIRECTION_INDEX = {direction: index for index, direction in enumerate(_DIRECTIONS)}
_STATES: Tuple[ControlState, ...] = tuple(ControlState)
_STATE_INDEX = {state: index for index, state in enumerate(_STATES)}

# Packed record layouts (little-endian, no padding).
_TXN = struct.Struct("<IBBHHH")  # cycle, kind, direction, previous, driven, received
_VERDICT = struct.Struct("<IBqq")  # defect_index, clean, first_index, first_cycle
_GOLDEN_HEAD = struct.Struct("<II")  # cycles, instructions
_CHECKPOINT_HEAD = struct.Struct(
    "<IH" "HHHHH" "B" "BIB" "HHHH"
)  # cycle, pending | ac,pc,ir,arg,mar | flags | state,icount,has_decoded | latches
_BUS_SNAP = struct.Struct("<HQQ" + "Q" * len(_KINDS))


class CacheError(Exception):
    """A cache entry could not be encoded or decoded."""


def cache_enabled() -> bool:
    """Whether the golden-run cache is enabled (``REPRO_GOLDEN_CACHE``)."""
    token = os.environ.get(ENV_CACHE_ENABLE, "1").strip().lower()
    return token not in _DISABLE_TOKENS


def cache_root() -> Path:
    """The cache directory (``REPRO_CACHE_DIR`` or ``.repro-cache``)."""
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


def default_cache() -> Optional["GoldenRunCache"]:
    """The environment-configured cache, or ``None`` when disabled.

    Reads the environment at call time so tests and workers can point
    ``REPRO_CACHE_DIR`` somewhere hermetic.
    """
    if not cache_enabled():
        return None
    return GoldenRunCache(cache_root())


def _count(name: str, amount: int = 1) -> None:
    obs_runtime.registry().counter(f"{_COUNTER_PREFIX}.{name}").inc(amount)


# ---------------------------------------------------------------------------
# Section codecs
# ---------------------------------------------------------------------------


def _pack_trace(trace: List[BusTransaction]) -> bytes:
    out = bytearray()
    pack = _TXN.pack
    for txn in trace:
        out += pack(
            txn.cycle,
            _KIND_INDEX[txn.kind],
            _DIRECTION_INDEX[txn.direction],
            txn.previous,
            txn.driven,
            txn.received,
        )
    return bytes(out)


def _unpack_trace(blob: bytes, bus: str) -> List[BusTransaction]:
    if len(blob) % _TXN.size:
        raise CacheError("trace section is not a whole number of records")
    trace = []
    for cycle, kind, direction, previous, driven, received in _TXN.iter_unpack(blob):
        if kind >= len(_KINDS) or direction >= len(_DIRECTIONS):
            raise CacheError("trace record has an out-of-range enum index")
        trace.append(
            BusTransaction(
                cycle=cycle,
                bus=bus,
                kind=_KINDS[kind],
                direction=_DIRECTIONS[direction],
                previous=previous,
                driven=driven,
                received=received,
            )
        )
    return trace


def _pack_bus_snapshot(snapshot: BusSnapshot) -> bytes:
    counts = dict(snapshot.by_kind)
    return _BUS_SNAP.pack(
        snapshot.value,
        snapshot.transactions,
        snapshot.corrupted,
        *(counts.get(kind, 0) for kind in _KINDS),
    )


def _unpack_bus_snapshot(blob: bytes) -> BusSnapshot:
    fields = _BUS_SNAP.unpack(blob)
    return BusSnapshot(
        value=fields[0],
        transactions=fields[1],
        corrupted=fields[2],
        by_kind=tuple(zip(_KINDS, fields[3:])),
    )


def _pack_checkpoints(checkpoints: List[Checkpoint], memory_size: int) -> bytes:
    out = bytearray()
    for checkpoint in checkpoints:
        snapshot = checkpoint.snapshot
        cpu = snapshot.cpu
        registers = cpu.registers
        if len(snapshot.memory) != memory_size:
            raise CacheError("checkpoint memory size mismatch")
        out += _CHECKPOINT_HEAD.pack(
            snapshot.cycle,
            snapshot.pending_address,
            registers.ac,
            registers.pc,
            registers.ir,
            registers.arg,
            registers.mar,
            registers.flags.as_mask(),
            _STATE_INDEX[cpu.state],
            cpu.instruction_count,
            1 if cpu.decoded is not None else 0,
            cpu.instruction_start,
            cpu.effective_address,
            cpu.pointer_address,
            cpu.operand,
        )
        out += _pack_bus_snapshot(snapshot.address_bus)
        out += _pack_bus_snapshot(snapshot.data_bus)
        out += snapshot.memory
    return bytes(out)


def _unpack_checkpoints(blob: bytes, memory_size: int) -> List[Checkpoint]:
    record_size = _CHECKPOINT_HEAD.size + 2 * _BUS_SNAP.size + memory_size
    if record_size <= 0 or len(blob) % record_size:
        raise CacheError("checkpoint section is not a whole number of records")
    checkpoints = []
    for base in range(0, len(blob), record_size):
        head = _CHECKPOINT_HEAD.unpack_from(blob, base)
        (
            cycle,
            pending,
            ac,
            pc,
            ir,
            arg,
            mar,
            flag_mask,
            state_index,
            instruction_count,
            has_decoded,
            instruction_start,
            effective_address,
            pointer_address,
            operand,
        ) = head
        if state_index >= len(_STATES):
            raise CacheError("checkpoint record has an out-of-range state")
        offset = base + _CHECKPOINT_HEAD.size
        address_bus = _unpack_bus_snapshot(blob[offset : offset + _BUS_SNAP.size])
        offset += _BUS_SNAP.size
        data_bus = _unpack_bus_snapshot(blob[offset : offset + _BUS_SNAP.size])
        offset += _BUS_SNAP.size
        memory = blob[offset : offset + memory_size]
        cpu = CpuSnapshot(
            registers=RegisterFile(
                ac=ac,
                pc=pc,
                ir=ir,
                arg=arg,
                mar=mar,
                flags=Flags(
                    v=bool(flag_mask & 8),
                    c=bool(flag_mask & 4),
                    z=bool(flag_mask & 2),
                    n=bool(flag_mask & 1),
                ),
            ),
            state=_STATES[state_index],
            instruction_count=instruction_count,
            # The decoder is a pure function of IR, and IR always holds
            # the byte the latched decode came from — so the decode is
            # reconstructed instead of stored.
            decoded=decode_raw(ir) if has_decoded else None,
            instruction_start=instruction_start,
            effective_address=effective_address,
            pointer_address=pointer_address,
            operand=operand,
        )
        checkpoints.append(
            Checkpoint(
                cycle=cycle,
                snapshot=SystemSnapshot(
                    cycle=cycle,
                    pending_address=pending,
                    cpu=cpu,
                    memory=memory,
                    address_bus=address_bus,
                    data_bus=data_bus,
                ),
            )
        )
    return checkpoints


def _pack_verdicts(verdicts: Mapping[int, ScreenVerdict]) -> bytes:
    out = bytearray()
    for index in sorted(verdicts):
        verdict = verdicts[index]
        out += _VERDICT.pack(
            verdict.defect_index,
            1 if verdict.clean else 0,
            -1 if verdict.first_index is None else verdict.first_index,
            -1 if verdict.first_cycle is None else verdict.first_cycle,
        )
    return bytes(out)


def _unpack_verdicts(blob: bytes) -> Dict[int, ScreenVerdict]:
    if len(blob) % _VERDICT.size:
        raise CacheError("verdict section is not a whole number of records")
    verdicts = {}
    for index, clean, first_index, first_cycle in _VERDICT.iter_unpack(blob):
        verdicts[index] = ScreenVerdict(
            defect_index=index,
            clean=bool(clean),
            first_index=None if first_index < 0 else first_index,
            first_cycle=None if first_cycle < 0 else first_cycle,
        )
    return verdicts


# ---------------------------------------------------------------------------
# Entry file format
# ---------------------------------------------------------------------------


def _encode_entry(header: dict, sections: Dict[str, Tuple[bytes, str]]) -> bytes:
    body = bytearray()
    section_table = {}
    for name, (payload, codec) in sections.items():
        stored = zlib.compress(payload, 1) if codec == "zlib" else payload
        section_table[name] = {
            "offset": len(body),
            "length": len(stored),
            "raw_length": len(payload),
            "codec": codec,
            "sha256": hashlib.sha256(stored).hexdigest(),
        }
        body += stored
    header = {**header, "sections": section_table}
    line = json.dumps(header, sort_keys=True, separators=(",", ":"))
    return line.encode("utf-8") + b"\n" + bytes(body)


def _decode_header(data: bytes) -> Tuple[dict, bytes]:
    newline = data.find(b"\n")
    if newline < 0:
        raise CacheError("missing header line")
    try:
        header = json.loads(data[:newline].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise CacheError(f"undecodable header: {error}") from None
    if not isinstance(header, dict):
        raise CacheError("header is not a JSON object")
    if header.get("magic") != MAGIC:
        raise CacheError("bad magic")
    if header.get("version") != FORMAT_VERSION:
        raise CacheError(f"format version {header.get('version')!r} != {FORMAT_VERSION}")
    return header, data[newline + 1 :]


def _read_section(header: dict, body: bytes, name: str) -> bytes:
    sections = header.get("sections")
    if not isinstance(sections, dict) or name not in sections:
        raise CacheError(f"missing section {name!r}")
    meta = sections[name]
    try:
        offset, length = int(meta["offset"]), int(meta["length"])
        codec, digest = meta["codec"], meta["sha256"]
        raw_length = int(meta["raw_length"])
    except (KeyError, TypeError, ValueError) as error:
        raise CacheError(f"malformed section table for {name!r}: {error}") from None
    if offset < 0 or length < 0 or offset + length > len(body):
        raise CacheError(f"section {name!r} exceeds the entry body")
    stored = body[offset : offset + length]
    if hashlib.sha256(stored).hexdigest() != digest:
        raise CacheError(f"section {name!r} failed its integrity hash")
    if codec == "raw":
        payload = stored
    elif codec == "zlib":
        try:
            payload = zlib.decompress(stored)
        except zlib.error as error:
            raise CacheError(f"section {name!r} failed to decompress: {error}") from None
    else:
        raise CacheError(f"section {name!r} has unknown codec {codec!r}")
    if len(payload) != raw_length:
        raise CacheError(f"section {name!r} has the wrong decoded length")
    return payload


@dataclass(frozen=True)
class CachedCampaign:
    """A warm cache entry: everything ``build_engine`` would recompute."""

    capture: GoldenCapture
    verdicts: Dict[int, ScreenVerdict]
    bus: str
    path: Path


@dataclass(frozen=True)
class CacheEntryInfo:
    """Header-level description of one on-disk entry (for ``cache ls``)."""

    path: Path
    key: str
    fingerprint: str
    bus: str
    cycles: int
    trace_length: int
    checkpoint_count: int
    verdict_count: int
    size_bytes: int
    created: float
    ok: bool


class GoldenRunCache:
    """Content-addressed store of golden captures and screen verdicts."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- keys ---------------------------------------------------------

    def key_for(
        self, fingerprint: str, checkpoint_interval: Optional[int] = None
    ) -> str:
        """The entry key for a campaign fingerprint + interval knob.

        The interval changes the checkpoint series (an artifact, not an
        input), so it is part of the key rather than the fingerprint;
        the format version is folded in so layout changes miss cleanly.
        """
        token = "auto" if checkpoint_interval is None else str(int(checkpoint_interval))
        payload = f"{MAGIC}:v{FORMAT_VERSION}:{fingerprint}:{token}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    # -- load / store -------------------------------------------------

    def load(
        self, fingerprint: str, checkpoint_interval: Optional[int] = None
    ) -> Optional[CachedCampaign]:
        """Return the warm entry for ``fingerprint``, or ``None``.

        Counts a hit or a miss; corrupt entries are unlinked (counted
        as ``corrupt_evicted``) and reported as misses.
        """
        path = self._path(self.key_for(fingerprint, checkpoint_interval))
        entry = self._load_quiet(path)
        if entry is None:
            _count("misses")
            return None
        _count("hits")
        return entry

    def _load_quiet(self, path: Path) -> Optional[CachedCampaign]:
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            header, body = _decode_header(data)
            memory_size = int(header["memory_size"])
            golden_blob = _read_section(header, body, "golden")
            if len(golden_blob) < _GOLDEN_HEAD.size:
                raise CacheError("golden section is truncated")
            cycles, instructions = _GOLDEN_HEAD.unpack_from(golden_blob, 0)
            memory = golden_blob[_GOLDEN_HEAD.size :]
            if len(memory) != memory_size:
                raise CacheError("golden memory image has the wrong size")
            bus = header["bus"]
            if bus not in ("addr", "data"):
                raise CacheError(f"unknown bus {bus!r}")
            capture = GoldenCapture(
                golden=GoldenReference(
                    snapshot=memory, cycles=cycles, instructions=instructions
                ),
                trace=_unpack_trace(_read_section(header, body, "trace"), bus),
                checkpoints=_unpack_checkpoints(
                    _read_section(header, body, "checkpoints"), memory_size
                ),
            )
            verdicts = _unpack_verdicts(_read_section(header, body, "verdicts"))
        except (CacheError, KeyError, TypeError, ValueError, struct.error) as error:
            logger.warning("evicting corrupt cache entry %s: %s", path, error)
            try:
                path.unlink()
            except OSError:
                pass
            _count("corrupt_evicted")
            return None
        return CachedCampaign(
            capture=capture, verdicts=verdicts, bus=bus, path=path
        )

    def store(
        self,
        fingerprint: str,
        checkpoint_interval: Optional[int],
        bus: str,
        capture: GoldenCapture,
        verdicts: Optional[Mapping[int, ScreenVerdict]] = None,
    ) -> Path:
        """Write (or overwrite) the entry for ``fingerprint`` atomically."""
        verdicts = dict(verdicts or {})
        key = self.key_for(fingerprint, checkpoint_interval)
        memory_size = len(capture.golden.snapshot)
        try:
            data = _encode_entry(
                {
                    "magic": MAGIC,
                    "version": FORMAT_VERSION,
                    "key": key,
                    "fingerprint": fingerprint,
                    "interval": (
                        "auto"
                        if checkpoint_interval is None
                        else int(checkpoint_interval)
                    ),
                    "bus": bus,
                    "memory_size": memory_size,
                    "cycles": capture.golden.cycles,
                    "instructions": capture.golden.instructions,
                    "trace_length": len(capture.trace),
                    "checkpoint_count": len(capture.checkpoints),
                    "verdict_count": len(verdicts),
                    "created": time.time(),
                },
                {
                    "golden": (
                        _GOLDEN_HEAD.pack(
                            capture.golden.cycles, capture.golden.instructions
                        )
                        + capture.golden.snapshot,
                        "zlib",
                    ),
                    "trace": (_pack_trace(capture.trace), "zlib"),
                    "checkpoints": (
                        _pack_checkpoints(capture.checkpoints, memory_size),
                        "zlib",
                    ),
                    "verdicts": (_pack_verdicts(verdicts), "raw"),
                },
            )
        except struct.error as error:
            raise CacheError(f"entry not representable in cache format: {error}")
        path = self._path(key)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        _count("stores")
        return path

    def merge_verdicts(
        self,
        fingerprint: str,
        checkpoint_interval: Optional[int],
        bus: str,
        capture: GoldenCapture,
        verdicts: Mapping[int, ScreenVerdict],
    ) -> bool:
        """Fold newly screened verdicts into the entry (write-back).

        Returns True when the entry was (re)written; a no-op when every
        verdict is already stored, so warm runs do zero writes.
        """
        path = self._path(self.key_for(fingerprint, checkpoint_interval))
        existing = self._load_quiet(path)
        merged: Dict[int, ScreenVerdict] = dict(existing.verdicts) if existing else {}
        before = len(merged)
        merged.update(verdicts)
        if existing is not None and len(merged) == before:
            return False
        self.store(fingerprint, checkpoint_interval, bus, capture, merged)
        return True

    # -- maintenance --------------------------------------------------

    def entries(self) -> List[CacheEntryInfo]:
        """Header-level info for every entry under the cache root."""
        infos = []
        for path in sorted(self.root.glob(f"*{_SUFFIX}")):
            size = path.stat().st_size
            try:
                with open(path, "rb") as handle:
                    first = handle.readline()
                if not first.endswith(b"\n"):
                    raise CacheError("missing header line")
                header, _ = _decode_header(first)
                infos.append(
                    CacheEntryInfo(
                        path=path,
                        key=str(header.get("key", path.stem)),
                        fingerprint=str(header.get("fingerprint", "?")),
                        bus=str(header.get("bus", "?")),
                        cycles=int(header.get("cycles", 0)),
                        trace_length=int(header.get("trace_length", 0)),
                        checkpoint_count=int(header.get("checkpoint_count", 0)),
                        verdict_count=int(header.get("verdict_count", 0)),
                        size_bytes=size,
                        created=float(header.get("created", 0.0)),
                        ok=True,
                    )
                )
            except (OSError, CacheError, TypeError, ValueError):
                infos.append(
                    CacheEntryInfo(
                        path=path,
                        key=path.stem,
                        fingerprint="?",
                        bus="?",
                        cycles=0,
                        trace_length=0,
                        checkpoint_count=0,
                        verdict_count=0,
                        size_bytes=size,
                        created=0.0,
                        ok=False,
                    )
                )
        return infos

    def prune(
        self,
        max_age_days: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> List[Path]:
        """Remove entries older than ``max_age_days`` and/or beyond the
        newest ``max_entries``; corrupt headers are always removed."""
        removed = []
        infos = self.entries()
        keep = [info for info in infos if info.ok]
        for info in infos:
            if not info.ok:
                removed.append(info.path)
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            stale = [info for info in keep if info.created < cutoff]
            removed.extend(info.path for info in stale)
            keep = [info for info in keep if info.created >= cutoff]
        if max_entries is not None and len(keep) > max_entries:
            keep.sort(key=lambda info: info.created, reverse=True)
            removed.extend(info.path for info in keep[max_entries:])
        for path in removed:
            try:
                path.unlink()
            except OSError:
                pass
        return removed

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        count = 0
        for path in self.root.glob(f"*{_SUFFIX}"):
            try:
                path.unlink()
                count += 1
            except OSError:
                pass
        return count
