"""Data-bus MA test fragments (paper Sections 4.1 and 4.3).

Memory-to-CPU tests ride the ``M[Ai+1] -> M[Ax]`` transition inside a
load: the load's own offset byte is the first test vector ``v1``, and the
operand cell's content is the second vector ``v2`` — so the test needs a
memory cell at *some* page with offset ``v1`` holding ``v2`` ("load from
an address with a specific offset containing a specific data").

CPU-to-memory tests ride the ``M[Ai+1] -> AC`` transition inside a store:
the store's offset byte is ``v1`` and the accumulator (pre-loaded with
``v2``) is driven onto the bus by the CPU.  The stored cell doubles as
the response location.

Response compaction (Section 4.3, Fig. 8) replaces per-test
``LDA``/``STA`` pairs with a ``CLA`` followed by one ``ADD`` per test —
``ADD`` has the same two-byte layout and bus timing as ``LDA`` — and one
final ``STA`` of the accumulated signature.  For the rising-delay family
the per-test contributions are one-hot, so the pass signature is 0xFF and
a zero bit names the failing test, exactly as in the paper's Fig. 8.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.addrbus import FragmentInfo
from repro.core.assembly import ProgramAssembly
from repro.core.maf import MAFault, ma_vector_pair
from repro.isa.encoding import Instruction, make_address
from repro.isa.instructions import Mnemonic
from repro.soc.bus import BusDirection


def _check_direction(fault: MAFault, expected: BusDirection) -> None:
    if fault.direction is not expected:
        raise ValueError(
            f"{fault.name}: expected a {expected.value} data-bus fault"
        )


def build_read_test(assembly: ProgramAssembly, fault: MAFault) -> FragmentInfo:
    """One memory-to-CPU data-bus test: ``LDA p:v1`` / ``STA resp``."""
    _check_direction(fault, BusDirection.MEM_TO_CPU)
    pair = ma_vector_pair(fault)
    owner = fault.name
    page = assembly.allocator.find_operand_page(offset=pair.v1, content=pair.v2)
    operand = make_address(page, pair.v1)
    assembly.image.place(operand, pair.v2, owner, role="dbus operand")
    response = assembly.new_response_byte(owner)
    entry = assembly.emit_code(
        [
            Instruction(Mnemonic.LDA, operand=operand),
            Instruction(Mnemonic.STA, operand=response),
            assembly.jump_to_next(),
        ],
        owner,
    )
    return FragmentInfo(
        entry=entry,
        responses=(response,),
        technique="data/read",
        faults=(fault,),
    )


def build_read_group_compacted(
    assembly: ProgramAssembly, faults: Sequence[MAFault]
) -> FragmentInfo:
    """A compacted memory-to-CPU group: ``CLA``, one ``ADD`` per test,
    one ``STA`` of the accumulated signature (Fig. 8)."""
    if not faults:
        raise ValueError("a compaction group needs at least one fault")
    for fault in faults:
        _check_direction(fault, BusDirection.MEM_TO_CPU)
    owner = "+".join(fault.name for fault in faults)
    instructions: List[Instruction] = [Instruction(Mnemonic.CLA)]
    used_pages: List[int] = []
    for fault in faults:
        pair = ma_vector_pair(fault)
        # Each test needs its own cell; two tests of one group may share
        # the same offset (e.g. all positive-glitch v1 are 0x00), so the
        # pages already claimed by this group are excluded.
        page = assembly.allocator.find_operand_page(
            offset=pair.v1, content=pair.v2, avoid_pages=used_pages
        )
        used_pages.append(page)
        operand = make_address(page, pair.v1)
        assembly.image.place(operand, pair.v2, fault.name, role="dbus operand")
        instructions.append(Instruction(Mnemonic.ADD, operand=operand))
    response = assembly.new_response_byte(owner)
    instructions.append(Instruction(Mnemonic.STA, operand=response))
    instructions.append(assembly.jump_to_next())
    entry = assembly.emit_code(instructions, owner)
    return FragmentInfo(
        entry=entry,
        responses=(response,),
        technique="data/read-compacted",
        faults=tuple(faults),
    )


def build_write_test(assembly: ProgramAssembly, fault: MAFault) -> FragmentInfo:
    """One CPU-to-memory data-bus test: ``LDA src`` / ``STA p:v1``.

    The store drives ``v2`` (the accumulator) onto the data bus right
    after its own offset byte ``v1`` was fetched, producing the
    ``v1 -> v2`` transition with the CPU driving the second vector.  The
    written cell is the response: under a healthy bus it holds ``v2``
    afterwards; a corrupted ``v2`` (or a corrupted store address) makes
    the final memory differ from the golden image.
    """
    _check_direction(fault, BusDirection.CPU_TO_MEM)
    pair = ma_vector_pair(fault)
    owner = fault.name
    source = assembly.allocator.alloc_byte()
    assembly.image.place(source, pair.v2, owner, role="dbus source")
    page = assembly.allocator.find_writable_page(offset=pair.v1)
    target = make_address(page, pair.v1)
    assembly.image.place(
        target, 0x00, owner, role="dbus write target", exclusive=True
    )
    assembly.response_addresses.append(target)
    entry = assembly.emit_code(
        [
            Instruction(Mnemonic.LDA, operand=source),
            Instruction(Mnemonic.STA, operand=target),
            assembly.jump_to_next(),
        ],
        owner,
    )
    return FragmentInfo(
        entry=entry,
        responses=(target,),
        technique="data/write",
        faults=(fault,),
    )
