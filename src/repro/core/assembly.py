"""Program assembly state shared by the test-fragment builders.

A self-test program is a chain of *fragments*: the entry fragment runs
first, each fragment ends by jumping to the next, and the final fragment
is a self-loop ``JMP`` (the halt convention).  Address-bus fragments live
at pinned addresses; everything else is placed in free "glue" space.

Fragments are built **backward** — halt first, entry last — so that every
fragment's trailing jump target is already known when the fragment is
placed.  That keeps all placed bytes concrete, which in turn lets the
builders *adopt* bytes planted by earlier-built tests (the paper's trick
for dissolving address conflicts: an "arbitrary" offset or marker byte
takes whatever value a colliding placement already fixed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.allocator import AllocationError, GlueAllocator
from repro.core.image import ConflictError, MemoryImage
from repro.isa.encoding import Instruction, encode
from repro.isa.instructions import Mnemonic


@dataclass
class DeferredMarkerPair:
    """A pass/fail marker pair whose values are resolved after all tests
    have placed their pinned bytes.

    Deferring lets a marker adopt a byte that a *later-built* test pins at
    the same address (e.g. the rising-delay pass marker of line *k* lives
    exactly where the falling-delay test of line *k* puts its offset
    byte).  If resolution ends with both markers equal, the test is
    recorded as *weak*: it stays in the program but cannot distinguish
    its own pass/fail responses.
    """

    owner: str
    pass_address: int
    fail_address: int
    pass_preferred: int
    fail_preferred: int


class ProgramAssembly:
    """Mutable state of one self-test program under construction."""

    def __init__(
        self,
        memory_size: int = 4096,
        glue_start: int = 0x020,
        avoid: Optional[Iterable[int]] = None,
    ):
        self.image = MemoryImage(memory_size)
        self.allocator = GlueAllocator(self.image, start=glue_start, avoid=avoid)
        #: Entry of the most recently built fragment — the jump target for
        #: the next fragment built (backward chaining).
        self.next_entry: Optional[int] = None
        self.response_addresses: List[int] = []
        self.deferred_markers: List[DeferredMarkerPair] = []
        #: Cells reserved for deferred markers: kept out of glue space
        #: but available to placements (markers adopt whatever lands).
        self.marker_addresses: set = set()
        #: Owners whose deferred markers resolved to equal values.
        self.weak_tests: List[str] = []

    # -- emission helpers ----------------------------------------------------

    def emit_code_at(
        self,
        address: int,
        instructions: Iterable[Instruction],
        owner: str,
        role: str = "code",
    ) -> int:
        """Place encoded ``instructions`` starting at ``address``.

        Returns the address just past the emitted code.  Raises
        :class:`~repro.core.image.ConflictError` when any byte collides.
        """
        cursor = address
        for instruction in instructions:
            for byte in encode(instruction):
                self.image.place(cursor, byte, owner, role)
                cursor += 1
        return cursor

    def emit_code(
        self,
        instructions: List[Instruction],
        owner: str,
        role: str = "code",
    ) -> int:
        """Place ``instructions`` in glue space; returns the start address."""
        length = sum(instruction.length for instruction in instructions)
        start = self.allocator.alloc_run(length)
        self.emit_code_at(start, instructions, owner, role)
        return start

    def jump_to_next(self) -> Instruction:
        """A ``JMP`` to the previously built fragment."""
        if self.next_entry is None:
            raise RuntimeError("no fragment built yet (build the halt first)")
        return Instruction(Mnemonic.JMP, operand=self.next_entry)

    def new_response_byte(self, owner: str) -> int:
        """Allocate one exclusive response cell (preset to 0x00).

        Response cells are written at run time, so they must never be
        shared with a byte another test expects to read.
        """
        address = self.allocator.alloc_byte()
        self.image.place(address, 0x00, owner, role="response", exclusive=True)
        self.response_addresses.append(address)
        return address

    def emit_trailing_jump(
        self,
        address: int,
        owner: str,
        body: List[Instruction],
    ) -> int:
        """Emit ``JMP glue`` at ``address`` with ``glue = body + JMP next``.

        The two jump bytes at ``address``/``address+1`` may already be
        pinned by an overlapping test.  Instead of giving up, the glue
        stub's location is *steered* so the jump encodes to exactly the
        pre-placed byte values:

        * a fixed first byte must look like a direct ``JMP`` (``0x80|p``),
          which pins the glue's page to ``p``;
        * a fixed second byte pins the glue's in-page offset.

        This dissolves a whole class of the paper's address conflicts
        (two tests whose pinned windows overlap by one or two jump
        bytes).  Returns the glue address.
        """
        size = self.image.size
        first = self.image.value_at(address)
        second = self.image.value_at((address + 1) % size)
        page = None
        offset = None
        if first is not None:
            if not 0x80 <= first <= 0x8F:
                placed = self.image.provenance()[address % size]
                raise ConflictError(address % size, placed, first, owner)
            page = first & 0x0F
        if second is not None:
            offset = second
        glue_length = sum(instruction.length for instruction in body) + 2
        glue = self._alloc_glue(glue_length, page, offset)
        self.emit_code_at(glue, body + [self.jump_to_next()], owner, role="glue")
        self.emit_code_at(
            address,
            [Instruction(Mnemonic.JMP, operand=glue)],
            owner,
            role="pinned jmp",
        )
        return glue

    def _alloc_glue(
        self, length: int, page: Optional[int], offset: Optional[int]
    ) -> int:
        """Allocate a glue run, preferring jump-encodable start offsets.

        When nothing constrains the location, the run is preferentially
        placed at an in-page offset of 0x80-0x8F.  Then, if a *later*
        test's window overlaps this fragment's ``JMP`` such that our
        second jump byte (the glue offset) lands where that test needs a
        jump *opcode*, the byte already reads as a valid direct ``JMP``
        (0x80|page) and the later test can steer its own glue into the
        matching page instead of conflicting.
        """
        if page is None and offset is None:
            for preferred_offset in range(0x80, 0x90):
                try:
                    return self.allocator.alloc_run_constrained(
                        length, None, preferred_offset
                    )
                except AllocationError:
                    continue
            return self.allocator.alloc_run(length)
        return self.allocator.alloc_run_constrained(length, page, offset)

    # -- deferred markers ------------------------------------------------------

    def defer_marker_pair(
        self,
        owner: str,
        pass_address: int,
        fail_address: int,
        pass_preferred: int,
        fail_preferred: int,
    ) -> None:
        """Register a pass/fail marker pair for end-of-build resolution.

        The two addresses are added to the allocator's lookahead set so
        glue never squats on them; values are fixed by
        :meth:`resolve_deferred_markers`.
        """
        size = self.image.size
        self.deferred_markers.append(
            DeferredMarkerPair(
                owner=owner,
                pass_address=pass_address % size,
                fail_address=fail_address % size,
                pass_preferred=pass_preferred,
                fail_preferred=fail_preferred,
            )
        )
        self.marker_addresses.update((pass_address % size, fail_address % size))
        self.allocator.add_avoid((pass_address, fail_address))

    def resolve_deferred_markers(self) -> None:
        """Fix the values of all deferred marker pairs.

        Free marker cells receive their preferred values; cells fixed by
        other tests are adopted as-is.  A pair whose two cells ended up
        equal makes its test *weak* (recorded in :attr:`weak_tests`) —
        the test stays in the program but its own response cannot
        distinguish pass from fail.
        """
        for pair in self.deferred_markers:
            pass_value = self.image.value_at(pair.pass_address)
            fail_value = self.image.value_at(pair.fail_address)
            if pass_value is None:
                avoid = (fail_value,) if fail_value is not None else ()
                pass_value = self.image.place_flexible(
                    pair.pass_address,
                    pair.owner,
                    role="pass marker",
                    preferred=pair.pass_preferred,
                    avoid=avoid,
                )
            if fail_value is None:
                fail_value = self.image.place_flexible(
                    pair.fail_address,
                    pair.owner,
                    role="fail marker",
                    preferred=pair.fail_preferred,
                    avoid=(pass_value,),
                )
            if pass_value == fail_value:
                self.weak_tests.append(pair.owner)

    # -- fragment lifecycle ----------------------------------------------------

    def build_halt(self, owner: str = "halt") -> int:
        """Create the final self-loop fragment; returns its address."""
        address = self.allocator.alloc_run(2)
        self.emit_code_at(
            address,
            [Instruction(Mnemonic.JMP, operand=address)],
            owner,
            role="halt",
        )
        self.next_entry = address
        return address

    def finish_fragment(self, entry: int) -> None:
        """Register a successfully built fragment as the new chain head."""
        self.next_entry = entry

    def transaction_state(self) -> tuple:
        """Snapshot for transactional fragment placement."""
        return (
            self.image.snapshot_state(),
            self.allocator._cursor,
            set(self.allocator.avoid),
            self.next_entry,
            len(self.response_addresses),
            len(self.deferred_markers),
        )

    def rollback(self, state: tuple) -> None:
        """Undo every placement since the matching snapshot."""
        (
            image_state,
            cursor,
            avoid,
            next_entry,
            response_count,
            marker_count,
        ) = state
        self.image.restore_state(image_state)
        self.allocator._cursor = cursor
        self.allocator.avoid = avoid
        self.next_entry = next_entry
        del self.response_addresses[response_count:]
        del self.deferred_markers[marker_count:]
        self.marker_addresses = {
            address
            for pair in self.deferred_markers
            for address in (pair.pass_address, pair.fail_address)
        }
