"""Campaign orchestration: specs, execution backends, durable journals.

The paper's Fig. 11 experiments are defect *campaigns* — thousands of
independent per-defect simulations whose :class:`DetectionOutcome`\\ s are
aggregated afterwards.  This module is the orchestration layer those
campaigns run on:

:class:`CampaignSpec`
    A picklable, engine-agnostic description of one campaign: the
    program image, the electrical/threshold configuration, the defect
    slice, and the engine selection.  A spec is pure data — workers
    rebuild all live state (golden capture, screens, scratch systems)
    from it via :meth:`CampaignSpec.build_engine`, so nothing with an
    open handle or an installed bus hook ever crosses a process
    boundary.

Execution backends (:class:`SerialBackend`, :class:`ProcessBackend`)
    One contract (:class:`ExecutionBackend.run`): judge the given
    defects and return their outcomes.  The serial backend is the
    in-process loop; the process backend shards the defect slice
    round-robin over a :class:`~concurrent.futures.ProcessPoolExecutor`
    and merges the shard results order-independently (outcomes carry
    their defect index; the runner sorts).  Backends are
    outcome-identical by construction: every defect is judged by an
    engine built from the same spec, and engines are themselves
    outcome-identical (see :mod:`repro.core.engine`).

:class:`CampaignJournal`
    A durable JSONL outcome journal.  Each judged defect is appended
    and flushed immediately, so a crash or Ctrl-C loses at most the
    in-flight shard; resuming with the same spec skips every journaled
    defect.  The file is self-identifying (a header line carries a
    fingerprint of the campaign configuration) and tolerates a
    truncated or corrupt *trailing* line — the signature of a write cut
    short — by repairing the file before appending.

:class:`CampaignRunner`
    Ties the three together: resolves the backend, loads the journal,
    runs only the defects not already journaled, and returns a
    :class:`CampaignResult` whose outcome list is bit-identical to an
    uninterrupted serial run.

Observability: workers run under their own metrics-only session when
the parent has one, and each finished shard's snapshot is rolled up
into the parent registry (:func:`repro.obs.metrics.merge_snapshot`), so
one RunReport describes the whole parallel campaign.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import (
    IO,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core import cache as golden_cache
from repro.core.engine import (
    ENGINES,
    SimulationEngine,
    capture_golden_with_trace,
    make_engine,
)
from repro.core.program_builder import SelfTestProgram
from repro.core.signature import ResponseCheck
from repro.cpu.microcode import resolve_core
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import merge_snapshot
from repro.xtalk.calibration import Calibration
from repro.xtalk.defects import Defect
from repro.xtalk.params import ElectricalParams
from repro.xtalk.screen import ScreenVerdict

logger = logging.getLogger("repro.core.campaign")

#: Emit a campaign progress log line every this many simulated defects
#: (DEBUG level; only when an observability session is active).
PROGRESS_LOG_EVERY = 200

#: ``(defects judged so far, total defects, detected so far)`` — called
#: after every defect (serial) or every finished shard (process).
ProgressCallback = Callable[[int, int, int], None]


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of simulating one defect against one program."""

    defect_index: int
    detected: bool
    timed_out: bool
    mismatches: int


# ---------------------------------------------------------------------------
# Per-defect execution (the instrumented judgment shared by every backend)
# ---------------------------------------------------------------------------


def execute_defect(
    engine: SimulationEngine, defect: Defect, bus: str
) -> DetectionOutcome:
    """Judge one defect on ``engine``; return its detection outcome.

    Under an active observability session this also times the replay
    (``coverage.defect.replay`` timer), tallies detection counters and
    rolls the error model's verdict statistics into the session
    registry; with observability off it is the bare replay.  (A
    screened engine may judge a defect without running a model — its
    screening decisions appear under ``coverage.engine.*`` instead.)
    """
    obs = obs_runtime.active()
    if obs is None:
        check: ResponseCheck = engine.check(defect)
        return DetectionOutcome(
            defect_index=defect.index,
            detected=check.detected,
            timed_out=check.timed_out,
            mismatches=check.mismatches,
        )
    start = time.perf_counter_ns()
    if obs.full_detail:
        with obs.spans.span("defect", index=defect.index, bus=bus):
            check = engine.check(defect)
    else:
        check = engine.check(defect)
    registry = obs.registry
    registry.timer("coverage.defect.replay").observe(
        time.perf_counter_ns() - start
    )
    registry.counter("coverage.defects.simulated").inc()
    if check.detected:
        registry.counter("coverage.defects.detected").inc()
    if check.timed_out:
        registry.counter("coverage.defects.timeouts").inc()
    if engine.last_model is not None:
        for suffix, value in engine.last_model.stats().items():
            registry.counter(f"xtalk.model.{suffix}").inc(value)
    return DetectionOutcome(
        defect_index=defect.index,
        detected=check.detected,
        timed_out=check.timed_out,
        mismatches=check.mismatches,
    )


def run_defects(
    engine: SimulationEngine,
    defects: Iterable[Defect],
    bus: str,
    on_outcome: Optional[Callable[[DetectionOutcome], None]] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[DetectionOutcome]:
    """Judge every defect in order on one engine (the serial inner loop).

    Batch-capable engines get one :meth:`SimulationEngine.prepare` call
    first (the screened engine vectorizes its whole screening pass
    there).  An active observability session gets a
    ``coverage.campaign`` span, a live ``coverage.campaign.progress``
    gauge in [0, 1], and a DEBUG progress log line every
    :data:`PROGRESS_LOG_EVERY` defects.  ``on_outcome`` fires after
    every judged defect (the journal's append hook).
    """
    defects = list(defects)
    engine.prepare(defects)
    total = len(defects)
    obs = obs_runtime.active()
    gauge = obs.registry.gauge("coverage.campaign.progress") if obs else None
    outcomes: List[DetectionOutcome] = []
    detected = 0
    with obs_runtime.span("coverage.campaign", bus=bus, defects=total):
        for count, defect in enumerate(defects, start=1):
            outcome = execute_defect(engine, defect, bus)
            outcomes.append(outcome)
            if outcome.detected:
                detected += 1
            if on_outcome is not None:
                on_outcome(outcome)
            if gauge is not None:
                gauge.set(count / total)
                if count % PROGRESS_LOG_EVERY == 0 or count == total:
                    logger.debug(
                        "campaign %s: %d/%d defects simulated, %d detected",
                        bus, count, total, detected,
                    )
            if progress is not None:
                progress(count, total, detected)
    return outcomes


# ---------------------------------------------------------------------------
# The campaign spec
# ---------------------------------------------------------------------------


def config_digest(
    params: ElectricalParams,
    calibration: Calibration,
    defects: Sequence[Defect],
    extra: Mapping[str, object],
) -> str:
    """SHA-256 over a canonical JSON form of one campaign configuration.

    Engine selection and tuning knobs are deliberately *excluded*:
    engines are outcome-identical, so a journal written with the exact
    engine may be resumed with the screened one (and vice versa).
    """
    payload = {
        "params": [
            params.vdd,
            params.r_driver_cpu,
            params.r_driver_mem,
            params.glitch_attenuation,
        ],
        "calibration": {
            "cth": calibration.cth,
            "v_th": calibration.v_th,
            "t_margin": sorted(
                (direction.value, margin)
                for direction, margin in calibration.t_margin.items()
            ),
            "safety_factor": calibration.safety_factor,
        },
        "defects": [
            [defect.index, defect.caps.ground, defect.caps.coupling]
            for defect in defects
        ],
        "extra": dict(extra),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a worker needs to judge a slice of defects.

    A spec is pure picklable data: the program image, the electrical
    and threshold configuration, the defect slice, and the engine
    selection.  It references no live system, bus, hook, tracer, or
    open file — workers rebuild all of that with
    :meth:`build_engine`, which consults the golden-run artifact cache
    (:mod:`repro.core.cache`) so the golden capture is simulated at
    most once per fingerprint, not once per worker/resume/invocation.
    """

    program: SelfTestProgram
    params: ElectricalParams
    calibration: Calibration
    defects: Tuple[Defect, ...]
    bus: str = "addr"
    engine: str = "exact"
    checkpoint_interval: Optional[int] = None
    screen_backend: str = "auto"
    label: str = "campaign"
    seed: Optional[int] = None
    core: str = "auto"
    use_cache: bool = True

    def __post_init__(self):
        if self.bus not in ("addr", "data"):
            raise ValueError("bus must be 'addr' or 'data'")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")
        resolve_core(self.core)  # validates; raises ValueError on junk

    @classmethod
    def from_setup(
        cls,
        program: SelfTestProgram,
        setup: "object",
        bus: str = "addr",
        **kwargs: object,
    ) -> "CampaignSpec":
        """Spec from a :class:`repro.BusTestSetup` convenience bundle."""
        return cls(
            program=program,
            params=setup.params,  # type: ignore[attr-defined]
            calibration=setup.calibration,  # type: ignore[attr-defined]
            defects=tuple(setup.library),  # type: ignore[attr-defined]
            bus=bus,
            seed=getattr(getattr(setup, "library", None), "seed", None),
            **kwargs,  # type: ignore[arg-type]
        )

    def build_engine(self) -> SimulationEngine:
        """Rebuild the simulation engine this spec describes.

        This is the factory workers call after unpickling a spec.  With
        ``use_cache`` (the default, unless ``REPRO_GOLDEN_CACHE=0``),
        the golden capture and any screen verdicts come from the
        content-addressed artifact cache when warm — the engine then
        does *zero* golden simulation — and are stored on a miss so the
        next build (worker, resume, re-invocation) is warm.  Cache
        failures degrade to a plain rebuild: the cache can cost time,
        never correctness.
        """
        store = golden_cache.default_cache() if self.use_cache else None
        capture = None
        verdicts: Optional[Dict[int, ScreenVerdict]] = None
        fingerprint = None
        if store is not None:
            fingerprint = self.fingerprint()
            entry = store.load(fingerprint, self.checkpoint_interval)
            if entry is not None:
                capture = entry.capture
                verdicts = entry.verdicts
        if capture is None:
            capture = capture_golden_with_trace(
                self.program,
                self.bus,
                interval=self.checkpoint_interval,
                core=self.core,
            )
            if store is not None:
                try:
                    store.store(
                        fingerprint, self.checkpoint_interval, self.bus, capture
                    )
                except (golden_cache.CacheError, OSError) as error:
                    logger.warning("golden cache store failed: %s", error)
        engine = make_engine(
            self.engine,
            self.program,
            self.params,
            self.calibration,
            self.bus,
            checkpoint_interval=self.checkpoint_interval,
            screen_backend=self.screen_backend,
            core=self.core,
            capture=capture,
            verdicts=verdicts,
        )
        if store is not None and hasattr(engine, "screen_sink"):
            def write_back(
                all_verdicts: Dict[int, ScreenVerdict],
                _store: "golden_cache.GoldenRunCache" = store,
                _fingerprint: str = fingerprint,
                _capture=capture,
            ) -> None:
                try:
                    _store.merge_verdicts(
                        _fingerprint,
                        self.checkpoint_interval,
                        self.bus,
                        _capture,
                        all_verdicts,
                    )
                except (golden_cache.CacheError, OSError) as error:
                    logger.warning(
                        "golden cache verdict write-back failed: %s", error
                    )

            engine.screen_sink = write_back
        return engine

    def fingerprint(self) -> str:
        """Stable identity of the campaign's *outcome-determining* config.

        Two specs share a fingerprint iff they provably produce the
        same outcome per defect: same program image and entry, same
        bus, same electrical/threshold configuration, same defect
        slice.  Engine choice and tuning knobs are excluded (engines
        are outcome-identical), so a journal can be resumed under a
        different engine.
        """
        return config_digest(
            self.params,
            self.calibration,
            self.defects,
            {
                "kind": "campaign",
                "bus": self.bus,
                "entry": self.program.entry,
                "memory_size": self.program.memory_size,
                "image": sorted(self.program.image.items()),
            },
        )


# ---------------------------------------------------------------------------
# Durable outcome journal
# ---------------------------------------------------------------------------


class JournalError(ValueError):
    """The journal file cannot back the requested campaign."""


JOURNAL_KIND = "repro-campaign-journal"
JOURNAL_VERSION = 1


class CampaignJournal:
    """Append-only JSONL journal of judged defects, resumable after a crash.

    Line 1 is a header identifying the campaign (``fingerprint`` from
    :meth:`CampaignSpec.fingerprint` or :func:`config_digest`); every
    further line is one outcome record
    ``{"g": group, "i": index, "d": detected, "t": timed_out, "m":
    mismatches}``.  Records are flushed as written, so an interrupted
    campaign loses at most the outcomes still in flight.

    ``resume=True`` loads an existing journal (verifying the
    fingerprint) and appends to it; a truncated or corrupt *trailing*
    line — the signature of a write cut short by the crash — is
    tolerated and repaired by truncating the file back to the last
    intact record.  Corruption anywhere *before* the tail is an error:
    the journal can no longer be trusted.

    A journal is deliberately **not picklable**: it owns an open file
    handle, and worker processes must never inherit one (they receive
    only the picklable :class:`CampaignSpec`).
    """

    def __init__(
        self,
        path: Union[str, Path],
        fingerprint: str,
        resume: bool = False,
    ):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.repaired = False
        self._done: Dict[str, Dict[int, DetectionOutcome]] = {}
        self._stream: Optional[IO[str]] = None
        if resume and self.path.exists() and self.path.stat().st_size > 0:
            self._load()
            self._stream = open(self.path, "a", encoding="utf-8")
        else:
            self._stream = open(self.path, "w", encoding="utf-8")
            self._write_line({
                "kind": JOURNAL_KIND,
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            })

    # -- loading / repair ---------------------------------------------------

    def _load(self) -> None:
        raw = self.path.read_bytes()
        records: List[dict] = []
        truncate_at: Optional[int] = None
        pos = 0
        lineno = 0
        size = len(raw)
        while pos < size:
            newline = raw.find(b"\n", pos)
            end = size if newline == -1 else newline
            line = raw[pos:end].strip()
            lineno += 1
            if line:
                payload: Optional[dict] = None
                try:
                    decoded = json.loads(line.decode("utf-8"))
                    if isinstance(decoded, dict):
                        payload = decoded
                except (ValueError, UnicodeDecodeError):
                    payload = None
                if payload is None:
                    if raw[end:].strip():
                        raise JournalError(
                            f"{self.path}: corrupt journal line {lineno} is "
                            "followed by further records — refusing to "
                            "resume from an untrustworthy journal"
                        )
                    # A trailing partial line: the interrupted write the
                    # journal exists to survive.  Drop it.
                    truncate_at = pos
                    break
                records.append(payload)
            if newline == -1:
                pos = size
            else:
                pos = newline + 1
        if not records:
            raise JournalError(f"{self.path}: no journal header")
        header = records[0]
        if header.get("kind") != JOURNAL_KIND:
            raise JournalError(f"{self.path}: not a campaign journal")
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path}: unsupported journal version "
                f"{header.get('version')!r}"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise JournalError(
                f"{self.path}: journal belongs to a different campaign "
                "(fingerprint mismatch) — pass a fresh journal path or "
                "drop --resume"
            )
        for record in records[1:]:
            if "i" not in record:
                raise JournalError(
                    f"{self.path}: malformed outcome record {record!r}"
                )
            outcome = DetectionOutcome(
                defect_index=int(record["i"]),
                detected=bool(record["d"]),
                timed_out=bool(record["t"]),
                mismatches=int(record["m"]),
            )
            group = str(record.get("g", "campaign"))
            self._done.setdefault(group, {})[outcome.defect_index] = outcome
        if truncate_at is not None:
            with open(self.path, "r+b") as stream:
                stream.truncate(truncate_at)
            self.repaired = True
        elif raw and not raw.endswith(b"\n"):
            # Intact final record without its newline: complete the line
            # so the next append starts fresh.
            with open(self.path, "a", encoding="utf-8") as stream:
                stream.write("\n")

    # -- recording ----------------------------------------------------------

    def done(self, group: str = "campaign") -> Dict[int, DetectionOutcome]:
        """Already-journaled outcomes of ``group``, by defect index."""
        return dict(self._done.get(group, {}))

    @property
    def completed(self) -> int:
        """Total outcome records across all groups."""
        return sum(len(outcomes) for outcomes in self._done.values())

    def record(
        self, outcome: DetectionOutcome, group: str = "campaign"
    ) -> None:
        """Append one outcome and flush it to disk."""
        self._write_line({
            "g": group,
            "i": outcome.defect_index,
            "d": int(outcome.detected),
            "t": int(outcome.timed_out),
            "m": outcome.mismatches,
        })
        self._done.setdefault(group, {})[outcome.defect_index] = outcome

    def _write_line(self, payload: dict) -> None:
        if self._stream is None:
            raise JournalError(f"{self.path}: journal is closed")
        self._stream.write(json.dumps(payload, separators=(",", ":")))
        self._stream.write("\n")
        self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __reduce__(self):
        raise TypeError(
            "CampaignJournal is not picklable: worker processes must never "
            "inherit its open file handle (ship the CampaignSpec instead)"
        )


# ---------------------------------------------------------------------------
# Execution backends
# ---------------------------------------------------------------------------


class ExecutionBackend:
    """Judges a slice of a campaign's defects.

    Contract: :meth:`run` returns one :class:`DetectionOutcome` per
    given defect, each identical to what a fresh serial run of
    ``spec.build_engine()`` would produce.  Outcome *order* is
    backend-defined (the process backend yields shards as they
    finish); callers that need determinism sort by ``defect_index`` —
    :class:`CampaignRunner` does.  ``on_outcome`` must be called
    exactly once per judged defect, in the parent process (it appends
    to the journal, which workers must never touch).
    """

    name: str
    workers: int = 1

    def run(
        self,
        spec: CampaignSpec,
        defects: Sequence[Defect],
        on_outcome: Optional[Callable[[DetectionOutcome], None]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> List[DetectionOutcome]:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """The in-process loop: one engine, defects judged in order."""

    name = "serial"
    workers = 1

    def run(
        self,
        spec: CampaignSpec,
        defects: Sequence[Defect],
        on_outcome: Optional[Callable[[DetectionOutcome], None]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> List[DetectionOutcome]:
        if not defects:
            return []
        engine = spec.build_engine()
        return run_defects(
            engine, defects, spec.bus, on_outcome=on_outcome,
            progress=progress,
        )


# Worker-process state, set once per worker by the pool initializer so
# the spec is shipped (and the engine built) once per worker rather than
# once per shard.
_WORKER_SPEC: Optional[CampaignSpec] = None
_WORKER_ENGINE: Optional[SimulationEngine] = None
_WORKER_COLLECT = False
_WORKER_STARTUP_SNAPSHOT: Dict[str, dict] = {}


def _init_worker(spec: CampaignSpec, collect_metrics: bool) -> None:
    """Build the per-worker engine from the (freshly unpickled) spec.

    Any observability session inherited through ``fork`` is dropped
    first: its registry belongs to the parent and updating the copy
    would silently discard metrics.  Workers that should report roll
    up through their own session in :func:`_run_shard` instead; the
    engine build runs under its own session here so startup metrics
    (golden-cache hits, golden cycles) survive into the worker's first
    shard rollup rather than vanishing with the fork.
    """
    global _WORKER_SPEC, _WORKER_ENGINE, _WORKER_COLLECT
    global _WORKER_STARTUP_SNAPSHOT
    obs_runtime.disable()
    _WORKER_SPEC = spec
    _WORKER_COLLECT = collect_metrics
    if collect_metrics:
        with obs_runtime.session(detail="metrics") as session:
            _WORKER_ENGINE = spec.build_engine()
            _WORKER_STARTUP_SNAPSHOT = session.registry.snapshot()
    else:
        _WORKER_ENGINE = spec.build_engine()


def _run_shard(
    positions: Sequence[int],
) -> Tuple[List[DetectionOutcome], Dict[str, dict]]:
    """Judge one shard (positions into ``spec.defects``) in a worker."""
    global _WORKER_STARTUP_SNAPSHOT
    assert _WORKER_SPEC is not None and _WORKER_ENGINE is not None
    defects = [_WORKER_SPEC.defects[position] for position in positions]
    if _WORKER_COLLECT:
        with obs_runtime.session(detail="metrics") as session:
            if _WORKER_STARTUP_SNAPSHOT:
                merge_snapshot(session.registry, _WORKER_STARTUP_SNAPSHOT)
                _WORKER_STARTUP_SNAPSHOT = {}
            outcomes = run_defects(_WORKER_ENGINE, defects, _WORKER_SPEC.bus)
            snapshot = session.registry.snapshot()
        return outcomes, snapshot
    return run_defects(_WORKER_ENGINE, defects, _WORKER_SPEC.bus), {}


class ProcessBackend(ExecutionBackend):
    """Shard the defect slice over a process pool; merge order-independently.

    Sharding is deterministic: the pending defects are dealt
    round-robin into ``workers * SHARDS_PER_WORKER`` shards (striding
    spreads expensive defect clusters across workers).  Each worker
    builds its engine once (pool initializer), so shard count is a
    load-balancing knob, not a setup-cost multiplier.  Outcomes arrive
    in shard-completion order; they carry their defect index, so the
    merged campaign result is independent of scheduling.

    When the parent has an active observability session, each worker
    runs its shards under a metrics-only session and the parent merges
    every shard snapshot into its own registry — one RunReport for the
    whole parallel campaign.
    """

    name = "process"

    #: Shards dealt per worker: enough slack for dynamic load balance
    #: without fragmenting the screened engine's batched screening pass.
    SHARDS_PER_WORKER = 4

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run(
        self,
        spec: CampaignSpec,
        defects: Sequence[Defect],
        on_outcome: Optional[Callable[[DetectionOutcome], None]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> List[DetectionOutcome]:
        defects = list(defects)
        if not defects:
            return []
        position_of = {
            defect.index: position
            for position, defect in enumerate(spec.defects)
        }
        try:
            positions = [position_of[defect.index] for defect in defects]
        except KeyError as error:
            raise ValueError(
                f"defect {error.args[0]!r} is not part of the campaign spec"
            ) from None
        shard_count = min(
            len(positions), self.workers * self.SHARDS_PER_WORKER
        )
        shards = [positions[s::shard_count] for s in range(shard_count)]
        obs = obs_runtime.active()
        collect = obs is not None
        registry = obs_runtime.registry()
        registry.counter("campaign.shards").inc(len(shards))
        registry.gauge("campaign.workers").set(self.workers)
        total = len(defects)
        done = 0
        detected = 0
        outcomes: List[DetectionOutcome] = []
        with ProcessPoolExecutor(
            max_workers=min(self.workers, shard_count),
            initializer=_init_worker,
            initargs=(spec, collect),
        ) as pool:
            futures = [pool.submit(_run_shard, shard) for shard in shards]
            for future in as_completed(futures):
                shard_outcomes, snapshot = future.result()
                if collect and snapshot:
                    merge_snapshot(registry, snapshot)
                for outcome in shard_outcomes:
                    outcomes.append(outcome)
                    done += 1
                    if outcome.detected:
                        detected += 1
                    if on_outcome is not None:
                        on_outcome(outcome)
                if progress is not None:
                    progress(done, total, detected)
        return outcomes


BACKENDS = ("serial", "process")


def make_backend(
    name: str, workers: Optional[int] = None
) -> ExecutionBackend:
    """Backend factory keyed by name (``"serial"`` / ``"process"``)."""
    if name == "serial":
        if workers not in (None, 1):
            raise ValueError("the serial backend is single-worker")
        return SerialBackend()
    if name == "process":
        return ProcessBackend(workers=workers)
    raise ValueError(f"backend must be one of {BACKENDS}")


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass
class CampaignResult:
    """Merged outcome of one campaign run.

    ``outcomes`` is sorted by defect index and bit-identical to an
    uninterrupted serial run of the same spec, whatever backend or
    resume history produced it.
    """

    label: str
    outcomes: List[DetectionOutcome]
    executed: int
    resumed: int
    backend: str
    workers: int

    def detected_set(self) -> Set[int]:
        """Indices of the defects the program detects."""
        return {
            outcome.defect_index
            for outcome in self.outcomes
            if outcome.detected
        }

    @property
    def detected(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.detected)

    @property
    def timeouts(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.timed_out)

    def coverage(self) -> float:
        """Fraction of the campaign's defects detected."""
        if not self.outcomes:
            return 0.0
        return self.detected / len(self.outcomes)


class CampaignRunner:
    """Run one :class:`CampaignSpec` on a backend, optionally journaled.

    Parameters
    ----------
    spec:
        The campaign to run.
    backend:
        A backend name (``"serial"`` / ``"process"``) or a ready
        :class:`ExecutionBackend` instance.
    workers:
        Worker count for a named ``"process"`` backend (ignored when a
        backend instance is supplied).
    journal:
        ``None``, a path (a :class:`CampaignJournal` is opened against
        the spec's fingerprint and closed afterwards), or an open
        journal shared with other runners (multi-program campaigns use
        ``group`` to keep their records apart).
    resume:
        With a journal path: load existing records and skip every
        already-judged defect.  Without a journal this is an error —
        there is nothing to resume from.
    group:
        Journal record group (defaults to the spec label).
    progress:
        Optional :data:`ProgressCallback` for live reporting.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        backend: Union[str, ExecutionBackend] = "serial",
        workers: Optional[int] = None,
        journal: Optional[Union[str, Path, CampaignJournal]] = None,
        resume: bool = False,
        group: Optional[str] = None,
        progress: Optional[ProgressCallback] = None,
    ):
        self.spec = spec
        if isinstance(backend, ExecutionBackend):
            self.backend = backend
        else:
            self.backend = make_backend(backend, workers=workers)
        if resume and journal is None:
            raise ValueError("resume requires a journal")
        self.journal = journal
        self.resume = resume
        self.group = group if group is not None else spec.label
        self.progress = progress

    def run(self) -> CampaignResult:
        """Execute the campaign; return the merged, index-sorted result."""
        journal = self.journal
        owns_journal = False
        if journal is not None and not isinstance(journal, CampaignJournal):
            journal = CampaignJournal(
                journal, self.spec.fingerprint(), resume=self.resume
            )
            owns_journal = True
        try:
            done: Dict[int, DetectionOutcome] = (
                journal.done(self.group) if journal is not None else {}
            )
            pending = [
                defect
                for defect in self.spec.defects
                if defect.index not in done
            ]
            resumed = [
                done[defect.index]
                for defect in self.spec.defects
                if defect.index in done
            ]
            on_outcome = None
            if journal is not None:
                bound_journal = journal

                def on_outcome(outcome: DetectionOutcome) -> None:
                    bound_journal.record(outcome, self.group)

            executed = self.backend.run(
                self.spec, pending, on_outcome=on_outcome,
                progress=self.progress,
            )
        finally:
            if owns_journal and journal is not None:
                journal.close()
        outcomes = sorted(
            resumed + executed, key=lambda outcome: outcome.defect_index
        )
        registry = obs_runtime.registry()
        registry.counter("campaign.outcomes.executed").inc(len(executed))
        registry.counter("campaign.outcomes.resumed").inc(len(resumed))
        return CampaignResult(
            label=self.spec.label,
            outcomes=outcomes,
            executed=len(executed),
            resumed=len(resumed),
            backend=self.backend.name,
            workers=self.backend.workers,
        )


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    journal: Optional[Union[str, Path, CampaignJournal]] = None,
    resume: bool = False,
    group: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> CampaignResult:
    """One-call campaign: serial at ``workers == 1``, process pool above."""
    backend = "process" if workers > 1 else "serial"
    runner = CampaignRunner(
        spec,
        backend=backend,
        workers=workers if workers > 1 else None,
        journal=journal,
        resume=resume,
        group=group,
        progress=progress,
    )
    return runner.run()


__all__ = [
    "BACKENDS",
    "CampaignJournal",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "DetectionOutcome",
    "ExecutionBackend",
    "JournalError",
    "ProcessBackend",
    "SerialBackend",
    "config_digest",
    "execute_defect",
    "make_backend",
    "run_campaign",
    "run_defects",
]
