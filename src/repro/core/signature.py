"""Golden references and response checking.

The external (low-speed) tester of the paper loads the self-test program,
lets it run at speed, then unloads and compares the test responses.  Here
the golden reference is the final memory image of a fault-free run; a
defective chip is *detected* when its final memory differs anywhere, or
when the program never reaches the halt convention (a crosstalk error
that derails execution — e.g. a corrupted jump — also fails the part,
since the expected signature never materializes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.program_builder import SelfTestProgram
from repro.soc.system import CpuMemorySystem

#: Safety multiplier over the golden cycle count before a run is declared
#: hung.  Crosstalk errors can lengthen execution (extra page-1/page-2
#: detours in the glitch tests), so the bound is generous.
TIMEOUT_FACTOR = 4
TIMEOUT_SLACK = 2000


@dataclass(frozen=True)
class GoldenReference:
    """Fault-free outcome of one self-test program."""

    snapshot: bytes
    cycles: int
    instructions: int

    @property
    def max_cycles(self) -> int:
        """Cycle budget for defective runs before declaring a hang."""
        return self.cycles * TIMEOUT_FACTOR + TIMEOUT_SLACK


def build_base_image(program: SelfTestProgram) -> bytes:
    """The full initial memory image of ``program`` as one ``bytes`` blob.

    Replaying a defect library re-creates the same initial memory once
    per defect; materializing the sparse program image into a flat blob
    once and bulk-restoring it is much cheaper than replaying the sparse
    writes thousands of times.
    """
    image = bytearray(program.memory_size)
    for address, value in program.image.items():
        image[address] = value
    return bytes(image)


def make_system(
    program: SelfTestProgram,
    base_image: Optional[bytes] = None,
    core: str = "auto",
) -> CpuMemorySystem:
    """A fresh system with ``program`` loaded (memory elsewhere is 0x00).

    ``base_image`` (from :func:`build_base_image`) skips the sparse
    image walk with one bulk memory restore — same result, built for
    callers that create systems in a loop.  ``core`` selects the CPU
    implementation (see :func:`repro.cpu.microcode.resolve_core`).
    """
    system = CpuMemorySystem(memory_size=program.memory_size, core=core)
    if base_image is not None:
        system.memory.restore(base_image)
    else:
        system.load_image(program.image)
    return system


def capture_golden(program: SelfTestProgram) -> GoldenReference:
    """Run ``program`` on a fault-free system and record the reference.

    Raises
    ------
    RuntimeError
        If the program does not halt — that is a program-construction
        bug, not a test outcome.
    """
    system = make_system(program)
    result = system.run(entry=program.entry, max_cycles=10_000_000)
    if not result.halted:
        raise RuntimeError("golden run did not reach the halt convention")
    return GoldenReference(
        snapshot=system.memory.snapshot(),
        cycles=result.cycles,
        instructions=result.instructions,
    )


@dataclass(frozen=True)
class ResponseCheck:
    """Outcome of comparing one run against the golden reference."""

    detected: bool
    timed_out: bool
    mismatches: int

    @property
    def passed(self) -> bool:
        """True when the run is indistinguishable from fault-free."""
        return not self.detected


def count_mismatches(snapshot: bytes, reference: bytes) -> int:
    """Number of differing bytes between two equal-length images.

    Runs at C speed (big-int XOR + ``bytes.count``): a defect campaign
    calls this once per detected defect, and a byte-by-byte Python loop
    over a 4K image would rival the simulation itself in cost.
    """
    if len(snapshot) != len(reference):
        raise ValueError("image size mismatch")
    difference = int.from_bytes(snapshot, "big") ^ int.from_bytes(
        reference, "big"
    )
    return len(snapshot) - difference.to_bytes(len(snapshot), "big").count(0)


def check_response(
    golden: GoldenReference,
    system: CpuMemorySystem,
    halted: bool,
) -> ResponseCheck:
    """Judge a finished (or timed-out) run against the golden reference."""
    if not halted:
        return ResponseCheck(detected=True, timed_out=True, mismatches=0)
    snapshot = system.memory.snapshot()
    if snapshot == golden.snapshot:
        return ResponseCheck(detected=False, timed_out=False, mismatches=0)
    mismatches = count_mismatches(snapshot, golden.snapshot)
    return ResponseCheck(detected=True, timed_out=False, mismatches=mismatches)


def diff_cells(
    golden: GoldenReference, system: CpuMemorySystem
) -> Dict[int, Tuple[int, int]]:
    """``address -> (expected, actual)`` for every mismatched cell."""
    return system.memory.diff(golden.snapshot)
