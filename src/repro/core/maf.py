"""The Maximum Aggressor Fault (MAF) model and MA tests (paper Section 2).

A MAF abstracts every physical defect that produces one of four crosstalk
error effects on one victim wire: positive glitch, negative glitch, rising
delay, falling delay.  Its (unique) Maximum Aggressor test is a two-vector
pair putting the victim in the sensitized state while *all* other wires —
the aggressors — switch together the error-producing way (Fig. 1):

=================  ==========  ============  ======================
fault              victim      aggressors    vector pair (v1, v2)
=================  ==========  ============  ======================
positive glitch    stable 0    rising        (0...0, 1...101...1)
negative glitch    stable 1    falling       (1...1, 0...010...0)
rising delay       0 -> 1      falling       (~bit_k, bit_k)
falling delay      1 -> 0      rising        (bit_k, ~bit_k)
=================  ==========  ============  ======================

For an N-wire bus that is 4N faults; a bidirectional bus doubles this, as
the tests must be applied per driving direction (Section 3.1).

Wire numbering: wire ``k`` is bit ``k`` of the bus word; the paper's
"line i" is wire ``i - 1``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.soc.bus import BusDirection


class FaultType(enum.Enum):
    """The four MAF error effects."""

    POSITIVE_GLITCH = "gp"
    NEGATIVE_GLITCH = "gn"
    RISING_DELAY = "dr"
    FALLING_DELAY = "df"

    @property
    def is_glitch(self) -> bool:
        """True for the two glitch fault types."""
        return self in (FaultType.POSITIVE_GLITCH, FaultType.NEGATIVE_GLITCH)

    @property
    def is_delay(self) -> bool:
        """True for the two delay fault types."""
        return not self.is_glitch


@dataclass(frozen=True)
class VectorPair:
    """A two-vector MA test ``(v1, v2)`` on a ``width``-bit bus."""

    v1: int
    v2: int
    width: int

    def __post_init__(self):
        limit = 1 << self.width
        if not (0 <= self.v1 < limit and 0 <= self.v2 < limit):
            raise ValueError("vectors do not fit the bus width")

    def __str__(self) -> str:
        return (
            f"({self.v1:0{self.width}b}, {self.v2:0{self.width}b})"
        )


@dataclass(frozen=True)
class MAFault:
    """One Maximum Aggressor Fault.

    ``direction`` is ``None`` for unidirectional buses (the address bus)
    and a :class:`~repro.soc.bus.BusDirection` for the bidirectional data
    bus, where the same victim/effect pair exists once per direction.
    """

    victim: int
    fault_type: FaultType
    width: int
    direction: Optional[BusDirection] = None

    def __post_init__(self):
        if not 0 <= self.victim < self.width:
            raise ValueError("victim out of range")

    @property
    def line(self) -> int:
        """The paper's 1-based line number of the victim."""
        return self.victim + 1

    @property
    def name(self) -> str:
        """Short identifier, e.g. ``"gp/line4"`` or ``"dr/line8/mem_to_cpu"``."""
        base = f"{self.fault_type.value}/line{self.line}"
        if self.direction is not None:
            return f"{base}/{self.direction.value}"
        return base


def ma_vector_pair(fault: MAFault) -> VectorPair:
    """The unique MA test vector pair for ``fault`` (Fig. 1)."""
    ones = (1 << fault.width) - 1
    bit = 1 << fault.victim
    if fault.fault_type is FaultType.POSITIVE_GLITCH:
        return VectorPair(0, ones & ~bit, fault.width)
    if fault.fault_type is FaultType.NEGATIVE_GLITCH:
        return VectorPair(ones, bit, fault.width)
    if fault.fault_type is FaultType.RISING_DELAY:
        return VectorPair(ones & ~bit, bit, fault.width)
    return VectorPair(bit, ones & ~bit, fault.width)  # falling delay


def enumerate_bus_faults(
    width: int, directions: Tuple[Optional[BusDirection], ...] = (None,)
) -> List[MAFault]:
    """Enumerate every MAF of a ``width``-bit bus.

    For the paper's demonstrator:

    * address bus: ``enumerate_bus_faults(12)`` — 48 faults;
    * data bus: ``enumerate_bus_faults(8, (BusDirection.MEM_TO_CPU,
      BusDirection.CPU_TO_MEM))`` — 64 faults.

    Ordered by direction, then victim line, then fault type — the order
    the program builder applies them in.
    """
    faults = []
    for direction in directions:
        for victim in range(width):
            for fault_type in FaultType:
                faults.append(
                    MAFault(
                        victim=victim,
                        fault_type=fault_type,
                        width=width,
                        direction=direction,
                    )
                )
    return faults


def corrupted_vector(fault: MAFault) -> int:
    """The second vector as the receiver samples it when the fault is
    present: the victim bit glitched or held at its old value.

    For glitch faults the victim bit flips; for delay faults it reverts to
    its ``v1`` value.  (Used to compute the corrupted address ``v2'`` in
    the paper's address-bus response planning, Section 3.2.)
    """
    pair = ma_vector_pair(fault)
    bit = 1 << fault.victim
    if fault.fault_type is FaultType.POSITIVE_GLITCH:
        return pair.v2 | bit
    if fault.fault_type is FaultType.NEGATIVE_GLITCH:
        return pair.v2 & ~bit
    # Delay: the victim is sampled at its v1 value.
    return (pair.v2 & ~bit) | (pair.v1 & bit)
