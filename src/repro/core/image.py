"""Conflict-checked memory image with byte provenance.

Address-bus MA tests pin instruction and marker bytes at *specific*
addresses (the vector values themselves), so independently-constructed
tests can demand different values for the same byte — the paper's
"address conflicts" that kept 7 of 48 address-bus tests out of the single
test program.  :class:`MemoryImage` makes those collisions explicit:

* placing the same value twice is sharing (allowed — the builders lean on
  it heavily, e.g. all negative-glitch tests share the planted opcode at
  address 0);
* placing a different value raises :class:`ConflictError`;
* a byte can be *reserved* with its value pending (a jump whose target is
  not yet known) and patched later; reserved bytes never share.

The image also supports snapshot/restore so a test's placements can be
applied transactionally and rolled back when a conflict surfaces midway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class PlacedByte:
    """One byte of the image plus its provenance.

    ``value`` is ``None`` while the byte is reserved-but-unpatched.
    ``exclusive`` bytes (run-time written cells such as test responses)
    never participate in same-value sharing.
    """

    value: Optional[int]
    owners: List[str] = field(default_factory=list)
    role: str = ""
    exclusive: bool = False


class ConflictError(Exception):
    """Two placements demanded different values for the same byte."""

    def __init__(self, address: int, existing: PlacedByte, wanted: int, owner: str):
        self.address = address
        self.existing = existing
        self.wanted = wanted
        self.owner = owner
        held = "pending" if existing.value is None else f"{existing.value:#04x}"
        super().__init__(
            f"address {address:#05x}: {owner} wants {wanted:#04x} but "
            f"{'/'.join(existing.owners)} holds {held} ({existing.role})"
        )


class MemoryImage:
    """A sparse, provenance-tracked, conflict-checked program image."""

    def __init__(self, size: int = 4096):
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self._bytes: Dict[int, PlacedByte] = {}

    def __len__(self) -> int:
        return len(self._bytes)

    def __contains__(self, address: int) -> bool:
        return (address % self.size) in self._bytes

    def _wrap(self, address: int) -> int:
        return address % self.size

    def value_at(self, address: int) -> Optional[int]:
        """Value placed at ``address`` (None if free or pending)."""
        placed = self._bytes.get(self._wrap(address))
        return placed.value if placed else None

    def owner_at(self, address: int) -> Optional[str]:
        """First owner of the byte at ``address`` (None if free)."""
        placed = self._bytes.get(self._wrap(address))
        return placed.owners[0] if placed and placed.owners else None

    def is_free(self, address: int) -> bool:
        """True if nothing was placed or reserved at ``address``."""
        return self._wrap(address) not in self._bytes

    def place(
        self,
        address: int,
        value: int,
        owner: str,
        role: str = "",
        exclusive: bool = False,
    ) -> None:
        """Place ``value`` at ``address``.

        Same-value sharing is allowed unless either side is ``exclusive``
        (a cell that will be written at run time must not double as
        another test's read-only data).
        """
        if not 0 <= value < 256:
            raise ValueError(f"byte out of range: {value}")
        address = self._wrap(address)
        existing = self._bytes.get(address)
        if existing is None:
            self._bytes[address] = PlacedByte(
                value=value, owners=[owner], role=role, exclusive=exclusive
            )
            return
        if existing.value != value or existing.exclusive or exclusive:
            raise ConflictError(address, existing, value, owner)
        existing.owners.append(owner)

    def reserve(self, address: int, owner: str, role: str = "") -> None:
        """Reserve ``address`` with a pending value (no sharing allowed)."""
        address = self._wrap(address)
        existing = self._bytes.get(address)
        if existing is not None:
            raise ConflictError(address, existing, -1, owner)
        self._bytes[address] = PlacedByte(value=None, owners=[owner], role=role)

    def patch(self, address: int, value: int, owner: str) -> None:
        """Fill a previously reserved byte."""
        if not 0 <= value < 256:
            raise ValueError(f"byte out of range: {value}")
        address = self._wrap(address)
        existing = self._bytes.get(address)
        if existing is None or existing.value is not None:
            raise ValueError(f"address {address:#05x} is not pending a patch")
        if owner not in existing.owners:
            raise ValueError(f"{owner} does not own reserved byte {address:#05x}")
        existing.value = value

    def place_flexible(
        self,
        address: int,
        owner: str,
        role: str = "",
        preferred: int = 0x01,
        avoid: Tuple[int, ...] = (),
        allowed: Optional[Tuple[int, ...]] = None,
    ) -> int:
        """Place a byte whose exact value the caller does not care about.

        If the byte already holds a value, that value is *adopted* (the
        paper's trick of reusing whatever a colliding test planted, e.g.
        an arbitrary address offset).  Otherwise ``preferred`` is placed,
        bumped past any values in ``avoid``.  When ``allowed`` is given,
        only those values are acceptable (both for adoption and for fresh
        placement).

        Returns the value now at ``address``.  Raises
        :class:`ConflictError` if adoption is impossible (the existing
        value is in ``avoid`` / outside ``allowed``, or the byte is
        reserved-pending or exclusive).
        """
        address = self._wrap(address)
        existing = self._bytes.get(address)
        if existing is not None:
            unacceptable = (
                existing.value is None
                or existing.value in avoid
                or existing.exclusive
                or (allowed is not None and existing.value not in allowed)
            )
            if unacceptable:
                held = existing.value if existing.value is not None else -1
                raise ConflictError(address, existing, held, owner)
            existing.owners.append(owner)
            return existing.value
        if allowed is not None:
            candidates = [v for v in allowed if v not in avoid]
            if not candidates:
                raise ConflictError(
                    address, PlacedByte(value=None, owners=[owner]), -1, owner
                )
            value = preferred if preferred in candidates else candidates[0]
        else:
            value = preferred & 0xFF
            while value in avoid:
                value = (value + 1) & 0xFF
        self._bytes[address] = PlacedByte(value=value, owners=[owner], role=role)
        return value

    # -- transactions -------------------------------------------------------

    def snapshot_state(
        self,
    ) -> Dict[int, Tuple[Optional[int], Tuple[str, ...], str, bool]]:
        """Cheap copy of the image state for transactional placement."""
        return {
            address: (placed.value, tuple(placed.owners), placed.role, placed.exclusive)
            for address, placed in self._bytes.items()
        }

    def restore_state(
        self, state: Dict[int, Tuple[Optional[int], Tuple[str, ...], str, bool]]
    ) -> None:
        """Roll the image back to a prior :meth:`snapshot_state`."""
        self._bytes = {
            address: PlacedByte(
                value=value, owners=list(owners), role=role, exclusive=exclusive
            )
            for address, (value, owners, role, exclusive) in state.items()
        }

    # -- export ---------------------------------------------------------------

    def as_dict(self) -> Dict[int, int]:
        """The image as ``address -> byte`` (every reservation patched).

        Raises
        ------
        ValueError
            If any reserved byte was never patched.
        """
        pending = [a for a, p in self._bytes.items() if p.value is None]
        if pending:
            listing = ", ".join(f"{a:#05x}" for a in sorted(pending))
            raise ValueError(f"unpatched reserved bytes: {listing}")
        return {address: placed.value for address, placed in self._bytes.items()}

    def provenance(self) -> Dict[int, PlacedByte]:
        """Read-only view of the full provenance map."""
        return dict(self._bytes)
