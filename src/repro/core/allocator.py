"""Free-space allocation for self-test program glue.

Address-bus tests pin bytes at addresses dictated by the test vectors;
everything else — chained code fragments, response bytes, data-bus operand
cells — is *glue* that merely needs free space.  The allocator hands out
that space while steering clear of:

* bytes already placed in the image, and
* the *lookahead set*: addresses that tests still to be placed will pin.

The lookahead is what keeps the applied-test count high: without it, an
early data-bus fragment could squat on the one address a later
address-bus test must own.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.core.image import MemoryImage


class AllocationError(Exception):
    """No free space satisfied an allocation request."""


class GlueAllocator:
    """Linear-scan allocator over the free bytes of a :class:`MemoryImage`.

    Parameters
    ----------
    image:
        The image being built.
    start:
        First address considered for glue (low addresses are popular
        pinning targets — e.g. every negative-glitch test wants byte 0 —
        so glue starts above them by default).
    avoid:
        Lookahead set of addresses future tests will pin.
    """

    def __init__(
        self,
        image: MemoryImage,
        start: int = 0x020,
        avoid: Optional[Iterable[int]] = None,
    ):
        self.image = image
        self.start = start % image.size
        self._cursor = self.start
        self.avoid: Set[int] = set(a % image.size for a in (avoid or ()))

    def add_avoid(self, addresses: Iterable[int]) -> None:
        """Extend the lookahead set."""
        self.avoid.update(a % self.image.size for a in addresses)

    def _usable(self, address: int) -> bool:
        return self.image.is_free(address) and address not in self.avoid

    def alloc_run(self, length: int) -> int:
        """Return the start of a free run of ``length`` bytes.

        The scan moves forward from an internal cursor and wraps once;
        the run itself never wraps past the end of memory.
        """
        if length <= 0:
            raise ValueError("length must be positive")
        size = self.image.size
        scanned = 0
        address = self._cursor
        while scanned < size:
            if address + length <= size and all(
                self._usable(address + k) for k in range(length)
            ):
                self._cursor = address + length
                return address
            address += 1
            scanned += 1
            if address >= size:
                address = 0
        raise AllocationError(f"no free run of {length} bytes")

    def alloc_byte(self) -> int:
        """Return one free byte address."""
        return self.alloc_run(1)

    def alloc_run_constrained(
        self,
        length: int,
        page: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> int:
        """A free run whose *start address* has the given page/offset.

        Used by the adaptive trailing jumps: when one byte of a ``JMP``
        is already fixed by an overlapping test, the jump can still be
        emitted by steering its glue target into the page (and/or onto
        the offset) the fixed byte encodes.
        """
        if length <= 0:
            raise ValueError("length must be positive")
        if page is None and offset is None:
            return self.alloc_run(length)
        size = self.image.size
        page_count = size >> 8
        pages = [page] if page is not None else list(range(page_count))
        offsets = [offset] if offset is not None else list(range(256))
        for candidate_page in pages:
            for candidate_offset in offsets:
                start = (candidate_page << 8) | candidate_offset
                if start + length > size:
                    continue
                if all(self._usable(start + k) for k in range(length)):
                    return start
        raise AllocationError(
            f"no free run of {length} bytes at page={page} offset={offset}"
        )

    def find_operand_page(
        self, offset: int, content: int, avoid_pages: Iterable[int] = ()
    ) -> int:
        """Find a page ``p`` so that ``p:offset`` can hold ``content``.

        Used by the data-bus builders: a test needs *some* memory cell
        whose offset is the first test vector and whose content is the
        second (Section 4.1 — "load from an address with a specific
        offset containing a specific data").  Pages whose cell is free
        and outside the lookahead set are preferred; sharing an existing
        equal byte is the fallback.
        """
        page_count = self.image.size >> 8
        skip = set(avoid_pages)
        candidates = [p for p in range(page_count) if p not in skip]
        # First choice: free and not pinned by a future test.
        for page in candidates:
            address = (page << 8) | offset
            if self._usable(address):
                return page
        # Second choice: already holds exactly the needed value.
        for page in candidates:
            address = (page << 8) | offset
            if self.image.value_at(address) == content:
                return page
        raise AllocationError(
            f"no page offers offset {offset:#04x} for content {content:#04x}"
        )

    def find_writable_page(
        self, offset: int, avoid_pages: Iterable[int] = ()
    ) -> int:
        """Find a page ``p`` whose cell ``p:offset`` is free to be *written*.

        Used by the CPU-to-memory data-bus tests (Section 4.1): the test's
        ``STA`` overwrites the cell at run time, so the cell cannot be
        shared with any read-only placement.
        """
        page_count = self.image.size >> 8
        skip = set(avoid_pages)
        for page in range(page_count):
            if page in skip:
                continue
            address = (page << 8) | offset
            if self._usable(address):
                return page
        raise AllocationError(f"no writable cell with offset {offset:#04x}")
