"""Post-build validation: does the program really apply its tests?

The program builder resolves address conflicts with value adoption,
steered jumps and technique fallbacks; this module closes the loop by
*observing* the built program.  A fault-free run is traced and every
applied test's MA vector pair is checked against the recorded bus
transitions: the pair ``(v1, v2)`` must appear as consecutive settled
words on the bus under test (with the right driving direction on the
bidirectional data bus).

This is the software analogue of validating a hardware pattern generator
against its specification — and it guards the intricate placement logic:
a fragment that was mis-assembled, or whose adopted bytes changed its
semantics, shows up here as a missing transition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.core.maf import MAFault, ma_vector_pair
from repro.core.program_builder import SelfTestProgram
from repro.core.signature import make_system
from repro.soc.bus import BusDirection
from repro.soc.tracer import BusTracer


@dataclass
class ValidationReport:
    """Which applied tests demonstrably hit the bus with their MA pair."""

    confirmed: List[MAFault] = field(default_factory=list)
    missing: List[MAFault] = field(default_factory=list)
    halted: bool = True
    cycles: int = 0

    @property
    def all_confirmed(self) -> bool:
        """True when every applied test's transition was observed."""
        return self.halted and not self.missing


def observed_transitions(
    program: SelfTestProgram, max_cycles: int = 10_000_000
) -> Tuple[Set[tuple], Set[tuple], bool, int]:
    """Trace one fault-free run.

    Returns ``(address transitions, data transitions, halted, cycles)``
    where address transitions are ``(v1, v2)`` pairs and data transitions
    are ``(v1, v2, direction)`` triples.
    """
    system = make_system(program)
    tracer = BusTracer([system.address_bus, system.data_bus])
    result = system.run(entry=program.entry, max_cycles=max_cycles)
    address_transitions = {
        (t.previous, t.driven) for t in tracer.on_bus("addr")
    }
    data_transitions = {
        (t.previous, t.driven, t.direction) for t in tracer.on_bus("data")
    }
    return address_transitions, data_transitions, result.halted, result.cycles


def validate_applied_tests(program: SelfTestProgram) -> ValidationReport:
    """Check every applied test's MA transition against a traced run."""
    address_transitions, data_transitions, halted, cycles = observed_transitions(
        program
    )
    report = ValidationReport(halted=halted, cycles=cycles)
    for test in program.applied:
        pair = ma_vector_pair(test.fault)
        if test.fault.direction is None:
            seen = (pair.v1, pair.v2) in address_transitions
        else:
            seen = (pair.v1, pair.v2, test.fault.direction) in data_transitions
        if seen:
            report.confirmed.append(test.fault)
        else:
            report.missing.append(test.fault)
    return report


def transition_direction_of(fault: MAFault) -> BusDirection:
    """The driving direction of the second vector for a data-bus fault."""
    if fault.direction is None:
        raise ValueError("address-bus faults are always CPU-driven")
    return fault.direction
