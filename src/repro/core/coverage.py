"""Defect-coverage evaluation (paper Section 5, Figs. 9 and 11).

A :class:`DefectSimulator` re-runs one self-test program once per library
defect with the crosstalk error model installed on the bus under test —
so *every* bus transition of the run (fetches included) is subject to
corruption, capturing fault masking exactly as the paper's HDL
environment does.  A defect is detected when the final memory image
differs from the fault-free golden image or the run never halts.

:func:`address_bus_line_coverage` reproduces Fig. 11: it builds one small
program per interconnect (the MA tests for that line), evaluates each
against the whole library, and reports individual plus cumulative
coverage per line.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.engine import ENGINES, SimulationEngine, make_engine
from repro.core.maf import MAFault, enumerate_bus_faults
from repro.core.program_builder import SelfTestProgram, SelfTestProgramBuilder
from repro.core.signature import GoldenReference, ResponseCheck
from repro.obs import runtime as obs_runtime
from repro.xtalk.calibration import Calibration
from repro.xtalk.defects import Defect, DefectLibrary
from repro.xtalk.error_model import CrosstalkErrorModel
from repro.xtalk.params import ElectricalParams

logger = logging.getLogger("repro.core.coverage")

#: Emit a campaign progress log line every this many simulated defects
#: (DEBUG level; only when an observability session is active).
PROGRESS_LOG_EVERY = 200


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of simulating one defect against one program."""

    defect_index: int
    detected: bool
    timed_out: bool
    mismatches: int


class DefectSimulator:
    """Runs one self-test program across a defect library.

    Parameters
    ----------
    program:
        The self-test program under evaluation.
    params:
        Electrical parameters of the bus under test.
    calibration:
        Thresholds derived from the *nominal* bus (shared with the defect
        library so defect criterion and error model agree).
    bus:
        ``"addr"`` or ``"data"`` — which bus the defects live on (the
        paper injects defects per bus: "we only consider crosstalk within
        the same bus").
    engine:
        ``"exact"`` (default) replays every defect in full;
        ``"screened"`` screens the library against the golden bus trace
        and replays only defects that provably diverge, fast-forwarded
        from the last clean checkpoint (see :mod:`repro.core.engine`).
        Both produce identical :class:`DetectionOutcome` values.
    checkpoint_interval / screen_backend:
        Tuning knobs of the screened engine (ignored by ``"exact"``).
    """

    def __init__(
        self,
        program: SelfTestProgram,
        params: ElectricalParams,
        calibration: Calibration,
        bus: str = "addr",
        engine: str = "exact",
        checkpoint_interval: Optional[int] = None,
        screen_backend: str = "auto",
    ):
        if bus not in ("addr", "data"):
            raise ValueError("bus must be 'addr' or 'data'")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")
        self.program = program
        self.params = params
        self.calibration = calibration
        self.bus = bus
        self.engine: SimulationEngine = make_engine(
            engine,
            program,
            params,
            calibration,
            bus,
            checkpoint_interval=checkpoint_interval,
            screen_backend=screen_backend,
        )
        self.golden: GoldenReference = self.engine.golden
        self._last_model: Optional[CrosstalkErrorModel] = None

    def _replay(self, defect: Defect) -> DetectionOutcome:
        """The uninstrumented core of one defect judgment."""
        check: ResponseCheck = self.engine.check(defect)
        self._last_model = self.engine.last_model
        return DetectionOutcome(
            defect_index=defect.index,
            detected=check.detected,
            timed_out=check.timed_out,
            mismatches=check.mismatches,
        )

    def simulate(self, defect: Defect) -> DetectionOutcome:
        """Simulate one defect; return its detection outcome.

        Under an active observability session this also times the replay
        (``coverage.defect.replay`` timer), tallies detection counters
        and rolls the error model's verdict statistics into the session
        registry; with observability off it is the bare replay.  (A
        screened engine may judge a defect without running a model — its
        screening decisions appear under ``coverage.engine.*`` instead.)
        """
        obs = obs_runtime.active()
        if obs is None:
            return self._replay(defect)
        start = time.perf_counter_ns()
        if obs.full_detail:
            with obs.spans.span("defect", index=defect.index, bus=self.bus):
                outcome = self._replay(defect)
        else:
            outcome = self._replay(defect)
        registry = obs.registry
        registry.timer("coverage.defect.replay").observe(
            time.perf_counter_ns() - start
        )
        registry.counter("coverage.defects.simulated").inc()
        if outcome.detected:
            registry.counter("coverage.defects.detected").inc()
        if outcome.timed_out:
            registry.counter("coverage.defects.timeouts").inc()
        if self._last_model is not None:
            for suffix, value in self._last_model.stats().items():
                registry.counter(f"xtalk.model.{suffix}").inc(value)
        return outcome

    def run_library(self, library: DefectLibrary) -> List[DetectionOutcome]:
        """Simulate every defect in the library.

        Batch-capable engines get one :meth:`SimulationEngine.prepare`
        call first (the screened engine vectorizes its whole screening
        pass there).  An active observability session gets a
        ``coverage.campaign`` span, a live ``coverage.campaign.progress``
        gauge in [0, 1], and a DEBUG progress log line every
        :data:`PROGRESS_LOG_EVERY` defects.
        """
        self.engine.prepare(library)
        obs = obs_runtime.active()
        if obs is None:
            return [self.simulate(defect) for defect in library]
        total = len(library)
        progress = obs.registry.gauge("coverage.campaign.progress")
        outcomes: List[DetectionOutcome] = []
        detected = 0
        with obs.spans.span("coverage.campaign", bus=self.bus, defects=total):
            for count, defect in enumerate(library, start=1):
                outcome = self.simulate(defect)
                outcomes.append(outcome)
                if outcome.detected:
                    detected += 1
                progress.set(count / total)
                if count % PROGRESS_LOG_EVERY == 0 or count == total:
                    logger.debug(
                        "campaign %s: %d/%d defects simulated, %d detected",
                        self.bus, count, total, detected,
                    )
        return outcomes

    def detected_set(self, library: DefectLibrary) -> Set[int]:
        """Indices of the defects the program detects."""
        return {
            outcome.defect_index
            for outcome in self.run_library(library)
            if outcome.detected
        }

    def coverage(self, library: DefectLibrary) -> float:
        """Fraction of library defects detected."""
        if len(library) == 0:
            return 0.0
        return len(self.detected_set(library)) / len(library)


@dataclass
class LineCoverage:
    """Fig. 11 data point for one interconnect."""

    line: int  # 1-based, the paper's numbering
    tests_applied: int
    tests_total: int
    individual: float
    cumulative: float
    detected: Set[int] = field(default_factory=set)


@dataclass
class CoverageReport:
    """Fig. 11 data series plus the whole-program coverage."""

    lines: List[LineCoverage]
    library_size: int
    full_program_coverage: Optional[float] = None

    @property
    def cumulative_coverage(self) -> float:
        """Coverage of all per-line tests combined."""
        return self.lines[-1].cumulative if self.lines else 0.0

    def as_rows(self) -> List[Dict[str, object]]:
        """Row dicts for tabular rendering."""
        return [
            {
                "line": line.line,
                "tests": f"{line.tests_applied}/{line.tests_total}",
                "individual": line.individual,
                "cumulative": line.cumulative,
            }
            for line in self.lines
        ]


def address_bus_line_coverage(
    library: DefectLibrary,
    params: ElectricalParams,
    calibration: Calibration,
    builder: Optional[SelfTestProgramBuilder] = None,
    full_program: Optional[SelfTestProgram] = None,
    engine: str = "exact",
    screen_backend: str = "auto",
) -> CoverageReport:
    """Reproduce Fig. 11: per-interconnect and cumulative coverage.

    For each address-bus line, a dedicated program containing (the
    applicable subset of) that line's four MA tests is built and run
    against the whole library.  The cumulative series is the union of the
    detected sets in line order.  If ``full_program`` is given, its
    overall coverage is evaluated too (the paper's single-test-program
    coverage, 100 % in their experiment).  ``engine`` selects the
    defect-simulation engine per program (see :class:`DefectSimulator`);
    the report is engine-independent.
    """
    builder = builder or SelfTestProgramBuilder()
    width = builder.addr_width
    all_faults = enumerate_bus_faults(width)

    lines: List[LineCoverage] = []
    union: Set[int] = set()
    total = len(library)
    obs = obs_runtime.active()
    for victim in range(width):
        line_faults: Sequence[MAFault] = [
            fault for fault in all_faults if fault.victim == victim
        ]
        with obs_runtime.span("coverage.line", line=victim + 1):
            program = builder.build_address_bus_program(line_faults)
            simulator = DefectSimulator(program, params, calibration,
                                        bus="addr", engine=engine,
                                        screen_backend=screen_backend)
            detected = simulator.detected_set(library)
        union |= detected
        line = LineCoverage(
            line=victim + 1,
            tests_applied=len(program.applied),
            tests_total=len(line_faults),
            individual=len(detected) / total if total else 0.0,
            cumulative=len(union) / total if total else 0.0,
            detected=detected,
        )
        lines.append(line)
        if obs is not None:
            # Per-MA-test detection stats (Fig. 11 series as live gauges).
            prefix = f"coverage.line.{victim + 1:02d}"
            obs.registry.gauge(f"{prefix}.individual").set(line.individual)
            obs.registry.gauge(f"{prefix}.cumulative").set(line.cumulative)
            obs.registry.counter("coverage.lines.evaluated").inc()
    full_coverage = None
    if full_program is not None:
        simulator = DefectSimulator(full_program, params, calibration,
                                    bus="addr", engine=engine,
                                    screen_backend=screen_backend)
        full_coverage = simulator.coverage(library)
    return CoverageReport(
        lines=lines,
        library_size=total,
        full_program_coverage=full_coverage,
    )
