"""Defect-coverage aggregation (paper Section 5, Figs. 9 and 11).

Per-defect *execution* lives in :mod:`repro.core.campaign` (specs,
backends, journals); this module is the *aggregation* side: the
:class:`DefectSimulator` convenience wrapper (one program, one engine,
in-process) and the Fig. 11 report builder
:func:`address_bus_line_coverage`, which now routes every per-line
campaign through a :class:`~repro.core.campaign.CampaignRunner` — so it
shards across worker processes (``workers``) and survives interruption
(``journal`` / ``resume``) without the report changing by a bit.

A defect is detected when the final memory image differs from the
fault-free golden image or the run never halts; every bus transition of
the run (fetches included) is subject to corruption, capturing fault
masking exactly as the paper's HDL environment does.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.core.campaign import (
    PROGRESS_LOG_EVERY,
    CampaignJournal,
    CampaignRunner,
    CampaignSpec,
    DetectionOutcome,
    ProgressCallback,
    config_digest,
    execute_defect,
    run_defects,
)
from repro.core.engine import ENGINES, SimulationEngine, make_engine
from repro.core.maf import MAFault, enumerate_bus_faults
from repro.core.program_builder import SelfTestProgram, SelfTestProgramBuilder
from repro.core.signature import GoldenReference
from repro.obs import runtime as obs_runtime
from repro.xtalk.calibration import Calibration
from repro.xtalk.defects import Defect, DefectLibrary
from repro.xtalk.params import ElectricalParams

__all__ = [
    "PROGRESS_LOG_EVERY",
    "CoverageReport",
    "DefectSimulator",
    "DetectionOutcome",
    "LineCoverage",
    "address_bus_line_coverage",
    "fig11_fingerprint",
]

logger = logging.getLogger("repro.core.coverage")


class DefectSimulator:
    """Runs one self-test program across a defect library, in process.

    A thin convenience front on the campaign layer: it owns one engine
    and judges defects serially.  For sharded or resumable campaigns
    build a :class:`~repro.core.campaign.CampaignSpec` (see
    :meth:`spec`) and hand it to a
    :class:`~repro.core.campaign.CampaignRunner`.

    Parameters
    ----------
    program:
        The self-test program under evaluation.
    params:
        Electrical parameters of the bus under test.
    calibration:
        Thresholds derived from the *nominal* bus (shared with the defect
        library so defect criterion and error model agree).
    bus:
        ``"addr"`` or ``"data"`` — which bus the defects live on (the
        paper injects defects per bus: "we only consider crosstalk within
        the same bus").
    engine:
        ``"exact"`` (default) replays every defect in full;
        ``"screened"`` screens the library against the golden bus trace
        and replays only defects that provably diverge, fast-forwarded
        from the last clean checkpoint (see :mod:`repro.core.engine`).
        Both produce identical :class:`DetectionOutcome` values.
    checkpoint_interval / screen_backend:
        Tuning knobs of the screened engine (ignored by ``"exact"``).
    core:
        CPU implementation (``"micro"`` / ``"fast"`` / ``"auto"``; see
        :func:`repro.cpu.microcode.resolve_core`).
    """

    def __init__(
        self,
        program: SelfTestProgram,
        params: ElectricalParams,
        calibration: Calibration,
        bus: str = "addr",
        engine: str = "exact",
        checkpoint_interval: Optional[int] = None,
        screen_backend: str = "auto",
        core: str = "auto",
    ):
        if bus not in ("addr", "data"):
            raise ValueError("bus must be 'addr' or 'data'")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")
        self.program = program
        self.params = params
        self.calibration = calibration
        self.bus = bus
        self.engine_name = engine
        self.checkpoint_interval = checkpoint_interval
        self.screen_backend = screen_backend
        self.core = core
        self.engine: SimulationEngine = make_engine(
            engine,
            program,
            params,
            calibration,
            bus,
            checkpoint_interval=checkpoint_interval,
            screen_backend=screen_backend,
            core=core,
        )
        self.golden: GoldenReference = self.engine.golden

    def spec(
        self, library: Sequence[Defect], label: str = "campaign"
    ) -> CampaignSpec:
        """The picklable campaign spec equivalent to this simulator."""
        return CampaignSpec(
            program=self.program,
            params=self.params,
            calibration=self.calibration,
            defects=tuple(library),
            bus=self.bus,
            engine=self.engine_name,
            checkpoint_interval=self.checkpoint_interval,
            screen_backend=self.screen_backend,
            label=label,
            core=self.core,
        )

    def simulate(self, defect: Defect) -> DetectionOutcome:
        """Simulate one defect; return its detection outcome."""
        return execute_defect(self.engine, defect, self.bus)

    def run_library(self, library: DefectLibrary) -> List[DetectionOutcome]:
        """Simulate every defect in the library (the serial inner loop)."""
        return run_defects(self.engine, library, self.bus)

    def detected_set(self, library: DefectLibrary) -> Set[int]:
        """Indices of the defects the program detects."""
        return {
            outcome.defect_index
            for outcome in self.run_library(library)
            if outcome.detected
        }

    def coverage(self, library: DefectLibrary) -> float:
        """Fraction of library defects detected."""
        if len(library) == 0:
            return 0.0
        return len(self.detected_set(library)) / len(library)


@dataclass
class LineCoverage:
    """Fig. 11 data point for one interconnect."""

    line: int  # 1-based, the paper's numbering
    tests_applied: int
    tests_total: int
    individual: float
    cumulative: float
    detected: Set[int] = field(default_factory=set)


@dataclass
class CoverageReport:
    """Fig. 11 data series plus the whole-program coverage."""

    lines: List[LineCoverage]
    library_size: int
    full_program_coverage: Optional[float] = None

    @property
    def cumulative_coverage(self) -> float:
        """Coverage of all per-line tests combined."""
        return self.lines[-1].cumulative if self.lines else 0.0

    def as_rows(self) -> List[Dict[str, object]]:
        """Row dicts for tabular rendering."""
        return [
            {
                "line": line.line,
                "tests": f"{line.tests_applied}/{line.tests_total}",
                "individual": line.individual,
                "cumulative": line.cumulative,
            }
            for line in self.lines
        ]


def fig11_fingerprint(
    library: DefectLibrary,
    params: ElectricalParams,
    calibration: Calibration,
    width: int,
    with_full_program: bool,
) -> str:
    """Campaign fingerprint of a whole Fig. 11 run (all per-line groups).

    The per-line programs are deterministic functions of the builder
    configuration, so the figure-level journal is keyed on the shared
    electrical/defect configuration plus the figure shape — computable
    before any program is built.
    """
    return config_digest(
        params,
        calibration,
        list(library),
        {
            "kind": "fig11",
            "width": width,
            "full_program": bool(with_full_program),
        },
    )


def address_bus_line_coverage(
    library: DefectLibrary,
    params: ElectricalParams,
    calibration: Calibration,
    builder: Optional[SelfTestProgramBuilder] = None,
    full_program: Optional[SelfTestProgram] = None,
    engine: str = "exact",
    screen_backend: str = "auto",
    workers: int = 1,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    core: str = "auto",
) -> CoverageReport:
    """Reproduce Fig. 11: per-interconnect and cumulative coverage.

    For each address-bus line, a dedicated program containing (the
    applicable subset of) that line's four MA tests is built and run
    against the whole library.  The cumulative series is the union of the
    detected sets in line order.  If ``full_program`` is given, its
    overall coverage is evaluated too (the paper's single-test-program
    coverage, 100 % in their experiment).

    ``engine`` selects the defect-simulation engine per program and
    ``workers`` the campaign parallelism (a process pool above 1); the
    report is engine- and worker-independent.  ``journal`` names a JSONL
    outcome journal covering the whole figure (one record group per
    line, plus ``"full"``); with ``resume=True`` an interrupted run is
    picked up where it stopped and the finished report is identical to
    an uninterrupted one.
    """
    builder = builder or SelfTestProgramBuilder()
    width = builder.addr_width
    all_faults = enumerate_bus_faults(width)

    shared_journal: Optional[CampaignJournal] = None
    if journal is not None:
        fingerprint = fig11_fingerprint(
            library, params, calibration, width, full_program is not None
        )
        shared_journal = CampaignJournal(journal, fingerprint, resume=resume)

    lines: List[LineCoverage] = []
    union: Set[int] = set()
    total = len(library)
    obs = obs_runtime.active()
    try:
        for victim in range(width):
            line_faults: Sequence[MAFault] = [
                fault for fault in all_faults if fault.victim == victim
            ]
            with obs_runtime.span("coverage.line", line=victim + 1):
                program = builder.build_address_bus_program(line_faults)
                spec = CampaignSpec(
                    program=program,
                    params=params,
                    calibration=calibration,
                    defects=tuple(library),
                    bus="addr",
                    engine=engine,
                    screen_backend=screen_backend,
                    label=f"line{victim + 1}",
                    core=core,
                )
                result = CampaignRunner(
                    spec,
                    backend="process" if workers > 1 else "serial",
                    workers=workers if workers > 1 else None,
                    journal=shared_journal,
                    progress=progress,
                ).run()
                detected = result.detected_set()
            union |= detected
            line = LineCoverage(
                line=victim + 1,
                tests_applied=len(program.applied),
                tests_total=len(line_faults),
                individual=len(detected) / total if total else 0.0,
                cumulative=len(union) / total if total else 0.0,
                detected=detected,
            )
            lines.append(line)
            if obs is not None:
                # Per-MA-test detection stats (Fig. 11 series as live gauges).
                prefix = f"coverage.line.{victim + 1:02d}"
                obs.registry.gauge(f"{prefix}.individual").set(line.individual)
                obs.registry.gauge(f"{prefix}.cumulative").set(line.cumulative)
                obs.registry.counter("coverage.lines.evaluated").inc()
        full_coverage = None
        if full_program is not None:
            spec = CampaignSpec(
                program=full_program,
                params=params,
                calibration=calibration,
                defects=tuple(library),
                bus="addr",
                engine=engine,
                screen_backend=screen_backend,
                label="full",
                core=core,
            )
            result = CampaignRunner(
                spec,
                backend="process" if workers > 1 else "serial",
                workers=workers if workers > 1 else None,
                journal=shared_journal,
                progress=progress,
            ).run()
            full_coverage = result.coverage()
    finally:
        if shared_journal is not None:
            shared_journal.close()
    return CoverageReport(
        lines=lines,
        library_size=total,
        full_program_coverage=full_coverage,
    )
