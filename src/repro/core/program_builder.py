"""Whole self-test-program construction (paper Section 4).

The builder turns a set of MAFs into one executable program image:

* every applicable address-bus fault gets a pinned fragment
  (:mod:`repro.core.addrbus`),
* data-bus faults get relocatable fragments, with memory-to-CPU families
  compacted per Section 4.3 (:mod:`repro.core.databus`),
* fragments are chained with ``JMP``s and terminated by the self-loop
  halt.

Tests whose pinned bytes collide with already-placed bytes are *skipped*
with the conflict recorded — the paper's address conflicts ("multiple
tests compete for the same instruction address"), which left 7 of the 48
address-bus tests out of the authors' single program.  Skipped tests can
be scheduled into follow-up sessions with :mod:`repro.core.sessions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.static.diagnostics import LintReport

from repro.core.addrbus import (
    FragmentInfo,
    address_footprint,
    fragment_variants,
)
from repro.core.allocator import AllocationError
from repro.core.assembly import ProgramAssembly
from repro.core.databus import (
    build_read_group_compacted,
    build_read_test,
    build_write_test,
)
from repro.core.image import ConflictError
from repro.core.maf import FaultType, MAFault, enumerate_bus_faults
from repro.isa.instructions import ADDR_BITS, DATA_BITS, MEMORY_SIZE
from repro.soc.bus import BusDirection


@dataclass(frozen=True)
class AppliedTest:
    """One MA test that made it into the program."""

    fault: MAFault
    technique: str
    entry: int
    responses: Tuple[int, ...]


@dataclass(frozen=True)
class SkippedTest:
    """One MA test left out, with the conflict that excluded it."""

    fault: MAFault
    reason: str


@dataclass
class SelfTestProgram:
    """A complete, loadable self-test program."""

    image: Dict[int, int]
    entry: int
    memory_size: int
    applied: List[AppliedTest] = field(default_factory=list)
    skipped: List[SkippedTest] = field(default_factory=list)
    response_addresses: List[int] = field(default_factory=list)
    #: Tests whose deferred pass/fail markers resolved to equal values —
    #: applied but unable to distinguish their own pass/fail response.
    weak_tests: List[str] = field(default_factory=list)
    #: Filled by the static analyzer when linting is requested
    #: (see :meth:`lint` and the builder's ``lint`` flag).
    lint_report: Optional["LintReport"] = None

    @property
    def program_size(self) -> int:
        """Bytes occupied by the program image (code + pinned data)."""
        return len(self.image)

    def lint(self) -> "LintReport":
        """Run the static analyzer on this program and cache its findings.

        Imported lazily: :mod:`repro.static` sits above the core layer.
        """
        from repro.static.analyzer import analyze_program

        self.lint_report = analyze_program(self).lint
        return self.lint_report

    @property
    def applied_faults(self) -> List[MAFault]:
        """The faults whose MA tests the program applies, in run order."""
        return [test.fault for test in self.applied]

    def applied_count(self, fault_type: Optional[FaultType] = None) -> int:
        """Number of applied tests, optionally filtered by fault type."""
        if fault_type is None:
            return len(self.applied)
        return sum(
            1 for test in self.applied if test.fault.fault_type is fault_type
        )


#: Build priority of the address-bus fault families.  Rising-delay tests
#: go first (fully value-fixed pinned windows); the glitch families
#: follow, adopting delay-placed bytes where windows overlap.  The
#: falling-delay tests go last: their one-instruction window coincides
#: with the negative-glitch window of the same line (both need the byte
#: at ``bit_k``), so one family must yield — df defers to follow-up
#: sessions, mirroring the paper's conflict-deferral strategy.
ADDRESS_FAMILY_ORDER = (
    FaultType.RISING_DELAY,
    FaultType.POSITIVE_GLITCH,
    FaultType.NEGATIVE_GLITCH,
    FaultType.FALLING_DELAY,
)

#: Execution order of the memory-to-CPU data-bus families.
DATA_FAMILY_ORDER = (
    FaultType.POSITIVE_GLITCH,
    FaultType.NEGATIVE_GLITCH,
    FaultType.RISING_DELAY,
    FaultType.FALLING_DELAY,
)


class SelfTestProgramBuilder:
    """Builds self-test programs for the CPU-memory demonstrator.

    Parameters
    ----------
    memory_size / addr_width / data_width:
        System dimensions (defaults: the paper's 4K / 12 / 8).
    glue_start:
        First address used for relocatable code and response bytes.
    compact_data_bus:
        Apply Section 4.3 response compaction to memory-to-CPU data-bus
        families (falls back to individual tests when a whole group
        cannot be placed).
    lint:
        Statically lint every built program (:mod:`repro.static`) and
        attach the findings as ``SelfTestProgram.lint_report``.
    """

    def __init__(
        self,
        memory_size: int = MEMORY_SIZE,
        addr_width: int = ADDR_BITS,
        data_width: int = DATA_BITS,
        glue_start: int = 0x020,
        compact_data_bus: bool = True,
        address_order: str = "family",
        lint: bool = False,
    ):
        if address_order not in ("family", "given"):
            raise ValueError("address_order must be 'family' or 'given'")
        self.memory_size = memory_size
        self.addr_width = addr_width
        self.data_width = data_width
        self.glue_start = glue_start
        self.compact_data_bus = compact_data_bus
        #: When set, every built program is statically linted on the way
        #: out and carries its findings in ``lint_report``.
        self.lint = lint
        #: "family" sorts address faults by ADDRESS_FAMILY_ORDER;
        #: "given" preserves the caller's ordering (who-wins-a-contested-
        #: byte is order-dependent, so callers can optimize).
        self.address_order = address_order

    # -- fault enumeration ---------------------------------------------------

    def address_faults(self) -> List[MAFault]:
        """All 4N MAFs of the unidirectional address bus."""
        return enumerate_bus_faults(self.addr_width)

    def data_faults(self) -> List[MAFault]:
        """All 8N MAFs of the bidirectional data bus (both directions)."""
        return enumerate_bus_faults(
            self.data_width,
            (BusDirection.MEM_TO_CPU, BusDirection.CPU_TO_MEM),
        )

    # -- program construction ---------------------------------------------------

    def build(
        self,
        address_faults: Optional[Sequence[MAFault]] = None,
        data_faults: Optional[Sequence[MAFault]] = None,
    ) -> SelfTestProgram:
        """Build one program applying as many of the given MA tests as
        address conflicts allow.

        Passing empty sequences builds bus-specific programs; ``None``
        selects the full fault set of that bus.
        """
        if address_faults is None:
            address_faults = self.address_faults()
        if data_faults is None:
            data_faults = self.data_faults()

        avoid = set()
        for fault in address_faults:
            avoid |= address_footprint(fault, self.memory_size)
        assembly = ProgramAssembly(
            self.memory_size, glue_start=self.glue_start, avoid=avoid
        )
        assembly.build_halt()

        applied: List[AppliedTest] = []
        skipped: List[SkippedTest] = []

        # Fragments are built in reverse execution order (backward
        # chaining).  Address-bus tests are built first: their byte
        # placements are pinned by the test vectors, so they get priority
        # over the freely relocatable data-bus fragments.  The resulting
        # execution order is data-write, data-read, address, halt.
        self._build_address(assembly, address_faults, applied, skipped)
        self._build_data_read(assembly, data_faults, applied, skipped)
        self._build_data_write(assembly, data_faults, applied, skipped)
        assembly.resolve_deferred_markers()

        applied.reverse()
        program = SelfTestProgram(
            image=assembly.image.as_dict(),
            entry=assembly.next_entry,
            memory_size=self.memory_size,
            applied=applied,
            skipped=skipped,
            response_addresses=list(assembly.response_addresses),
            weak_tests=list(assembly.weak_tests),
        )
        if self.lint:
            program.lint()
        return program

    def build_address_bus_program(
        self, faults: Optional[Sequence[MAFault]] = None
    ) -> SelfTestProgram:
        """A program testing only the address bus."""
        return self.build(address_faults=faults, data_faults=())

    def build_data_bus_program(
        self, faults: Optional[Sequence[MAFault]] = None
    ) -> SelfTestProgram:
        """A program testing only the data bus."""
        return self.build(address_faults=(), data_faults=faults)

    # -- internals ---------------------------------------------------------------

    def _try_fragment(
        self,
        assembly: ProgramAssembly,
        builder: Callable[[], FragmentInfo],
    ) -> Tuple[Optional[FragmentInfo], str]:
        """Attempt one fragment transactionally."""
        state = assembly.transaction_state()
        try:
            info = builder()
        except (ConflictError, AllocationError) as exc:
            assembly.rollback(state)
            return None, str(exc)
        assembly.finish_fragment(info.entry)
        return info, ""

    def _build_address(
        self,
        assembly: ProgramAssembly,
        faults: Sequence[MAFault],
        applied: List[AppliedTest],
        skipped: List[SkippedTest],
    ) -> None:
        address_faults = [f for f in faults if f.direction is None]
        if self.address_order == "given":
            ordered = address_faults
        else:
            # Line-major, family-priority within each line: empirically
            # the strongest greedy order (contested bytes cluster per
            # line, so deciding each line's winners together beats
            # family-major sweeps).
            rank = {family: i for i, family in enumerate(ADDRESS_FAMILY_ORDER)}
            ordered = sorted(
                address_faults,
                key=lambda fault: (fault.victim, rank[fault.fault_type]),
            )
        # Build order here is *priority* order, not reverse execution
        # order: backward chaining makes whatever is built first execute
        # last, which is harmless, while priority decides who wins a
        # contested byte.
        for fault in ordered:
            info = None
            reasons = []
            for variant in fragment_variants(fault):
                info, reason = self._try_fragment(
                    assembly, lambda v=variant: v(assembly)
                )
                if info is not None:
                    break
                reasons.append(reason)
            if info is None:
                skipped.append(SkippedTest(fault, " | ".join(reasons)))
            else:
                applied.append(
                    AppliedTest(fault, info.technique, info.entry, info.responses)
                )

    def _build_data_read(
        self,
        assembly: ProgramAssembly,
        faults: Sequence[MAFault],
        applied: List[AppliedTest],
        skipped: List[SkippedTest],
    ) -> None:
        read_faults = [
            f for f in faults if f.direction is BusDirection.MEM_TO_CPU
        ]
        groups = [
            [f for f in read_faults if f.fault_type is family]
            for family in DATA_FAMILY_ORDER
        ]
        for group in reversed([g for g in groups if g]):
            if self.compact_data_bus:
                info, _ = self._try_fragment(
                    assembly,
                    lambda g=group: build_read_group_compacted(assembly, g),
                )
                if info is not None:
                    for fault in group:
                        applied.append(
                            AppliedTest(
                                fault, info.technique, info.entry, info.responses
                            )
                        )
                    continue
            # Individual fallback (also the non-compacted mode).
            for fault in reversed(group):
                info, reason = self._try_fragment(
                    assembly, lambda f=fault: build_read_test(assembly, f)
                )
                if info is None:
                    skipped.append(SkippedTest(fault, reason))
                else:
                    applied.append(
                        AppliedTest(fault, info.technique, info.entry, info.responses)
                    )

    def _build_data_write(
        self,
        assembly: ProgramAssembly,
        faults: Sequence[MAFault],
        applied: List[AppliedTest],
        skipped: List[SkippedTest],
    ) -> None:
        write_faults = [
            fault
            for family in DATA_FAMILY_ORDER
            for fault in faults
            if fault.direction is BusDirection.CPU_TO_MEM
            and fault.fault_type is family
        ]
        for fault in reversed(write_faults):
            info, reason = self._try_fragment(
                assembly, lambda f=fault: build_write_test(assembly, f)
            )
            if info is None:
                skipped.append(SkippedTest(fault, reason))
            else:
                applied.append(
                    AppliedTest(fault, info.technique, info.entry, info.responses)
                )
