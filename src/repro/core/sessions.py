"""Multi-session scheduling of conflicting tests (paper Section 5).

"Some of the tests cannot be applied due to address conflicts — i.e.,
multiple tests compete for the same instruction address.  This problem
can be solved by separating conflicting tests into multiple test
programs, which can be executed in different sessions."

:func:`build_sessions` does exactly that: it builds a first program with
every requested fault, then keeps building follow-up programs from the
skipped remainder until everything is applied or no further progress is
possible (a fault can be *structurally* unapplicable — e.g. the negative
glitch on address line 1, whose corrupted target address coincides with
the test's own instruction byte).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.campaign import CampaignSpec, run_campaign
from repro.core.maf import MAFault
from repro.core.program_builder import SelfTestProgram, SelfTestProgramBuilder
from repro.obs import runtime as obs_runtime
from repro.soc.bus import BusDirection
from repro.xtalk.calibration import Calibration
from repro.xtalk.defects import DefectLibrary
from repro.xtalk.params import ElectricalParams


@dataclass
class SessionPlan:
    """The session decomposition of one fault set."""

    programs: List[SelfTestProgram] = field(default_factory=list)
    unapplicable: List[MAFault] = field(default_factory=list)

    @property
    def session_count(self) -> int:
        """Number of test programs (tester sessions)."""
        return len(self.programs)

    @property
    def applied_total(self) -> int:
        """Tests applied across all sessions."""
        return sum(len(program.applied) for program in self.programs)

    @property
    def all_clean(self) -> bool:
        """True when every linted session program is free of errors.

        Programs built without linting (no ``lint_report``) count as
        clean; pass ``lint=True`` to :func:`build_sessions` to make this
        property meaningful for the whole plan.
        """
        return all(
            program.lint_report is None or program.lint_report.clean
            for program in self.programs
        )


def build_sessions(
    builder: Optional[SelfTestProgramBuilder] = None,
    address_faults: Optional[Sequence[MAFault]] = None,
    data_faults: Optional[Sequence[MAFault]] = None,
    max_sessions: int = 8,
    lint: Optional[bool] = None,
) -> SessionPlan:
    """Schedule the given faults into as few programs as conflicts allow.

    ``lint`` overrides the builder's own lint flag for this plan: pass
    ``True`` to statically lint every session program as it is built
    (findings land in each program's ``lint_report``).
    """
    builder = builder or SelfTestProgramBuilder()
    if lint is not None:
        builder.lint = lint
    remaining_address = list(
        builder.address_faults() if address_faults is None else address_faults
    )
    remaining_data = list(
        builder.data_faults() if data_faults is None else data_faults
    )
    plan = SessionPlan()
    while (remaining_address or remaining_data) and len(plan.programs) < max_sessions:
        with obs_runtime.span("sessions.build", session=len(plan.programs)):
            program = builder.build(remaining_address, remaining_data)
        if not program.applied:
            break  # nothing placeable even alone: the rest is unapplicable
        plan.programs.append(program)
        applied = set(program.applied_faults)
        remaining_address = [f for f in remaining_address if f not in applied]
        remaining_data = [f for f in remaining_data if f not in applied]
    plan.unapplicable = [
        fault
        for fault in remaining_address + remaining_data
        if fault.direction is None or isinstance(fault.direction, BusDirection)
    ]
    obs = obs_runtime.active()
    if obs is not None:
        obs.registry.counter("sessions.programs").inc(plan.session_count)
        obs.registry.counter("sessions.tests.applied").inc(plan.applied_total)
        obs.registry.counter("sessions.tests.unapplicable").inc(
            len(plan.unapplicable)
        )
    return plan


def session_coverage(
    plan: SessionPlan,
    library: DefectLibrary,
    params: ElectricalParams,
    calibration: Calibration,
    bus: str = "addr",
    engine: str = "exact",
    screen_backend: str = "auto",
    workers: int = 1,
) -> float:
    """Union defect coverage of every program in a session plan.

    A defect is covered when *any* session detects it (the tester runs
    every session; one failing signature fails the part).  ``engine``
    selects the per-program simulation engine — ``"screened"`` pays off
    here because each session program gets its own golden trace, and
    defects clean on a session's trace skip that session's replay.
    ``workers`` shards each session's campaign over a process pool
    (see :mod:`repro.core.campaign`); the result is worker-independent.
    """
    if len(library) == 0:
        return 0.0
    detected: set = set()
    for session, program in enumerate(plan.programs, start=1):
        spec = CampaignSpec(
            program=program,
            params=params,
            calibration=calibration,
            defects=tuple(library),
            bus=bus,
            engine=engine,
            screen_backend=screen_backend,
            label=f"session{session}",
        )
        detected |= run_campaign(spec, workers=workers).detected_set()
    return len(detected) / len(library)
