"""The paper's contribution: software-based self-test for crosstalk.

This package turns Maximum Aggressor Faults into executable self-test
programs for the PARWAN-class CPU-memory system:

* :mod:`repro.core.maf` — the MAF fault model and MA vector pairs (Fig. 1);
* :mod:`repro.core.image` — conflict-checked memory image with provenance;
* :mod:`repro.core.allocator` — free-space allocation for program glue;
* :mod:`repro.core.databus` — data-bus test fragments (Section 4.1) and
  ADD-based response compaction (Section 4.3);
* :mod:`repro.core.addrbus` — address-bus delay-fault (Section 4.2.1) and
  glitch-fault (Section 4.2.2) test fragments;
* :mod:`repro.core.program_builder` — whole-program construction with
  address-conflict deferral;
* :mod:`repro.core.sessions` — multi-session scheduling of deferred tests;
* :mod:`repro.core.signature` — golden responses and detection checks;
* :mod:`repro.core.campaign` — campaign orchestration: picklable specs,
  serial/process execution backends, resumable JSONL outcome journals;
* :mod:`repro.core.coverage` — defect-coverage aggregation (Fig. 9)
  and coverage reporting (Fig. 11) on top of the campaign layer.
"""

from repro.core.maf import (
    FaultType,
    MAFault,
    VectorPair,
    enumerate_bus_faults,
    ma_vector_pair,
)
from repro.core.image import ConflictError, MemoryImage
from repro.core.allocator import GlueAllocator
from repro.core.program_builder import (
    AppliedTest,
    SelfTestProgram,
    SelfTestProgramBuilder,
    SkippedTest,
)
from repro.core.sessions import build_sessions, session_coverage
from repro.core.signature import GoldenReference, capture_golden, check_response
from repro.core.engine import (
    ENGINES,
    ExactEngine,
    ScreenedEngine,
    SimulationEngine,
    capture_golden_with_trace,
    make_engine,
)
from repro.core.cache import (
    CachedCampaign,
    CacheEntryInfo,
    CacheError,
    GoldenRunCache,
    cache_enabled,
    cache_root,
    default_cache,
)
from repro.core.campaign import (
    BACKENDS,
    CampaignJournal,
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    DetectionOutcome,
    ExecutionBackend,
    JournalError,
    ProcessBackend,
    SerialBackend,
    make_backend,
    run_campaign,
)
from repro.core.coverage import (
    CoverageReport,
    DefectSimulator,
    address_bus_line_coverage,
)
from repro.core.diagnosis import DiagnosisReport, diagnose, diagnosis_accuracy
from repro.core.validate import ValidationReport, validate_applied_tests

__all__ = [
    "FaultType",
    "MAFault",
    "VectorPair",
    "enumerate_bus_faults",
    "ma_vector_pair",
    "ConflictError",
    "MemoryImage",
    "GlueAllocator",
    "AppliedTest",
    "SelfTestProgram",
    "SelfTestProgramBuilder",
    "SkippedTest",
    "build_sessions",
    "session_coverage",
    "GoldenReference",
    "capture_golden",
    "check_response",
    "ENGINES",
    "ExactEngine",
    "ScreenedEngine",
    "SimulationEngine",
    "capture_golden_with_trace",
    "make_engine",
    "CachedCampaign",
    "CacheEntryInfo",
    "CacheError",
    "GoldenRunCache",
    "cache_enabled",
    "cache_root",
    "default_cache",
    "BACKENDS",
    "CampaignJournal",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "ExecutionBackend",
    "JournalError",
    "ProcessBackend",
    "SerialBackend",
    "make_backend",
    "run_campaign",
    "CoverageReport",
    "DefectSimulator",
    "DetectionOutcome",
    "address_bus_line_coverage",
    "DiagnosisReport",
    "diagnose",
    "diagnosis_accuracy",
    "ValidationReport",
    "validate_applied_tests",
]
