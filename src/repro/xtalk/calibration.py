"""Consistent calibration of defect threshold and receiver margins.

The paper generates its defect library with a *capacitance* criterion —
"if a perturbation in capacitance causes the net coupling capacitance (C)
on any interconnect to be larger than a threshold value (Cth), it is
recorded as a defect" — and notes that "the value of Cth depends on the
value of acceptable delay length or glitch height".

This module makes that dependency explicit and bidirectional.  Starting
from a chosen safety factor over the nominal worst net coupling, it
derives:

* ``cth``       — the net-coupling defect threshold (fF),
* ``v_th``      — the receiver glitch threshold (volts) such that the MA
  glitch pattern produces an error on wire *i* **iff** ``Cnet_i > cth``,
* ``t_margin``  — the allowed settling time per driving direction such
  that the MA delay pattern produces an error on wire *i* **iff**
  ``Cnet_i > cth``.

With uniform ground capacitance this gives the in-model version of the
ICCAD'99 result (MA tests are necessary and sufficient for all coupling
defects in an RC network), which the property-based tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.soc.bus import BusDirection
from repro.xtalk.capacitance import CapacitanceSet
from repro.xtalk.params import LN2, ElectricalParams


@dataclass(frozen=True)
class Calibration:
    """Derived defect/error thresholds for one bus.

    Attributes
    ----------
    cth:
        Net-coupling defect threshold in fF.
    v_th:
        Receiver glitch threshold in volts.
    t_margin:
        Allowed settling time (seconds) per driving direction.
    safety_factor:
        ``cth`` as a multiple of the worst nominal net coupling.
    """

    cth: float
    v_th: float
    t_margin: Dict[BusDirection, float]
    safety_factor: float

    def margin_for(self, direction: BusDirection) -> float:
        """Settling-time margin for the given driving direction."""
        return self.t_margin[direction]

    def is_defective(self, caps: CapacitanceSet) -> bool:
        """Paper's defect criterion: any wire's net coupling above cth."""
        return any(net > self.cth for net in caps.net_couplings())

    def defective_wires(self, caps: CapacitanceSet) -> tuple:
        """Wires whose net coupling exceeds cth."""
        return tuple(
            i for i, net in enumerate(caps.net_couplings()) if net > self.cth
        )


def calibrate(
    nominal: CapacitanceSet,
    params: ElectricalParams,
    safety_factor: float = 1.25,
) -> Calibration:
    """Derive a consistent :class:`Calibration` for a nominal bus.

    ``safety_factor`` expresses the design margin: how much the worst
    net coupling may grow before timing/integrity budgets are violated.
    Must be > 1 so the nominal (defect-free) bus passes every MA test.
    """
    if safety_factor <= 1.0:
        raise ValueError("safety_factor must exceed 1.0")
    grounds = set(nominal.ground)
    if len(grounds) != 1:
        raise ValueError(
            "calibration assumes uniform ground capacitance across the bus"
        )
    cg = nominal.ground[0]
    cth = safety_factor * max(nominal.net_couplings())
    # Glitch: alpha * Vdd * Cnet / (Cg + Cnet) is monotone in Cnet, so
    # setting the receiver threshold at Cnet == cth makes "MA glitch
    # pattern fails" equivalent to "Cnet > cth".
    v_th = params.glitch_attenuation * params.vdd * cth / (cg + cth)
    # Delay: the MA pattern gives t50 = ln2 * R * (Cg + 2 Cnet); placing
    # the margin at Cnet == cth gives the same equivalence, per direction.
    t_margin = {
        direction: LN2 * params.r_for(direction) * (cg + 2.0 * cth) * 1e-15
        for direction in BusDirection
    }
    return Calibration(
        cth=cth, v_th=v_th, t_margin=t_margin, safety_factor=safety_factor
    )
