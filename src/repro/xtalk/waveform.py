"""Detailed coupled-RC waveform simulation (scipy-based).

The lumped estimators in :mod:`repro.xtalk.rc_model` reduce each
transition to closed-form glitch/delay expressions.  This module solves
the actual linear network so those reductions can be validated
(experiment E10):

Each wire is one node with a driver modelled as a resistor ``R`` to its
target rail, a ground capacitor ``Cg`` and coupling capacitors ``Cc`` to
its neighbours.  Node equations in Maxwell form::

    C dV/dt = G (Vin - V)

with ``C[i][i] = Cg_i + sum_j Cc_ij``, ``C[i][j] = -Cc_ij`` and
``G = diag(1/R_i)``.  The solution is propagated with a matrix
exponential over a fixed time grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.linalg import expm

from repro.soc.bus import BusDirection
from repro.xtalk.capacitance import CapacitanceSet
from repro.xtalk.params import ElectricalParams
from repro.xtalk.rc_model import TransitionKindBits, classify_transition


@dataclass
class WaveformResult:
    """Waveforms of one simulated bus transition.

    ``voltages[i, k]`` is the voltage of wire ``i`` at ``times[k]``.
    """

    times: np.ndarray
    voltages: np.ndarray
    kinds: list
    vdd: float

    def glitch_peak(self, wire: int) -> float:
        """Signed peak excursion of a stable wire from its rail (volts).

        Positive values are upward excursions.  Returns 0.0 for a
        switching wire.
        """
        kind = self.kinds[wire]
        if kind.switching:
            return 0.0
        level = self.vdd if kind is TransitionKindBits.STABLE1 else 0.0
        excursion = self.voltages[wire] - level
        peak_index = int(np.argmax(np.abs(excursion)))
        return float(excursion[peak_index])

    def delay_to_half(self, wire: int) -> float:
        """Time of the *final* 50 %-crossing of a switching wire (seconds).

        Strong coupling can drag a victim back across the threshold after
        a first crossing, so the settling-relevant delay is the last
        crossing.  Returns ``inf`` if the wire never settles past 50 %
        within the window, and 0.0 for stable wires.
        """
        kind = self.kinds[wire]
        if not kind.switching:
            return 0.0
        half = self.vdd / 2.0
        v = self.voltages[wire]
        if kind is TransitionKindBits.RISING:
            settled = v >= half
        else:
            settled = v <= half
        if not settled[-1]:
            return float("inf")
        # Last index where the wire was on the wrong side of 50 %.
        wrong = np.nonzero(~settled)[0]
        if len(wrong) == 0:
            return float(self.times[0])
        last_wrong = wrong[-1]
        if last_wrong + 1 >= len(self.times):
            return float("inf")
        # Linear interpolation between the bracketing samples.
        t0, t1 = self.times[last_wrong], self.times[last_wrong + 1]
        v0, v1 = v[last_wrong], v[last_wrong + 1]
        if v1 == v0:
            return float(t1)
        return float(t0 + (half - v0) * (t1 - t0) / (v1 - v0))


def simulate_transition(
    caps: CapacitanceSet,
    params: ElectricalParams,
    v1: int,
    v2: int,
    direction: BusDirection = BusDirection.CPU_TO_MEM,
    t_end: Optional[float] = None,
    points: int = 600,
) -> WaveformResult:
    """Simulate the bus transition ``v1 -> v2`` and return the waveforms."""
    n = caps.wire_count
    kinds = classify_transition(v1, v2, n)
    r = params.r_for(direction)

    c_matrix = np.zeros((n, n))
    for i in range(n):
        c_matrix[i, i] = (caps.ground[i] + caps.net_coupling(i)) * 1e-15
        for j, cc in caps.neighbours(i):
            c_matrix[i, j] = -cc * 1e-15
    g_matrix = np.eye(n) / r

    v_initial = np.array(
        [params.vdd if (v1 >> i) & 1 else 0.0 for i in range(n)]
    )
    v_final = np.array(
        [params.vdd if (v2 >> i) & 1 else 0.0 for i in range(n)]
    )

    if t_end is None:
        # Cover several times the worst Miller-boosted time constant.
        worst = max(
            caps.ground[i] + 2.0 * caps.net_coupling(i) for i in range(n)
        )
        t_end = 10.0 * r * worst * 1e-15

    times = np.linspace(0.0, t_end, points)
    a_matrix = -np.linalg.solve(c_matrix, g_matrix)
    propagator = expm(a_matrix * (times[1] - times[0]))

    voltages = np.empty((n, points))
    deviation = v_initial - v_final
    for k in range(points):
        voltages[:, k] = v_final + deviation
        deviation = propagator @ deviation
    return WaveformResult(
        times=times, voltages=voltages, kinds=kinds, vdd=params.vdd
    )
