"""Crosstalk electrical substrate.

This package stands in for the paper's HDL-level crosstalk machinery:

* a parametric bus geometry and the coupling/ground capacitance matrices
  extracted from it (the paper's "parameter file containing the values of
  the coupling capacitance among interconnects"),
* the lumped-RC glitch/delay estimators,
* the high-level crosstalk error model of Bai & Dey (VTS 2001) that
  corrupts the second vector of a bus transition at the receiving end,
* the defect-library generator (Gaussian capacitance perturbation with a
  net-coupling threshold ``Cth``, after Cuviello et al., ICCAD 1999),
* a scipy-based coupled-RC waveform simulator used to validate the lumped
  estimators.
"""

from repro.xtalk.geometry import BusGeometry
from repro.xtalk.capacitance import (
    CapacitanceSet,
    extract_capacitance,
    load_capacitance,
    parse_capacitance,
)
from repro.xtalk.params import ElectricalParams, load_params, parse_params
from repro.xtalk.rc_model import (
    TransitionKindBits,
    classify_transition,
    glitch_voltage,
    transition_delay,
)
from repro.xtalk.calibration import Calibration, calibrate
from repro.xtalk.kernel import TransitionKernel, WireError
from repro.xtalk.error_model import CrosstalkErrorModel
from repro.xtalk.screen import ScreenVerdict, TraceScreen
from repro.xtalk.defects import Defect, DefectLibrary, generate_defect_library
from repro.xtalk.waveform import WaveformResult, simulate_transition

__all__ = [
    "BusGeometry",
    "CapacitanceSet",
    "extract_capacitance",
    "load_capacitance",
    "parse_capacitance",
    "ElectricalParams",
    "load_params",
    "parse_params",
    "TransitionKindBits",
    "classify_transition",
    "glitch_voltage",
    "transition_delay",
    "Calibration",
    "calibrate",
    "TransitionKernel",
    "WireError",
    "CrosstalkErrorModel",
    "ScreenVerdict",
    "TraceScreen",
    "Defect",
    "DefectLibrary",
    "generate_defect_library",
    "WaveformResult",
    "simulate_transition",
]
