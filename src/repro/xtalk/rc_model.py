"""Lumped-RC crosstalk estimators.

These are the analysis formulas behind the high-level error model:

Glitch (stable victim)
    Charge sharing: aggressor transitions inject charge through the
    coupling capacitors.  The peak victim excursion is::

        V_glitch = alpha * Vdd * sum(+-Cc_vj over switching aggressors j)
                                 / (Cg_v + Cnet_v)

    with ``+`` for rising and ``-`` for falling aggressors; ``alpha < 1``
    models the victim driver pulling the line back.  A *positive* glitch
    matters on a victim stable at 0, a *negative* glitch on a victim
    stable at 1 (Fig. 1 of the paper).

Delay (transitioning victim)
    Elmore delay with Miller factors: each coupling capacitor counts 0x
    when the aggressor switches the same way, 1x when it is quiet, and 2x
    when it switches the opposite way::

        t_50 = ln(2) * R_driver * (Cg_v + sum(mf_vj * Cc_vj))

Both are monotone in the victim's net coupling capacitance under the
maximum-aggressor pattern, which is what makes the paper's defect
criterion (net coupling above a threshold ``Cth``) equivalent to "some MA
test produces an error" — the property proven in the ICCAD'99 MAF paper
and checked by this repository's property-based tests.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

from repro.soc.bus import BusDirection
from repro.xtalk.capacitance import CapacitanceSet
from repro.xtalk.params import LN2, ElectricalParams


class TransitionKindBits(enum.Enum):
    """Per-wire behaviour across one bus transition."""

    STABLE0 = "stable0"
    STABLE1 = "stable1"
    RISING = "rising"
    FALLING = "falling"

    @property
    def switching(self) -> bool:
        """True for rising/falling wires."""
        return self in (TransitionKindBits.RISING, TransitionKindBits.FALLING)


def classify_transition(v1: int, v2: int, width: int) -> List[TransitionKindBits]:
    """Classify each wire of the transition ``v1 -> v2``.

    Wire ``i`` corresponds to bit ``i`` (the paper's "line i+1").
    """
    kinds = []
    for i in range(width):
        b1 = (v1 >> i) & 1
        b2 = (v2 >> i) & 1
        if b1 == b2:
            kinds.append(
                TransitionKindBits.STABLE1 if b1 else TransitionKindBits.STABLE0
            )
        elif b2:
            kinds.append(TransitionKindBits.RISING)
        else:
            kinds.append(TransitionKindBits.FALLING)
    return kinds


def glitch_voltage(
    caps: CapacitanceSet,
    params: ElectricalParams,
    wire: int,
    kinds: Sequence[TransitionKindBits],
) -> float:
    """Signed glitch voltage coupled onto a *stable* ``wire``.

    Positive values are upward glitches.  Returns 0.0 for a switching
    wire (glitches are a stable-victim phenomenon in the MAF model).
    """
    if kinds[wire].switching:
        return 0.0
    injected = 0.0
    for j, cc in caps.neighbours(wire):
        if kinds[j] is TransitionKindBits.RISING:
            injected += cc
        elif kinds[j] is TransitionKindBits.FALLING:
            injected -= cc
    total = caps.ground[wire] + caps.net_coupling(wire)
    return params.glitch_attenuation * params.vdd * injected / total


def miller_factor(
    victim_kind: TransitionKindBits, aggressor_kind: TransitionKindBits
) -> float:
    """Miller factor of one coupling capacitor for a switching victim."""
    if not aggressor_kind.switching:
        return 1.0
    if aggressor_kind is victim_kind:
        return 0.0
    return 2.0


def transition_delay(
    caps: CapacitanceSet,
    params: ElectricalParams,
    wire: int,
    kinds: Sequence[TransitionKindBits],
    direction: BusDirection,
) -> float:
    """50 %-crossing delay (seconds) of a *switching* ``wire``.

    Returns 0.0 for a stable wire.  Capacitances are in fF, so the raw
    product is scaled by 1e-15 to give seconds.
    """
    victim_kind = kinds[wire]
    if not victim_kind.switching:
        return 0.0
    c_eff = caps.ground[wire]
    for j, cc in caps.neighbours(wire):
        c_eff += miller_factor(victim_kind, kinds[j]) * cc
    return LN2 * params.r_for(direction) * c_eff * 1e-15


def worst_case_delay(
    caps: CapacitanceSet,
    params: ElectricalParams,
    wire: int,
    direction: BusDirection,
) -> float:
    """Delay of ``wire`` under its maximum-aggressor pattern (all
    aggressors switching opposite to the victim)."""
    c_eff = caps.ground[wire] + 2.0 * caps.net_coupling(wire)
    return LN2 * params.r_for(direction) * c_eff * 1e-15


def worst_case_glitch(
    caps: CapacitanceSet, params: ElectricalParams, wire: int
) -> float:
    """Glitch magnitude of ``wire`` under its maximum-aggressor pattern
    (all aggressors switching the same way, victim quiet)."""
    cnet = caps.net_coupling(wire)
    total = caps.ground[wire] + cnet
    return params.glitch_attenuation * params.vdd * cnet / total
