"""Capacitance extraction and the capacitance parameter set.

A :class:`CapacitanceSet` is the in-memory equivalent of the paper's
"parameter file containing the values of the coupling capacitance among
interconnects": a symmetric wire-to-wire coupling matrix plus a per-wire
ground capacitance.  All values are in femtofarads.

Extraction uses first-order parallel-line formulas:

* coupling between adjacent wires: ``C_AREA_COUPLING * length / spacing``
* ground capacitance: ``C_GROUND_PER_UM * length``

These constants are loosely calibrated to a late-1990s 0.25 um process
(the paper's era); their absolute values only set scales — all experiment
conclusions depend on *ratios* (net coupling vs. threshold).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.xtalk.geometry import BusGeometry

#: Sidewall coupling constant, fF * um (per um of length, per um of spacing).
C_AREA_COUPLING = 0.08
#: Ground (area + fringe) capacitance per um of wire length, fF/um.
C_GROUND_PER_UM = 0.04


@dataclass(frozen=True)
class CapacitanceSet:
    """Coupling and ground capacitances of one bus, in fF.

    ``coupling`` is a symmetric ``N x N`` nested tuple with zero diagonal;
    ``ground`` has ``N`` entries.  Instances are immutable: perturbation
    produces a new set (see :meth:`perturbed`).
    """

    coupling: Tuple[Tuple[float, ...], ...]
    ground: Tuple[float, ...]

    def __post_init__(self):
        n = len(self.ground)
        if len(self.coupling) != n:
            raise ValueError("coupling matrix size must match ground vector")
        for i, row in enumerate(self.coupling):
            if len(row) != n:
                raise ValueError("coupling matrix must be square")
            if row[i] != 0.0:
                raise ValueError("coupling matrix diagonal must be zero")
        for i in range(n):
            for j in range(n):
                if abs(self.coupling[i][j] - self.coupling[j][i]) > 1e-12:
                    raise ValueError("coupling matrix must be symmetric")
                if self.coupling[i][j] < 0 or (i != j and self.ground[i] < 0):
                    raise ValueError("capacitances must be non-negative")

    @property
    def wire_count(self) -> int:
        """Number of wires on the bus."""
        return len(self.ground)

    def net_coupling(self, wire: int) -> float:
        """Total coupling capacitance attached to ``wire`` (the paper's
        per-interconnect net coupling capacitance ``C``)."""
        return sum(self.coupling[wire])

    def net_couplings(self) -> List[float]:
        """Net coupling capacitance of every wire."""
        return [self.net_coupling(i) for i in range(self.wire_count)]

    def neighbours(self, wire: int) -> List[Tuple[int, float]]:
        """``(other wire, coupling)`` pairs with non-zero coupling."""
        return [
            (j, c) for j, c in enumerate(self.coupling[wire]) if c > 0.0
        ]

    def perturbed(self, factors: Sequence[Sequence[float]]) -> "CapacitanceSet":
        """Return a copy with each coupling scaled by ``factors[i][j]``.

        ``factors`` must be symmetric (a physical defect affects one
        capacitor, seen identically from both wires); ground capacitances
        are left untouched, matching the paper's defect model which
        perturbs only the coupling capacitances.
        """
        n = self.wire_count
        new_rows = []
        for i in range(n):
            row = []
            for j in range(n):
                if i == j:
                    row.append(0.0)
                    continue
                factor = factors[i][j]
                if abs(factor - factors[j][i]) > 1e-12:
                    raise ValueError("perturbation factors must be symmetric")
                if factor < 0:
                    raise ValueError("perturbation factors must be non-negative")
                row.append(self.coupling[i][j] * factor)
            new_rows.append(tuple(row))
        return CapacitanceSet(coupling=tuple(new_rows), ground=self.ground)


def extract_capacitance(geometry: BusGeometry) -> CapacitanceSet:
    """Extract nominal capacitances for ``geometry``.

    Only nearest-neighbour coupling is extracted (second-neighbour
    coupling is screened by the wire in between and is one to two orders
    of magnitude smaller on dense buses).
    """
    n = geometry.wire_count
    coupling = [[0.0] * n for _ in range(n)]
    for gap, spacing in enumerate(geometry.spacings_um):
        value = C_AREA_COUPLING * geometry.length_um / spacing
        coupling[gap][gap + 1] = value
        coupling[gap + 1][gap] = value
    ground = tuple([C_GROUND_PER_UM * geometry.length_um] * n)
    return CapacitanceSet(
        coupling=tuple(tuple(row) for row in coupling), ground=ground
    )


_parse_memo: Dict[str, CapacitanceSet] = {}
_load_memo: Dict[Tuple[str, int, int], CapacitanceSet] = {}


def parse_capacitance(text: str) -> CapacitanceSet:
    """Parse a JSON capacitance parameter file into a :class:`CapacitanceSet`.

    The document must be ``{"coupling": [[...], ...], "ground": [...]}``
    in femtofarads.  Identical texts return the *same* instance, which
    amortizes the O(n^2) symmetry/positivity validation in
    ``CapacitanceSet.__post_init__`` — worker processes re-reading the
    shared parameter file validate it once.
    """
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    cached = _parse_memo.get(digest)
    if cached is not None:
        return cached
    document = json.loads(text)
    if not isinstance(document, dict):
        raise ValueError("capacitance file must be a JSON object")
    unknown = set(document) - {"coupling", "ground"}
    if unknown:
        raise ValueError(
            f"unknown capacitance keys: {', '.join(sorted(unknown))}"
        )
    try:
        coupling = tuple(
            tuple(float(value) for value in row)
            for row in document["coupling"]
        )
        ground = tuple(float(value) for value in document["ground"])
    except (KeyError, TypeError) as error:
        raise ValueError(
            "capacitance file needs 'coupling' (matrix) and 'ground' "
            "(vector) numeric arrays"
        ) from error
    capacitance = CapacitanceSet(coupling=coupling, ground=ground)
    _parse_memo[digest] = capacitance
    return capacitance


def load_capacitance(path: Union[str, "os.PathLike[str]"]) -> CapacitanceSet:
    """Load a JSON capacitance file, memoized on ``(realpath, mtime, size)``.

    Same contract as :func:`repro.xtalk.params.load_params`: unchanged
    files return the cached instance, edits invalidate the entry.
    """
    real = os.path.realpath(os.fspath(path))
    stat = os.stat(real)
    key = (real, stat.st_mtime_ns, stat.st_size)
    cached = _load_memo.get(key)
    if cached is not None:
        return cached
    with open(real, "r", encoding="utf-8") as stream:
        capacitance = parse_capacitance(stream.read())
    _load_memo[key] = capacitance
    return capacitance
