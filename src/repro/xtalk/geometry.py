"""Parametric geometry of a parallel on-chip bus.

The paper takes the coupling capacitances of the bus under test from a
parameter file extracted for a concrete layout.  We substitute a simple
parametric geometry: ``wire_count`` parallel wires of a given length, with
a per-gap spacing profile.  Nearest-neighbour coupling capacitance scales
with ``length / spacing`` (parallel-plate between wire sidewalls), ground
capacitance with ``length``.

Two stock profiles are provided:

``uniform``
    Equal spacing everywhere.
``edge_relaxed``
    The outermost gaps are wider (a common routing practice for global
    buses: the edge tracks border empty space or shielding).  This is the
    default for the paper reproduction because it yields the net-coupling
    profile the paper observes — side interconnects have markedly smaller
    net coupling capacitance, so small capacitance perturbations almost
    never render them defective (Fig. 11: lines 1, 2, 11, 12 show no
    defects at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple


@dataclass(frozen=True)
class BusGeometry:
    """Geometry of one parallel bus.

    Attributes
    ----------
    wire_count:
        Number of interconnects (12 for the paper's address bus, 8 for the
        data bus).
    length_um:
        Parallel run length in micrometres; global interconnects between
        cores are long (the paper's motivation), default 2000 um.
    spacings_um:
        The ``wire_count - 1`` gap widths between adjacent wires.
    """

    wire_count: int
    length_um: float = 2000.0
    spacings_um: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.wire_count < 2:
            raise ValueError("a bus needs at least two wires")
        if self.length_um <= 0:
            raise ValueError("length must be positive")
        if len(self.spacings_um) != self.wire_count - 1:
            raise ValueError(
                f"need {self.wire_count - 1} spacings, got {len(self.spacings_um)}"
            )
        if any(s <= 0 for s in self.spacings_um):
            raise ValueError("spacings must be positive")

    @classmethod
    def uniform(
        cls, wire_count: int, length_um: float = 2000.0, spacing_um: float = 0.5
    ) -> "BusGeometry":
        """A bus with equal spacing in every gap."""
        return cls(
            wire_count=wire_count,
            length_um=length_um,
            spacings_um=tuple([spacing_um] * (wire_count - 1)),
        )

    @classmethod
    def edge_relaxed(
        cls,
        wire_count: int,
        length_um: float = 2000.0,
        spacing_um: float = 0.5,
        edge_factors: Sequence[float] = (3.0, 2.0),
    ) -> "BusGeometry":
        """A bus whose outer gaps are wider by the given factors.

        ``edge_factors[0]`` scales the outermost gap on each side,
        ``edge_factors[1]`` the next one in, and so on.  The default
        ``(3.0, 2.0)`` reproduces the paper's observation that the two
        outermost lines on each side of the address bus never become
        defective under the Gaussian perturbation model.
        """
        gaps = [spacing_um] * (wire_count - 1)
        for depth, factor in enumerate(edge_factors):
            if factor <= 0:
                raise ValueError("edge factors must be positive")
            if depth < len(gaps):
                gaps[depth] = spacing_um * factor
                gaps[len(gaps) - 1 - depth] = spacing_um * factor
        return cls(
            wire_count=wire_count, length_um=length_um, spacings_um=tuple(gaps)
        )
