"""Defect library generation (Fig. 10 of the paper).

The paper builds its defect library by randomly perturbing the nominal
coupling capacitances according to a Gaussian defect distribution with a
3-sigma point of 150 % variation, then keeping a perturbation as a defect
iff it pushes the net coupling capacitance of at least one interconnect
above the threshold ``Cth`` (which corresponds to the acceptable delay /
glitch budget — see :mod:`repro.xtalk.calibration`).  1000 defects were
generated per bus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.xtalk.calibration import Calibration
from repro.xtalk.capacitance import CapacitanceSet

#: The paper's "3-delta point of 150%" Gaussian: sigma = 50 % variation.
DEFAULT_SIGMA = 0.5
#: Physical floor: a coupling capacitor cannot shrink below this fraction
#: of nominal (the wires still run in parallel).
MIN_FACTOR = 0.02


@dataclass(frozen=True)
class Defect:
    """One library entry: a perturbed capacitance set that violates Cth.

    Attributes
    ----------
    index:
        Library position (stable across runs with the same seed).
    caps:
        The perturbed capacitance parameter set.
    defective_wires:
        Wires whose net coupling exceeds the threshold (0-based).
    severity:
        Worst ``net coupling / cth`` ratio across wires (> 1 by
        construction).
    """

    index: int
    caps: CapacitanceSet
    defective_wires: Tuple[int, ...]
    severity: float


@dataclass
class DefectLibrary:
    """A collection of defects for one bus plus generation statistics."""

    nominal: CapacitanceSet
    calibration: Calibration
    sigma: float
    seed: Optional[int]
    defects: List[Defect] = field(default_factory=list)
    attempts: int = 0

    def __len__(self) -> int:
        return len(self.defects)

    def __iter__(self) -> Iterator[Defect]:
        return iter(self.defects)

    def __getitem__(self, index: int) -> Defect:
        return self.defects[index]

    @property
    def acceptance_rate(self) -> float:
        """Fraction of random perturbations that qualified as defects."""
        if self.attempts == 0:
            return 0.0
        return len(self.defects) / self.attempts

    def per_wire_incidence(self) -> Dict[int, int]:
        """How many defects render each wire defective.

        This is the distribution behind Fig. 11's shape: side wires have
        smaller net coupling, so (almost) no perturbation is large enough
        to push them over ``Cth``.
        """
        counts = {i: 0 for i in range(self.nominal.wire_count)}
        for defect in self.defects:
            for wire in defect.defective_wires:
                counts[wire] += 1
        return counts

    def severity_histogram(self, bins: int = 10) -> List[Tuple[float, int]]:
        """``(bin lower edge, count)`` histogram of defect severities."""
        if not self.defects:
            return []
        severities = [d.severity for d in self.defects]
        low, high = min(severities), max(severities)
        if high == low:
            return [(low, len(severities))]
        width = (high - low) / bins
        counts = [0] * bins
        for severity in severities:
            slot = min(int((severity - low) / width), bins - 1)
            counts[slot] += 1
        return [(low + i * width, counts[i]) for i in range(bins)]


def _perturbation_factors(
    nominal: CapacitanceSet, rng: random.Random, sigma: float
) -> List[List[float]]:
    """One symmetric matrix of Gaussian multiplicative factors."""
    n = nominal.wire_count
    factors = [[1.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if nominal.coupling[i][j] > 0.0:
                factor = max(MIN_FACTOR, rng.gauss(1.0, sigma))
                factors[i][j] = factor
                factors[j][i] = factor
    return factors


def generate_defect_library(
    nominal: CapacitanceSet,
    calibration: Calibration,
    count: int = 1000,
    sigma: float = DEFAULT_SIGMA,
    seed: Optional[int] = 2001,
    max_attempts: Optional[int] = None,
) -> DefectLibrary:
    """Generate ``count`` defects for the bus described by ``nominal``.

    Perturbations that do not push any wire's net coupling above
    ``calibration.cth`` are discarded (they are process variation within
    budget, not defects).  ``max_attempts`` bounds the sampling loop; the
    default allows 1000 attempts per requested defect.

    Raises
    ------
    RuntimeError
        If the attempt budget is exhausted first (e.g. a far-too-high
        safety factor).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    rng = random.Random(seed)
    budget = max_attempts if max_attempts is not None else 1000 * count
    library = DefectLibrary(
        nominal=nominal, calibration=calibration, sigma=sigma, seed=seed
    )
    while len(library.defects) < count:
        if library.attempts >= budget:
            raise RuntimeError(
                f"defect generation exhausted {budget} attempts "
                f"({len(library.defects)}/{count} defects found); "
                "lower the safety factor or raise sigma"
            )
        library.attempts += 1
        factors = _perturbation_factors(nominal, rng, sigma)
        perturbed = nominal.perturbed(factors)
        wires = calibration.defective_wires(perturbed)
        if not wires:
            continue
        severity = max(perturbed.net_couplings()) / calibration.cth
        library.defects.append(
            Defect(
                index=len(library.defects),
                caps=perturbed,
                defective_wires=wires,
                severity=severity,
            )
        )
    return library
