"""Electrical parameters of the bus drivers and receivers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.bus import BusDirection

#: ln(2) — converts an RC time constant into a 50 %-crossing delay.
LN2 = 0.6931471805599453


@dataclass(frozen=True)
class ElectricalParams:
    """Driver/receiver electrical characteristics.

    Attributes
    ----------
    vdd:
        Supply voltage in volts (1.8 V, a late-1990s 0.18/0.25 um supply).
    r_driver_cpu / r_driver_mem:
        Effective driver output resistance (ohms) when the CPU
        respectively the memory drives the bus.  Crosstalk severity differs
        with the driving direction (the paper's reason for testing the
        bidirectional data bus in both directions); asymmetric values model
        that.
    glitch_attenuation:
        First-order factor (< 1) modelling the victim driver fighting the
        coupled charge back; scales the charge-sharing glitch amplitude.
    """

    vdd: float = 1.8
    r_driver_cpu: float = 1000.0
    r_driver_mem: float = 1000.0
    glitch_attenuation: float = 0.55

    def __post_init__(self):
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.r_driver_cpu <= 0 or self.r_driver_mem <= 0:
            raise ValueError("driver resistances must be positive")
        if not 0 < self.glitch_attenuation <= 1:
            raise ValueError("glitch_attenuation must be in (0, 1]")

    def r_for(self, direction: BusDirection) -> float:
        """Driver resistance for a transaction in the given direction."""
        if direction is BusDirection.CPU_TO_MEM:
            return self.r_driver_cpu
        return self.r_driver_mem
