"""Electrical parameters of the bus drivers and receivers.

Parameter files (the paper's "parameter file" inputs) are small JSON
objects; :func:`parse_params` / :func:`load_params` read them with a
content- respectively stat-keyed memo, so campaign worker processes that
reference the same file repeatedly parse and validate it exactly once
per interpreter.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, fields
from typing import Dict, Tuple, Union

from repro.soc.bus import BusDirection

#: ln(2) — converts an RC time constant into a 50 %-crossing delay.
LN2 = 0.6931471805599453


@dataclass(frozen=True)
class ElectricalParams:
    """Driver/receiver electrical characteristics.

    Attributes
    ----------
    vdd:
        Supply voltage in volts (1.8 V, a late-1990s 0.18/0.25 um supply).
    r_driver_cpu / r_driver_mem:
        Effective driver output resistance (ohms) when the CPU
        respectively the memory drives the bus.  Crosstalk severity differs
        with the driving direction (the paper's reason for testing the
        bidirectional data bus in both directions); asymmetric values model
        that.
    glitch_attenuation:
        First-order factor (< 1) modelling the victim driver fighting the
        coupled charge back; scales the charge-sharing glitch amplitude.
    """

    vdd: float = 1.8
    r_driver_cpu: float = 1000.0
    r_driver_mem: float = 1000.0
    glitch_attenuation: float = 0.55

    def __post_init__(self):
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.r_driver_cpu <= 0 or self.r_driver_mem <= 0:
            raise ValueError("driver resistances must be positive")
        if not 0 < self.glitch_attenuation <= 1:
            raise ValueError("glitch_attenuation must be in (0, 1]")

    def r_for(self, direction: BusDirection) -> float:
        """Driver resistance for a transaction in the given direction."""
        if direction is BusDirection.CPU_TO_MEM:
            return self.r_driver_cpu
        return self.r_driver_mem


_FIELD_NAMES = frozenset(f.name for f in fields(ElectricalParams))

_parse_memo: Dict[str, ElectricalParams] = {}
_load_memo: Dict[Tuple[str, int, int], ElectricalParams] = {}


def parse_params(text: str) -> ElectricalParams:
    """Parse a JSON parameter file body into :class:`ElectricalParams`.

    The document must be a JSON object whose keys are a subset of the
    dataclass fields (``vdd``, ``r_driver_cpu``, ``r_driver_mem``,
    ``glitch_attenuation``); omitted keys take the dataclass defaults.
    Identical texts return the *same* (immutable) instance.
    """
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    cached = _parse_memo.get(digest)
    if cached is not None:
        return cached
    document = json.loads(text)
    if not isinstance(document, dict):
        raise ValueError("parameter file must be a JSON object")
    unknown = set(document) - _FIELD_NAMES
    if unknown:
        raise ValueError(
            f"unknown parameter keys: {', '.join(sorted(unknown))}"
        )
    for key, value in document.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"parameter {key!r} must be a number")
    params = ElectricalParams(**{k: float(v) for k, v in document.items()})
    _parse_memo[digest] = params
    return params


def load_params(path: Union[str, "os.PathLike[str]"]) -> ElectricalParams:
    """Load a JSON parameter file, memoized on ``(realpath, mtime, size)``.

    Re-reading an unchanged file returns the cached instance without
    touching its contents; editing the file (which changes its mtime or
    size) invalidates the memo entry.
    """
    real = os.path.realpath(os.fspath(path))
    stat = os.stat(real)
    key = (real, stat.st_mtime_ns, stat.st_size)
    cached = _load_memo.get(key)
    if cached is not None:
        return cached
    with open(real, "r", encoding="utf-8") as stream:
        params = parse_params(stream.read())
    _load_memo[key] = params
    return params
