"""The shared pure transition kernel of the crosstalk error model.

One :class:`TransitionKernel` holds the precomputed capacitance-domain
thresholds for one (possibly defect-perturbed) capacitance set and
answers, for a single bus transition ``previous -> driven``, which wires
the receiver samples wrongly:

* a *stable* wire flips if the net signed coupling injected by switching
  neighbours exceeds the glitch threshold (positive glitch on a stable-0
  wire, negative on a stable-1 wire);
* a *switching* wire is sampled at its old value if its Miller-weighted
  coupling load exceeds the per-direction delay slack.

The kernel is **pure**: :meth:`decide`, :meth:`corrupts` and
:meth:`explain` depend only on the constructor arguments and their
parameters, and mutate nothing.  This is what lets the same decision
logic back three consumers without drift:

* :class:`~repro.xtalk.error_model.CrosstalkErrorModel` — the bus
  corruption hook (adds tallies around :meth:`decide`);
* ``CrosstalkErrorModel.explain`` — wire-by-wire diagnostics
  (:meth:`explain`), previously a copy of the Miller-weighting loop;
* :class:`~repro.xtalk.screen.TraceScreen` — the whole-library trace
  screen, whose pure-Python backend calls :meth:`corrupts` directly and
  whose vectorized backend re-derives the same thresholds in bulk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.soc.bus import BusDirection
from repro.xtalk.calibration import Calibration
from repro.xtalk.capacitance import CapacitanceSet
from repro.xtalk.params import LN2, ElectricalParams


@dataclass(frozen=True)
class WireError:
    """Diagnostic record for one corrupted wire in one transition."""

    wire: int
    effect: str  # "positive_glitch", "negative_glitch", "delay"
    magnitude: float  # coupled capacitance (fF) that caused the error
    threshold: float  # the threshold it exceeded (fF)


class TransitionKernel:
    """Per-wire corruption decision for one capacitance set.

    Parameters
    ----------
    caps:
        The (possibly defect-perturbed) capacitance parameter set.
    params:
        Driver/receiver electrical parameters.
    calibration:
        Thresholds; derive them from the *nominal* capacitances so that a
        perturbed bus is judged against the design's margins, not its own.
    """

    __slots__ = ("width", "neighbours", "glitch_threshold", "delay_slack")

    def __init__(
        self,
        caps: CapacitanceSet,
        params: ElectricalParams,
        calibration: Calibration,
    ):
        self.width = caps.wire_count
        # Neighbour lists: (other wire index, other wire bit mask, coupling).
        self.neighbours: List[Tuple[Tuple[int, int, float], ...]] = [
            tuple((j, 1 << j, cc) for j, cc in caps.neighbours(i))
            for i in range(self.width)
        ]
        # Glitch: error iff |sum of signed switching coupling| exceeds
        #   v_th * (Cg + Cnet) / (alpha * Vdd)   [capacitance domain]
        scale = params.glitch_attenuation * params.vdd
        self.glitch_threshold = [
            calibration.v_th * (caps.ground[i] + caps.net_coupling(i)) / scale
            for i in range(self.width)
        ]
        # Delay: error iff Cg + sum(mf * Cc) exceeds
        #   t_margin / (ln2 * R * 1e-15)          [capacitance domain]
        self.delay_slack: Dict[BusDirection, List[float]] = {}
        for direction in BusDirection:
            margin_cap = calibration.margin_for(direction) / (
                LN2 * params.r_for(direction) * 1e-15
            )
            self.delay_slack[direction] = [
                margin_cap - caps.ground[i] for i in range(self.width)
            ]

    # -- the hot path -------------------------------------------------------

    def decide(
        self, previous: int, driven: int, direction: BusDirection
    ) -> Tuple[int, int, int]:
        """Evaluate one transition.

        Returns ``(received, glitch_flips, delay_flips)``: the word the
        receiver samples plus how many wires each error mechanism flipped.
        """
        if previous == driven:
            return driven, 0, 0
        changed = previous ^ driven
        received = driven
        glitch_flips = 0
        delay_flips = 0
        neighbours = self.neighbours
        delay_slack = self.delay_slack[direction]
        glitch_threshold = self.glitch_threshold
        for i in range(self.width):
            bit = 1 << i
            if changed & bit:
                # Switching victim: Miller-weighted coupling load.
                load = 0.0
                rising = driven & bit
                for j, bitj, cc in neighbours[i]:
                    if changed & bitj:
                        if bool(driven & bitj) != bool(rising):
                            load += cc + cc  # opposite transition: 2x
                        # same-direction transition: 0x
                    else:
                        load += cc  # quiet aggressor: 1x
                if load > delay_slack[i]:
                    # Receiver samples the old (pre-transition) value.
                    received = (received & ~bit) | (previous & bit)
                    delay_flips += 1
            else:
                # Stable victim: signed injected coupling.
                injected = 0.0
                for j, bitj, cc in neighbours[i]:
                    if changed & bitj:
                        if driven & bitj:
                            injected += cc
                        else:
                            injected -= cc
                if driven & bit:
                    if -injected > glitch_threshold[i]:
                        received &= ~bit  # negative glitch on stable 1
                        glitch_flips += 1
                else:
                    if injected > glitch_threshold[i]:
                        received |= bit  # positive glitch on stable 0
                        glitch_flips += 1
        return received, glitch_flips, delay_flips

    def corrupts(
        self, previous: int, driven: int, direction: BusDirection
    ) -> bool:
        """True iff the transition corrupts at least one wire.

        Early-exit variant of :meth:`decide` for screening: returns as
        soon as the first wire error is found.
        """
        if previous == driven:
            return False
        changed = previous ^ driven
        neighbours = self.neighbours
        delay_slack = self.delay_slack[direction]
        glitch_threshold = self.glitch_threshold
        for i in range(self.width):
            bit = 1 << i
            if changed & bit:
                load = 0.0
                rising = driven & bit
                for j, bitj, cc in neighbours[i]:
                    if changed & bitj:
                        if bool(driven & bitj) != bool(rising):
                            load += cc + cc
                    else:
                        load += cc
                if load > delay_slack[i]:
                    return True
            else:
                injected = 0.0
                for j, bitj, cc in neighbours[i]:
                    if changed & bitj:
                        if driven & bitj:
                            injected += cc
                        else:
                            injected -= cc
                if driven & bit:
                    if -injected > glitch_threshold[i]:
                        return True
                elif injected > glitch_threshold[i]:
                    return True
        return False

    # -- diagnostics --------------------------------------------------------

    def explain(
        self, previous: int, driven: int, direction: BusDirection
    ) -> List[WireError]:
        """Describe every wire error the transition would produce.

        The decisions agree with :meth:`decide` wire for wire: a
        :class:`WireError` is reported for wire *i* exactly when
        :meth:`decide` flips it.
        """
        errors: List[WireError] = []
        if previous == driven:
            return errors
        changed = previous ^ driven
        for i in range(self.width):
            bit = 1 << i
            if changed & bit:
                load = 0.0
                rising = driven & bit
                for j, bitj, cc in self.neighbours[i]:
                    if changed & bitj:
                        if bool(driven & bitj) != bool(rising):
                            load += cc + cc
                    else:
                        load += cc
                slack = self.delay_slack[direction][i]
                if load > slack:
                    errors.append(WireError(i, "delay", load, slack))
            else:
                injected = 0.0
                for j, bitj, cc in self.neighbours[i]:
                    if changed & bitj:
                        if driven & bitj:
                            injected += cc
                        else:
                            injected -= cc
                threshold = self.glitch_threshold[i]
                if driven & bit:
                    if -injected > threshold:
                        errors.append(
                            WireError(i, "negative_glitch", -injected, threshold)
                        )
                elif injected > threshold:
                    errors.append(
                        WireError(i, "positive_glitch", injected, threshold)
                    )
        return errors
