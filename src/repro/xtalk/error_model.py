"""High-level crosstalk error model (after Bai & Dey, VTS 2001).

Given the capacitance parameter set of a bus and a transition
``previous -> driven``, the model decides, wire by wire, whether the
receiving end samples a corrupted word:

* a *stable* wire flips if the net coupled charge from switching
  neighbours produces a glitch beyond the receiver threshold
  (positive glitch on a stable-0 wire, negative on a stable-1 wire);
* a *switching* wire is sampled at its old value if its Miller-weighted
  RC delay exceeds the settling margin.

The model is installed as a :class:`~repro.soc.bus.Bus` corruption hook,
so during defect simulation **every** bus transition of the executing
self-test program passes through it — including instruction fetches.
This is what lets the simulation capture fault masking and secondary
corruption effects, as the paper's HDL environment does.

The per-wire decision itself lives in the shared pure
:class:`~repro.xtalk.kernel.TransitionKernel` (all thresholds are
precomputed into the capacitance domain at construction time, keeping
the per-transition cost low — the defect simulator calls this hook
millions of times).  The model adds the stateful parts: native tallies
and the hook signature.  :class:`~repro.xtalk.screen.TraceScreen` uses
the same kernel to pre-screen whole defect libraries against a golden
transaction trace without simulating anything.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.soc.bus import BusDirection
from repro.xtalk.calibration import Calibration, calibrate
from repro.xtalk.capacitance import CapacitanceSet
from repro.xtalk.kernel import TransitionKernel, WireError
from repro.xtalk.params import ElectricalParams

__all__ = ["CrosstalkErrorModel", "WireError"]


class CrosstalkErrorModel:
    """Receiver-side corruption of bus transitions for one capacitance set.

    Parameters
    ----------
    caps:
        The (possibly defect-perturbed) capacitance parameter set.
    params:
        Driver/receiver electrical parameters.
    calibration:
        Thresholds; derive them from the *nominal* capacitances so that a
        perturbed bus is judged against the design's margins, not its own.
    kernel:
        Optional prebuilt :class:`TransitionKernel` for the same
        ``(caps, params, calibration)`` triple; avoids re-deriving the
        thresholds when the caller (e.g. the screened engine) already
        built one.
    """

    def __init__(
        self,
        caps: CapacitanceSet,
        params: ElectricalParams,
        calibration: Calibration,
        kernel: Optional[TransitionKernel] = None,
    ):
        self.caps = caps
        self.params = params
        self.calibration = calibration
        self.kernel = kernel or TransitionKernel(caps, params, calibration)
        self.width = caps.wire_count
        # Native tallies (plain int increments, always on): how often the
        # model ran and what it decided.  The observability layer snapshots
        # these per defect replay (see repro.core.coverage), so enabling
        # telemetry adds no per-transition work here.
        self.invocations = 0
        self.corruptions = 0
        self.glitch_errors = 0
        self.delay_errors = 0
        self._decide = self.kernel.decide

    @classmethod
    def nominal(
        cls,
        caps: CapacitanceSet,
        params: ElectricalParams,
        safety_factor: float = 1.25,
    ) -> "CrosstalkErrorModel":
        """Model for a defect-free bus, with self-derived calibration."""
        return cls(caps, params, calibrate(caps, params, safety_factor))

    # -- the hot path -------------------------------------------------------

    def corrupt(self, previous: int, driven: int, direction: BusDirection) -> int:
        """Return the word the receiver samples for this transition.

        Matches the :class:`~repro.soc.bus.Bus` corruption-hook signature.
        """
        self.invocations += 1
        if previous == driven:
            return driven
        received, glitch_flips, delay_flips = self._decide(
            previous, driven, direction
        )
        if received != driven:
            self.corruptions += 1
            self.glitch_errors += glitch_flips
            self.delay_errors += delay_flips
        return received

    def stats(self) -> Dict[str, int]:
        """The native tallies, keyed by metric suffix."""
        return {
            "invocations": self.invocations,
            "corruptions": self.corruptions,
            "glitch_errors": self.glitch_errors,
            "delay_errors": self.delay_errors,
        }

    # -- diagnostics ----------------------------------------------------------

    def explain(
        self, previous: int, driven: int, direction: BusDirection
    ) -> List[WireError]:
        """Describe every wire error the transition would produce.

        Shares the Miller-weighting logic with :meth:`corrupt` through
        the kernel, so a :class:`WireError` is reported for a wire
        exactly when :meth:`corrupt` flips it.
        """
        return self.kernel.explain(previous, driven, direction)

    def would_corrupt(
        self, previous: int, driven: int, direction: BusDirection
    ) -> bool:
        """True if the transition is corrupted in the given direction."""
        return self.corrupt(previous, driven, direction) != driven
