"""High-level crosstalk error model (after Bai & Dey, VTS 2001).

Given the capacitance parameter set of a bus and a transition
``previous -> driven``, the model decides, wire by wire, whether the
receiving end samples a corrupted word:

* a *stable* wire flips if the net coupled charge from switching
  neighbours produces a glitch beyond the receiver threshold
  (positive glitch on a stable-0 wire, negative on a stable-1 wire);
* a *switching* wire is sampled at its old value if its Miller-weighted
  RC delay exceeds the settling margin.

The model is installed as a :class:`~repro.soc.bus.Bus` corruption hook,
so during defect simulation **every** bus transition of the executing
self-test program passes through it — including instruction fetches.
This is what lets the simulation capture fault masking and secondary
corruption effects, as the paper's HDL environment does.

All per-wire decisions are precomputed into capacitance-domain thresholds
at construction time, keeping the per-transition cost low (the defect
simulator calls this hook millions of times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.soc.bus import BusDirection
from repro.xtalk.calibration import Calibration, calibrate
from repro.xtalk.capacitance import CapacitanceSet
from repro.xtalk.params import LN2, ElectricalParams


@dataclass(frozen=True)
class WireError:
    """Diagnostic record for one corrupted wire in one transition."""

    wire: int
    effect: str  # "positive_glitch", "negative_glitch", "delay"
    magnitude: float  # coupled capacitance (fF) that caused the error
    threshold: float  # the threshold it exceeded (fF)


class CrosstalkErrorModel:
    """Receiver-side corruption of bus transitions for one capacitance set.

    Parameters
    ----------
    caps:
        The (possibly defect-perturbed) capacitance parameter set.
    params:
        Driver/receiver electrical parameters.
    calibration:
        Thresholds; derive them from the *nominal* capacitances so that a
        perturbed bus is judged against the design's margins, not its own.
    """

    def __init__(
        self,
        caps: CapacitanceSet,
        params: ElectricalParams,
        calibration: Calibration,
    ):
        self.caps = caps
        self.params = params
        self.calibration = calibration
        self.width = caps.wire_count
        # Native tallies (plain int increments, always on): how often the
        # model ran and what it decided.  The observability layer snapshots
        # these per defect replay (see repro.core.coverage), so enabling
        # telemetry adds no per-transition work here.
        self.invocations = 0
        self.corruptions = 0
        self.glitch_errors = 0
        self.delay_errors = 0
        # Neighbour lists: (other wire index, other wire bit mask, coupling).
        self._neighbours: List[Tuple[Tuple[int, int, float], ...]] = [
            tuple((j, 1 << j, cc) for j, cc in caps.neighbours(i))
            for i in range(self.width)
        ]
        # Glitch: error iff |sum of signed switching coupling| exceeds
        #   v_th * (Cg + Cnet) / (alpha * Vdd)   [capacitance domain]
        scale = params.glitch_attenuation * params.vdd
        self._glitch_threshold = [
            calibration.v_th * (caps.ground[i] + caps.net_coupling(i)) / scale
            for i in range(self.width)
        ]
        # Delay: error iff Cg + sum(mf * Cc) exceeds
        #   t_margin / (ln2 * R * 1e-15)          [capacitance domain]
        self._delay_slack: Dict[BusDirection, List[float]] = {}
        for direction in BusDirection:
            margin_cap = calibration.margin_for(direction) / (
                LN2 * params.r_for(direction) * 1e-15
            )
            self._delay_slack[direction] = [
                margin_cap - caps.ground[i] for i in range(self.width)
            ]

    @classmethod
    def nominal(
        cls,
        caps: CapacitanceSet,
        params: ElectricalParams,
        safety_factor: float = 1.25,
    ) -> "CrosstalkErrorModel":
        """Model for a defect-free bus, with self-derived calibration."""
        return cls(caps, params, calibrate(caps, params, safety_factor))

    # -- the hot path -------------------------------------------------------

    def corrupt(self, previous: int, driven: int, direction: BusDirection) -> int:
        """Return the word the receiver samples for this transition.

        Matches the :class:`~repro.soc.bus.Bus` corruption-hook signature.
        """
        self.invocations += 1
        if previous == driven:
            return driven
        changed = previous ^ driven
        received = driven
        neighbours = self._neighbours
        delay_slack = self._delay_slack[direction]
        glitch_threshold = self._glitch_threshold
        for i in range(self.width):
            bit = 1 << i
            if changed & bit:
                # Switching victim: Miller-weighted coupling load.
                load = 0.0
                rising = driven & bit
                for j, bitj, cc in neighbours[i]:
                    if changed & bitj:
                        if bool(driven & bitj) != bool(rising):
                            load += cc + cc  # opposite transition: 2x
                        # same-direction transition: 0x
                    else:
                        load += cc  # quiet aggressor: 1x
                if load > delay_slack[i]:
                    # Receiver samples the old (pre-transition) value.
                    received = (received & ~bit) | (previous & bit)
                    self.delay_errors += 1
            else:
                # Stable victim: signed injected coupling.
                injected = 0.0
                for j, bitj, cc in neighbours[i]:
                    if changed & bitj:
                        if driven & bitj:
                            injected += cc
                        else:
                            injected -= cc
                if driven & bit:
                    if -injected > glitch_threshold[i]:
                        received &= ~bit  # negative glitch on stable 1
                        self.glitch_errors += 1
                else:
                    if injected > glitch_threshold[i]:
                        received |= bit  # positive glitch on stable 0
                        self.glitch_errors += 1
        if received != driven:
            self.corruptions += 1
        return received

    def stats(self) -> Dict[str, int]:
        """The native tallies, keyed by metric suffix."""
        return {
            "invocations": self.invocations,
            "corruptions": self.corruptions,
            "glitch_errors": self.glitch_errors,
            "delay_errors": self.delay_errors,
        }

    # -- diagnostics ----------------------------------------------------------

    def explain(
        self, previous: int, driven: int, direction: BusDirection
    ) -> List[WireError]:
        """Describe every wire error the transition would produce."""
        errors: List[WireError] = []
        if previous == driven:
            return errors
        changed = previous ^ driven
        for i in range(self.width):
            bit = 1 << i
            if changed & bit:
                load = 0.0
                for j, bitj, cc in self._neighbours[i]:
                    if changed & bitj:
                        if bool(driven & bitj) != bool(driven & bit):
                            load += 2.0 * cc
                    else:
                        load += cc
                slack = self._delay_slack[direction][i]
                if load > slack:
                    errors.append(WireError(i, "delay", load, slack))
            else:
                injected = 0.0
                for j, bitj, cc in self._neighbours[i]:
                    if changed & bitj:
                        injected += cc if (driven & bitj) else -cc
                threshold = self._glitch_threshold[i]
                if driven & bit and -injected > threshold:
                    errors.append(WireError(i, "negative_glitch", -injected, threshold))
                elif not (driven & bit) and injected > threshold:
                    errors.append(WireError(i, "positive_glitch", injected, threshold))
        return errors

    def would_corrupt(
        self, previous: int, driven: int, direction: BusDirection
    ) -> bool:
        """True if the transition is corrupted in the given direction."""
        return self.corrupt(previous, driven, direction) != driven
