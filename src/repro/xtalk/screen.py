"""Whole-library trace screening against a golden transaction trace.

The defect simulation invariant this module exploits: the cycle-accurate
system is deterministic and the error model is a pure function of the
transition ``(previous, driven, direction)``.  By induction over the
transaction stream, a defective run is **cycle-identical** to the
fault-free golden run up to (and excluding) the first golden transaction
whose transition the defect's kernel corrupts.  Therefore:

* a defect that corrupts *no* transaction of the golden trace provably
  behaves identically to the fault-free run — no simulation needed;
* a defect whose first corrupted transaction is at cycle *c* can be
  replayed from any fault-free checkpoint taken before *c* (see
  :mod:`repro.core.engine`).

A :class:`TraceScreen` evaluates a whole
:class:`~repro.xtalk.defects.DefectLibrary` against one captured trace
in a single pass and returns, per defect, the index/cycle of its first
corrupted transaction or a ``clean`` verdict.

Two backends:

``"numpy"``
    Vectorized: unique transitions are reduced to aggressor weight
    vectors once; per-defect thresholds (which only depend on each
    defect's capacitance matrix) are computed in bulk; one batched
    matrix product classifies every ``(defect, transition)`` pair.
    Comparisons use a small conservative epsilon band: a borderline
    margin is treated as *corrupting*, so a float summation-order
    difference against the scalar kernel can only cause a redundant
    replay, never a missed one.  Verdicts therefore stay safe for the
    screened engine's exactness contract.

``"python"``
    Pure-Python fallback: one shared-:class:`TransitionKernel` scan per
    defect over the deduplicated transitions, in first-occurrence order
    with early exit.  Bit-identical to the error model by construction.

``"auto"`` picks numpy when it is importable, else the fallback.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.soc.bus import BusDirection
from repro.xtalk.calibration import Calibration
from repro.xtalk.capacitance import CapacitanceSet
from repro.xtalk.defects import Defect
from repro.xtalk.kernel import TransitionKernel
from repro.xtalk.params import LN2, ElectricalParams

try:  # numpy is an install dependency, but the screen must not require it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend="python"
    _np = None

BACKENDS = ("auto", "numpy", "python")

#: Relative half-width of the borderline band around every threshold
#: comparison in the vectorized backend.  float64 dot products over a
#: dozen terms are accurate to ~1e-15 relative, so 1e-9 is a generous
#: safety margin while keeping spurious replays to (essentially) zero.
EPSILON = 1e-9


def have_numpy() -> bool:
    """True when the vectorized paths of this module are available."""
    return _np is not None


#: ``CapacitanceSet -> (coupling [n, n], ground [n])`` float64 arrays.
#: Campaigns evaluate the same defect library against many programs, so
#: the list-of-lists -> ndarray conversion is paid once per defect, not
#: once per (defect, program).  Weak keys: entries die with their set.
_DEFECT_ARRAY_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _defect_arrays(caps: CapacitanceSet):
    cached = _DEFECT_ARRAY_CACHE.get(caps)
    if cached is None:
        cached = (
            _np.array(caps.coupling, dtype=_np.float64),
            _np.array(caps.ground, dtype=_np.float64),
        )
        _DEFECT_ARRAY_CACHE[caps] = cached
    return cached


def _margin_caps(params: ElectricalParams, calibration: Calibration):
    """Per-direction delay margins in the capacitance domain, ``[2]``
    (ordered CPU_TO_MEM, MEM_TO_CPU), plus the glitch scale factor."""
    margin_cap = _np.array(
        [
            calibration.margin_for(direction)
            / (LN2 * params.r_for(direction) * 1e-15)
            for direction in (
                BusDirection.CPU_TO_MEM,
                BusDirection.MEM_TO_CPU,
            )
        ]
    )
    scale = params.glitch_attenuation * params.vdd
    return margin_cap, scale


class _TransitionFeatures:
    """Per-transition aggressor geometry shared by the vectorized paths.

    For a list of transitions, precomputes the bit masks and Miller
    aggressor-weight matrices that :meth:`TransitionKernel.decide`
    derives per call: quiet aggressors weigh 1x, opposite-direction
    aggressors 2x, same-direction aggressors 0x, and stable victims see
    the signed injected charge of their switching neighbours.
    """

    __slots__ = (
        "bits",
        "switching_mask",
        "up_mask",
        "high_mask",
        "weights_rising",
        "weights_falling",
        "signed",
    )

    def __init__(self, previous, driven, width: int):
        np = _np
        bits = (1 << np.arange(width, dtype=np.int64))[None, :]
        changed = ((previous ^ driven)[:, None] & bits) != 0  # [T, n]
        high = (driven[:, None] & bits) != 0  # [T, n]
        switching = changed.astype(np.float64)
        stable = 1.0 - switching
        up = (changed & high).astype(np.float64)
        down = switching - up
        self.bits = bits
        self.switching_mask = changed
        self.up_mask = changed & high  # victims switching 0 -> 1
        self.high_mask = high
        self.weights_rising = stable + 2.0 * down
        self.weights_falling = stable + 2.0 * up
        self.signed = up - down  # injected-charge sign for stable victims


def _direction_indices(directions: Sequence[BusDirection]):
    return _np.array(
        [0 if d is BusDirection.CPU_TO_MEM else 1 for d in directions],
        dtype=_np.int64,
    )


class DecisionEvaluator:
    """Vectorized re-evaluation of recorded corruption decisions.

    Built by the screened engine's replay-dedup tier from the decisions
    one recorded replay pushed through its corruption hook:
    ``decisions`` is a sequence of ``((previous, driven, direction),
    received)`` entries (several runs' records may be concatenated — the
    caller keeps track of the slices).  :meth:`agreement` answers, for
    one capacitance set, on which entries the scalar
    :meth:`~repro.xtalk.kernel.TransitionKernel.decide` would sample the
    same received word — in a handful of matrix products instead of a
    Python loop per wire.

    Exactness: comparisons use the same conservative :data:`EPSILON`
    band as the library screen, but here a borderline entry cannot be
    resolved safely in either direction (agreement feeds outcome
    *reuse*, where both false positives and false negatives would be
    wrong), so :meth:`agreement` returns ``None`` and the caller falls
    back to the scalar kernel.
    """

    def __init__(
        self,
        decisions: Sequence[Tuple[Tuple[int, int, BusDirection], int]],
        params: ElectricalParams,
        calibration: Calibration,
        width: int,
    ):
        if _np is None:
            raise RuntimeError("DecisionEvaluator requires numpy")
        np = _np
        self.calibration = calibration
        transitions = [t for t, _ in decisions]
        self._previous = np.array([t[0] for t in transitions], dtype=np.int64)
        self._driven = np.array([t[1] for t in transitions], dtype=np.int64)
        self._direction_index = _direction_indices([t[2] for t in transitions])
        self._expected = np.array([r for _, r in decisions], dtype=np.int64)
        self._features = _TransitionFeatures(
            self._previous, self._driven, width
        )
        self._margin_cap, self._scale = _margin_caps(params, calibration)

    def __len__(self) -> int:
        return int(self._expected.shape[0])

    def agreement(self, caps: CapacitanceSet):
        """Per-entry agreement with the recorded received words.

        Returns a boolean array (one entry per decision), or ``None``
        when any comparison fell inside the borderline band and the
        scalar kernel must decide instead.
        """
        np = _np
        f = self._features
        coupling, ground = _defect_arrays(caps)
        glitch_threshold = (
            self.calibration.v_th * (ground + coupling.sum(axis=1))
            / self._scale
        )  # [n]
        slack = self._margin_cap[:, None] - ground[None, :]  # [2, n]

        # coupling is symmetric, so W @ coupling sums over neighbours j
        # of victim i exactly as the kernel's inner loop does.
        load_rising = f.weights_rising @ coupling  # [T, n]
        load_falling = f.weights_falling @ coupling
        injected = f.signed @ coupling

        load = np.where(f.up_mask, load_rising, load_falling)
        slack_t = slack[self._direction_index, :]  # [T, n]
        delay_margin = load - slack_t
        eps_delay = EPSILON * (np.abs(slack_t) + 1.0)

        polarity = np.where(f.high_mask, -injected, injected)
        glitch_margin = polarity - glitch_threshold[None, :]
        eps_glitch = EPSILON * (np.abs(glitch_threshold)[None, :] + 1.0)

        uncertain = (
            (f.switching_mask & (np.abs(delay_margin) <= eps_delay))
            | (~f.switching_mask & (np.abs(glitch_margin) <= eps_glitch))
        )
        if uncertain.any():
            return None
        delay_hit = f.switching_mask & (delay_margin > eps_delay)
        glitch_hit = ~f.switching_mask & (glitch_margin > eps_glitch)
        flips = np.where(delay_hit | glitch_hit, f.bits, 0).sum(axis=1)
        return (self._driven ^ flips) == self._expected


@dataclass(frozen=True)
class ScreenVerdict:
    """Screening result for one defect against one golden trace.

    ``clean`` means no transaction of the trace is corrupted — the
    defective run is provably identical to the fault-free run.
    Otherwise ``first_index``/``first_cycle`` locate the first corrupted
    transaction (trace position and bus cycle).
    """

    defect_index: int
    clean: bool
    first_index: Optional[int] = None
    first_cycle: Optional[int] = None


class TraceScreen:
    """Screens defect libraries against one golden transaction trace.

    Parameters
    ----------
    trace:
        The golden run's transactions of the bus under test, in order.
        Any objects with ``previous``, ``driven``, ``direction`` and
        ``cycle`` attributes work (e.g.
        :class:`~repro.soc.bus.BusTransaction`).
    params / calibration:
        Electrical parameters and nominal-bus thresholds, shared with
        the error model so screen and replay agree.
    backend:
        ``"auto"`` (default), ``"numpy"`` or ``"python"``.
    """

    def __init__(
        self,
        trace: Sequence[object],
        params: ElectricalParams,
        calibration: Calibration,
        backend: str = "auto",
    ):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if backend == "numpy" and _np is None:
            raise RuntimeError("numpy backend requested but numpy is missing")
        if backend == "auto":
            backend = "numpy" if _np is not None else "python"
        self.backend = backend
        self.params = params
        self.calibration = calibration
        self.trace_length = len(trace)
        # Deduplicate: identical transitions corrupt identically, so the
        # kernel only ever needs to judge each unique (previous, driven,
        # direction) triple once.  first_occurrence maps each unique
        # transition to its earliest trace position; the first corrupted
        # transaction of a defect is then the minimum first occurrence
        # over its corrupted uniques.
        uniques: List[Tuple[int, int, BusDirection]] = []
        first_occurrence: List[int] = []
        cycles: List[int] = []
        seen = {}
        for index, transaction in enumerate(trace):
            previous = transaction.previous
            driven = transaction.driven
            if previous == driven:
                continue  # no transition, can never corrupt
            key = (previous, driven, transaction.direction)
            if key in seen:
                continue
            seen[key] = len(uniques)
            uniques.append(key)
            first_occurrence.append(index)
            cycles.append(transaction.cycle)
        # Sorted by construction (first encounters are in trace order).
        self._uniques = uniques
        self._first_occurrence = first_occurrence
        self._cycles = cycles
        self._position_of = {
            index: position for position, index in enumerate(first_occurrence)
        }
        self._numpy_state = None

    @property
    def unique_transitions(self) -> int:
        """Distinct corruptible transitions in the trace."""
        return len(self._uniques)

    # -- public API ---------------------------------------------------------

    def screen(self, defects: Iterable[Defect]) -> List[ScreenVerdict]:
        """Evaluate every defect; one pass over the deduplicated trace."""
        defects = list(defects)
        if self.backend == "numpy":
            return self._screen_numpy(defects)
        return [self._screen_python(defect) for defect in defects]

    def screen_one(self, defect: Defect) -> ScreenVerdict:
        """Evaluate a single defect (scalar path regardless of backend)."""
        return self._screen_python(defect)

    # -- pure-Python backend ------------------------------------------------

    def _screen_python(
        self, defect: Defect, kernel: Optional[TransitionKernel] = None
    ) -> ScreenVerdict:
        kernel = kernel or TransitionKernel(
            defect.caps, self.params, self.calibration
        )
        corrupts = kernel.corrupts
        for position, (previous, driven, direction) in enumerate(self._uniques):
            if corrupts(previous, driven, direction):
                return ScreenVerdict(
                    defect_index=defect.index,
                    clean=False,
                    first_index=self._first_occurrence[position],
                    first_cycle=self._cycles[position],
                )
        return ScreenVerdict(defect_index=defect.index, clean=True)

    # -- vectorized backend -------------------------------------------------

    def _prepare_numpy(self, width: int):
        """Per-transition arrays, built once per screen instance."""
        np = _np
        previous = np.array([u[0] for u in self._uniques], dtype=np.int64)
        driven = np.array([u[1] for u in self._uniques], dtype=np.int64)
        direction_index = _direction_indices([u[2] for u in self._uniques])
        features = _TransitionFeatures(previous, driven, width)
        margin_cap, scale = _margin_caps(self.params, self.calibration)
        return direction_index, features, margin_cap, scale

    def _screen_numpy(self, defects: List[Defect]) -> List[ScreenVerdict]:
        np = _np
        if not defects:
            return []
        if not self._uniques:
            return [
                ScreenVerdict(defect_index=d.index, clean=True) for d in defects
            ]
        count = len(self._uniques)
        width = defects[0].caps.wire_count
        if self._numpy_state is None:
            self._numpy_state = self._prepare_numpy(width)
        direction_index, f, margin_cap, scale = self._numpy_state
        calibration = self.calibration

        first_occurrence = np.array(self._first_occurrence, dtype=np.int64)
        sentinel = self.trace_length  # larger than any real index

        # Chunk over defects to bound the [chunk, U, n] temporaries.
        chunk = max(1, int(8_000_000 // max(1, count * width)))
        verdicts: List[ScreenVerdict] = []
        for start in range(0, len(defects), chunk):
            batch = defects[start:start + chunk]
            arrays = [_defect_arrays(d.caps) for d in batch]
            coupling = np.stack([a[0] for a in arrays])  # [D, n, n]
            ground = np.stack([a[1] for a in arrays])  # [D, n]
            net = coupling.sum(axis=2)  # [D, n]
            glitch_threshold = (
                calibration.v_th * (ground + net) / scale
            )  # [D, n]
            slack = margin_cap[None, :, None] - ground[:, None, :]  # [D, 2, n]

            load_rising = np.einsum(
                "dij,uj->dui", coupling, f.weights_rising
            )  # [D, U, n]
            load_falling = np.einsum(
                "dij,uj->dui", coupling, f.weights_falling
            )
            injected = np.einsum("dij,uj->dui", coupling, f.signed)

            load = np.where(f.up_mask[None, :, :], load_rising, load_falling)
            slack_by_direction = slack[:, direction_index, :]  # [D, U, n]
            eps_delay = EPSILON * (np.abs(slack_by_direction) + 1.0)
            delay_hit = f.switching_mask[None, :, :] & (
                load - slack_by_direction > -eps_delay
            )

            polarity = np.where(f.high_mask[None, :, :], -injected, injected)
            threshold = glitch_threshold[:, None, :]
            eps_glitch = EPSILON * (np.abs(threshold) + 1.0)
            glitch_hit = (~f.switching_mask)[None, :, :] & (
                polarity - threshold > -eps_glitch
            )

            corrupted = (delay_hit | glitch_hit).any(axis=2)  # [D, U]
            first = np.where(
                corrupted, first_occurrence[None, :], sentinel
            ).min(axis=1)
            for defect, first_index in zip(batch, first.tolist()):
                if first_index >= sentinel:
                    verdicts.append(
                        ScreenVerdict(defect_index=defect.index, clean=True)
                    )
                else:
                    position = self._position_of[first_index]
                    verdicts.append(
                        ScreenVerdict(
                            defect_index=defect.index,
                            clean=False,
                            first_index=first_index,
                            first_cycle=self._cycles[position],
                        )
                    )
        return verdicts
