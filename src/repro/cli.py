"""Command-line interface: build, inspect and evaluate self-test programs.

Usage (installed as the ``repro-sbst`` entry point, or via
``python -m repro.cli``)::

    repro-sbst build --bus addr            # build + summarize a program
    repro-sbst build --bus data --listing  # with disassembly
    repro-sbst check --bus both --crosscheck  # static lint + crosscheck
    repro-sbst simulate --bus addr --defects 500
    repro-sbst fig11 --defects 400         # the paper's Fig. 11
    repro-sbst timing                      # Fig. 5 timing diagram
    repro-sbst profile examples --out run_report.json  # observed run
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import Callable, List, Optional

from repro import (
    CampaignSpec,
    DefectSimulator,
    SelfTestProgramBuilder,
    address_bus_line_coverage,
    default_bus_setup,
    run_campaign,
)
from repro.analysis.charts import coverage_chart
from repro.analysis.tables import format_table
from repro.core.signature import capture_golden
from repro.core.validate import validate_applied_tests
from repro.isa.disassembler import disassemble_image, format_listing


def _stderr_progress(label: str, every: int = 100) -> Callable[[int, int, int], None]:
    """A campaign progress callback that reports on **stderr** only.

    stdout is reserved for the command's machine-parseable output
    (``--json``, tables, charts); progress must never interleave with
    it — especially under parallel runs, where shard completions arrive
    at arbitrary times.
    """
    state = {"last": 0}

    def progress(done: int, total: int, detected: int) -> None:
        if done - state["last"] >= every or done >= total:
            state["last"] = done
            print(
                f"{label}: {done}/{total} defects, {detected} detected",
                file=sys.stderr, flush=True,
            )

    return progress


def _build_program(bus: str, builder: Optional[SelfTestProgramBuilder] = None):
    builder = builder or SelfTestProgramBuilder()
    if bus == "addr":
        return builder, builder.build_address_bus_program()
    if bus == "data":
        return builder, builder.build_data_bus_program()
    return builder, builder.build()


def cmd_build(args: argparse.Namespace) -> int:
    _, program = _build_program(args.bus)
    golden = capture_golden(program)
    validation = validate_applied_tests(program)
    total = len(program.applied) + len(program.skipped)
    rows = [
        ("tests applied", f"{len(program.applied)}/{total}"),
        ("tests skipped (conflicts)", str(len(program.skipped))),
        ("validated on bus", f"{len(validation.confirmed)}/{len(program.applied)}"),
        ("program size (bytes)", str(program.program_size)),
        ("fault-free cycles", str(golden.cycles)),
        ("entry point", f"{program.entry:#05x}"),
    ]
    print(format_table(("quantity", "value"), rows,
                       title=f"self-test program for bus: {args.bus}"))
    if args.listing:
        print()
        print(format_listing(
            disassemble_image(program.image, start=program.entry,
                              limit=args.listing_limit)
        ))
    if args.hex:
        from repro.soc.hexfile import dump_image

        with open(args.hex, "w") as stream:
            stream.write(dump_image(program.image))
        print(f"\nimage written to {args.hex} (Intel HEX, "
              f"{program.program_size} bytes)")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.static import analyze_program, crosscheck

    buses = ("addr", "data") if args.bus == "both" else (args.bus,)
    failed = False
    for bus in buses:
        _, program = _build_program(bus)
        report = analyze_program(program)
        print(report.render())
        if args.crosscheck:
            result = crosscheck(program, report.run)
            verdict = "agrees" if result.agreed else "DISAGREES"
            print(
                f"cross-check: static prediction {verdict} with the traced "
                f"run ({len(result.static.confirmed)} statically vs "
                f"{len(result.dynamic.confirmed)} dynamically confirmed)"
            )
            failed = failed or not result.agreed
        if len(buses) > 1:
            print()
        failed = failed or bool(report.lint.errors)
        if args.strict:
            failed = failed or bool(report.lint.warnings)
    return 1 if failed else 0


def _counter_value(snapshot: dict, name: str) -> int:
    metric = snapshot.get(name)
    return int(metric.get("value", 0)) if isinstance(metric, dict) else 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.obs import runtime as obs_runtime

    if args.resume and not args.journal:
        print("simulate: --resume requires --journal PATH", file=sys.stderr)
        return 2
    width = 12 if args.bus == "addr" else 8
    setup = default_bus_setup(width, defect_count=args.defects, seed=args.seed)
    _, program = _build_program(args.bus)
    spec = CampaignSpec(
        program=program,
        params=setup.params,
        calibration=setup.calibration,
        defects=tuple(setup.library),
        bus=args.bus,
        engine=args.engine,
        label=f"simulate:{args.bus}",
        seed=args.seed,
        core=args.core,
        use_cache=not args.no_cache,
    )
    # A metrics session makes the golden-cache behavior observable in
    # the output: warm runs report hits >= 1 and golden_cycles == 0.
    with obs_runtime.session(detail="metrics") as obs_session:
        result = run_campaign(
            spec,
            workers=args.workers,
            journal=args.journal,
            resume=args.resume,
            progress=_stderr_progress(f"simulate[{args.bus}]"),
        )
        metrics = obs_session.registry.snapshot()
    cache_stats = {
        name: _counter_value(metrics, f"coverage.engine.golden_cache.{name}")
        for name in ("hits", "misses", "stores", "corrupt_evicted")
    }
    golden_cycles = _counter_value(metrics, "coverage.engine.golden_cycles")
    total = len(result.outcomes)
    detected = result.detected
    if args.json:
        json.dump(
            {
                "bus": args.bus,
                "engine": args.engine,
                "core": args.core,
                "backend": result.backend,
                "workers": result.workers,
                "defects": total,
                "detected": detected,
                "timeouts": result.timeouts,
                "coverage": result.coverage(),
                "executed": result.executed,
                "resumed": result.resumed,
                "golden_cache": cache_stats,
                "golden_cycles": golden_cycles,
            },
            sys.stdout,
            sort_keys=True,
        )
        print()
        return 0
    rows = [
        ("engine", args.engine),
        ("cpu core", args.core),
        ("backend / workers", f"{result.backend} / {result.workers}"),
        ("defects simulated", str(total)),
        ("resumed from journal", str(result.resumed)),
        ("detected", f"{detected} ({100 * detected / total:.1f}%)"),
        ("of which hung the CPU", str(result.timeouts)),
        ("golden cycles simulated", str(golden_cycles)),
        ("golden cache hits/misses",
         f"{cache_stats['hits']} / {cache_stats['misses']}"),
    ]
    print(format_table(("quantity", "value"), rows,
                       title=f"defect simulation on bus: {args.bus}"))
    return 0


def cmd_fig11(args: argparse.Namespace) -> int:
    if args.resume and not args.journal:
        print("fig11: --resume requires --journal PATH", file=sys.stderr)
        return 2
    setup = default_bus_setup(12, defect_count=args.defects, seed=args.seed)
    builder, program = _build_program("addr")
    report = address_bus_line_coverage(
        setup.library, setup.params, setup.calibration,
        builder=builder, full_program=program, engine=args.engine,
        workers=args.workers, journal=args.journal, resume=args.resume,
        progress=_stderr_progress("fig11"), core=args.core,
    )
    print(coverage_chart(
        [(line.line, line.individual, line.cumulative)
         for line in report.lines]
    ))
    print(f"cumulative: {100 * report.cumulative_coverage:.1f}%   "
          f"full program: {100 * report.full_program_coverage:.1f}%")
    return 0


def cmd_timing(args: argparse.Namespace) -> int:
    from repro.isa.assembler import assemble
    from repro.soc import BusTracer, CpuMemorySystem
    from repro.soc.tracer import render_timing_diagram

    system = CpuMemorySystem()
    program = assemble(
        ".org 0x010\nlda 3:0x7F\nhalt: jmp halt\n.org 0x37F\n.byte 0xC3"
    )
    system.load_image(program.image)
    tracer = BusTracer([system.address_bus, system.data_bus])
    system.run(entry=0x010, max_cycles=64)
    print(render_timing_diagram(
        [t for t in tracer.transactions if t.cycle <= 8]
    ))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run a workload under full observability and emit a RunReport."""
    from repro import obs
    from repro.core.sessions import build_sessions
    from repro.soc.tracer import BusTracer
    from repro.core.signature import make_system

    width = 12 if args.bus == "addr" else 8
    config = {
        "target": args.target,
        "bus": args.bus,
        "defects": args.defects,
        "seed": args.seed,
        "detail": args.detail,
        "engine": args.engine,
        "workers": args.workers,
        "core": args.core,
    }
    results: dict = {}
    with obs.session(detail=args.detail) as obs_session:
        with obs.span("setup"):
            setup = default_bus_setup(
                width, defect_count=args.defects, seed=args.seed
            )
        with obs.span("build"):
            builder, program = _build_program(args.bus)
        with obs.span("golden"):
            golden = capture_golden(program)
            validation = validate_applied_tests(program)
        if args.trace:
            with obs.span("trace"):
                system = make_system(program)
                tracer = BusTracer(
                    [system.address_bus, system.data_bus],
                    max_transactions=args.max_trace,
                )
                system.run(entry=program.entry, max_cycles=golden.max_cycles)
                written = tracer.export_jsonl(args.trace)
            results["trace"] = {
                "path": args.trace,
                "transactions": written,
                "dropped": tracer.dropped,
            }
        with obs.span("campaign"):
            if args.target == "fig11":
                report = address_bus_line_coverage(
                    setup.library, setup.params, setup.calibration,
                    builder=builder, full_program=program,
                    engine=args.engine, workers=args.workers,
                    core=args.core,
                )
                results["coverage"] = {
                    "cumulative": report.cumulative_coverage,
                    "full_program": report.full_program_coverage,
                    "lines": [
                        {"line": line.line, "individual": line.individual,
                         "cumulative": line.cumulative}
                        for line in report.lines
                    ],
                }
            elif args.target == "sessions":
                plan = build_sessions(builder)
                results["sessions"] = {
                    "programs": plan.session_count,
                    "applied": plan.applied_total,
                    "unapplicable": len(plan.unapplicable),
                }
            else:  # "examples": the quickstart flow
                spec = CampaignSpec(
                    program=program,
                    params=setup.params,
                    calibration=setup.calibration,
                    defects=tuple(setup.library),
                    bus=args.bus,
                    engine=args.engine,
                    label="profile:examples",
                    seed=args.seed,
                    core=args.core,
                )
                result = run_campaign(spec, workers=args.workers)
                results["coverage"] = {
                    "defects": len(result.outcomes),
                    "detected": result.detected,
                    "timeouts": result.timeouts,
                    "coverage": result.coverage(),
                }
        results["program"] = {
            "applied": len(program.applied),
            "skipped": len(program.skipped),
            "size_bytes": program.program_size,
            "golden_cycles": golden.cycles,
            "validated": len(validation.confirmed),
        }
    run_report = obs.RunReport.from_observability(
        obs_session,
        kind="profile",
        label=f"profile:{args.target}",
        config=config,
        include_spans=args.detail == "full",
    )
    run_report.results = results
    errors = run_report.validation_errors()
    if errors:
        for error in errors:
            print(f"schema violation: {error}", file=sys.stderr)
        return 1
    run_report.save(args.out)
    print(run_report.summary())
    print(f"\nrun report written to {args.out} "
          f"({len(run_report.metrics)} metrics, "
          f"{len(run_report.phases)} phases)")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or trim the content-addressed golden-run artifact cache."""
    from pathlib import Path

    from repro.core import cache as golden_cache

    root = Path(args.dir) if args.dir else golden_cache.cache_root()
    store = golden_cache.GoldenRunCache(root)
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {root}")
        return 0
    if args.cache_command == "prune":
        removed = len(store.prune(max_age_days=args.days,
                                  max_entries=args.keep))
        print(f"pruned {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {root}")
        return 0
    entries = store.entries()
    if not entries:
        print(f"cache is empty ({root})")
        return 0
    rows = []
    for entry in entries:
        rows.append((
            entry.key[:12],
            entry.bus if entry.ok else "?",
            str(entry.cycles) if entry.ok else "-",
            str(entry.trace_length) if entry.ok else "-",
            str(entry.checkpoint_count) if entry.ok else "-",
            str(entry.verdict_count) if entry.ok else "-",
            f"{entry.size_bytes / 1024:.1f}",
            "ok" if entry.ok else "CORRUPT",
        ))
    print(format_table(
        ("key", "bus", "cycles", "trace", "ckpts", "verdicts", "KiB",
         "status"),
        rows,
        title=f"golden-run cache: {root}",
    ))
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sbst",
        description="Software-based self-test for interconnect crosstalk "
        "(Chen/Bai/Dey DAC'01 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a self-test program")
    build.add_argument("--bus", choices=("addr", "data", "both"),
                       default="addr")
    build.add_argument("--listing", action="store_true",
                       help="print a disassembly")
    build.add_argument("--listing-limit", type=int, default=60)
    build.add_argument("--hex", metavar="PATH",
                       help="write the program image as Intel HEX")
    build.set_defaults(func=cmd_build)

    check = sub.add_parser(
        "check", help="statically lint a generated self-test program"
    )
    check.add_argument("--bus", choices=("addr", "data", "both"),
                       default="both")
    check.add_argument("--strict", action="store_true",
                       help="treat warnings as errors")
    check.add_argument("--crosscheck", action="store_true",
                       help="also diff the static prediction against a "
                       "traced fault-free run")
    check.set_defaults(func=cmd_check)

    engine_help = (
        "defect-simulation engine: 'exact' replays every defect in full, "
        "'screened' screens the library against the golden bus trace and "
        "replays only divergent defects from a checkpoint (identical "
        "outcomes, much faster on lightly-corrupting campaigns)"
    )

    workers_help = (
        "campaign worker processes (1 = in-process serial; above 1 the "
        "defects are sharded over a process pool with bit-identical "
        "results)"
    )
    journal_help = (
        "JSONL outcome journal: every judged defect is appended and "
        "flushed, so an interrupted campaign can be resumed"
    )
    resume_help = (
        "resume from the journal: skip every already-judged defect "
        "(requires --journal; the journal must match the campaign "
        "configuration)"
    )
    core_help = (
        "CPU core implementation: 'micro' is the reference FSM, 'fast' the "
        "microprogram fast path (bit-identical bus stream, ~2-3x faster), "
        "'auto' follows REPRO_FAST_CORE (default: fast)"
    )

    simulate = sub.add_parser("simulate", help="run a defect campaign")
    simulate.add_argument("--bus", choices=("addr", "data"), default="addr")
    simulate.add_argument("--defects", type=int, default=300)
    simulate.add_argument("--seed", type=int, default=2001)
    simulate.add_argument("--engine", choices=("exact", "screened"),
                          default="exact", help=engine_help)
    simulate.add_argument("--workers", type=int, default=1,
                          help=workers_help)
    simulate.add_argument("--journal", metavar="PATH", help=journal_help)
    simulate.add_argument("--resume", action="store_true", help=resume_help)
    simulate.add_argument("--core", choices=("auto", "fast", "micro"),
                          default="auto", help=core_help)
    simulate.add_argument("--no-cache", action="store_true",
                          help="skip the golden-run artifact cache and "
                          "recapture the fault-free reference")
    simulate.add_argument("--json", action="store_true",
                          help="emit one machine-parseable JSON object on "
                          "stdout (progress stays on stderr)")
    simulate.set_defaults(func=cmd_simulate)

    fig11 = sub.add_parser("fig11", help="reproduce the paper's Fig. 11")
    fig11.add_argument("--defects", type=int, default=300)
    fig11.add_argument("--seed", type=int, default=2001)
    fig11.add_argument("--engine", choices=("exact", "screened"),
                       default="exact", help=engine_help)
    fig11.add_argument("--workers", type=int, default=1, help=workers_help)
    fig11.add_argument("--journal", metavar="PATH", help=journal_help)
    fig11.add_argument("--resume", action="store_true", help=resume_help)
    fig11.add_argument("--core", choices=("auto", "fast", "micro"),
                       default="auto", help=core_help)
    fig11.set_defaults(func=cmd_fig11)

    timing = sub.add_parser("timing", help="Fig. 5 load-instruction timing")
    timing.set_defaults(func=cmd_timing)

    profile = sub.add_parser(
        "profile",
        help="run a workload under observability and emit a RunReport JSON",
    )
    profile.add_argument(
        "target", nargs="?", choices=("examples", "fig11", "sessions"),
        default="examples",
        help="workload: the quickstart flow, the per-line Fig. 11 "
        "campaign, or multi-session scheduling",
    )
    profile.add_argument("--bus", choices=("addr", "data"), default="addr")
    profile.add_argument("--defects", type=int, default=200)
    profile.add_argument("--seed", type=int, default=2001)
    profile.add_argument("--engine", choices=("exact", "screened"),
                         default="exact", help=engine_help)
    profile.add_argument("--workers", type=int, default=1,
                         help=workers_help + "; worker metrics are rolled "
                         "up into the single RunReport")
    profile.add_argument("--detail", choices=("metrics", "full"),
                         default="full",
                         help="telemetry depth (full adds FSM occupancy "
                         "and per-defect spans)")
    profile.add_argument("--out", metavar="PATH", default="run_report.json",
                         help="RunReport JSON output path")
    profile.add_argument("--trace", metavar="PATH",
                         help="also write a JSONL bus trace of the "
                         "fault-free golden run")
    profile.add_argument("--max-trace", type=int, default=4096,
                         help="trace ring-buffer capacity (newest kept)")
    profile.add_argument("--core", choices=("auto", "fast", "micro"),
                         default="auto", help=core_help)
    profile.set_defaults(func=cmd_profile)

    cache = sub.add_parser(
        "cache",
        help="inspect or trim the golden-run artifact cache",
    )
    cache.add_argument("--dir", metavar="PATH",
                       help="cache directory (default: $REPRO_CACHE_DIR or "
                       ".repro-cache)")
    cache_sub = cache.add_subparsers(dest="cache_command")
    cache_sub.add_parser("ls", help="list cache entries (default)")
    prune = cache_sub.add_parser(
        "prune", help="drop old or excess cache entries"
    )
    prune.add_argument("--days", type=float, default=None,
                       help="drop entries older than this many days")
    prune.add_argument("--keep", type=int, default=None,
                       help="keep at most this many newest entries")
    cache_sub.add_parser("clear", help="remove every cache entry")
    cache.set_defaults(func=cmd_cache, cache_command="ls")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    All logging goes to **stderr** (stdout carries only command
    output), and Ctrl-C exits 130 with a resume hint instead of a
    traceback — an interrupted journaled campaign picks up with
    ``--resume``.
    """
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    logging.getLogger("repro").addHandler(handler)
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print(
            "\ninterrupted — a journaled campaign (--journal PATH) can be "
            "picked up where it stopped with --resume",
            file=sys.stderr,
        )
        return 130


if __name__ == "__main__":
    sys.exit(main())
