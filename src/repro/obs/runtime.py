"""Process-wide observability switch.

One :class:`Observability` session is active at a time (or none — the
default).  Instrumented code asks this module for the current registry
or span recorder; when nothing is active it gets the shared null
variants, so the instrumented hot paths stay allocation-free.

Two detail levels:

``"metrics"`` (default)
    Per-run aggregate metrics only.  The per-event work is the native
    counters the models keep anyway (see ``soc.bus`` / ``xtalk``), so
    the enabled-vs-disabled delta on a defect campaign stays well under
    the 5 % budget proven by ``benchmarks/bench_obs_overhead.py``.

``"full"``
    Additionally: per-cycle FSM-state occupancy, a span per simulated
    defect, and whatever extra cardinality callers opt into.  Meant for
    ``repro-sbst profile``, not for timing-sensitive benchmarking.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.spans import NULL_SPAN, NULL_SPAN_RECORDER, Span, SpanRecorder

logger = logging.getLogger("repro.obs")

DETAIL_LEVELS = ("metrics", "full")


class Observability:
    """One enabled observability session: a registry plus a span tree."""

    def __init__(self, detail: str = "metrics"):
        if detail not in DETAIL_LEVELS:
            raise ValueError(f"detail must be one of {DETAIL_LEVELS}")
        self.detail = detail
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder()

    @property
    def full_detail(self) -> bool:
        return self.detail == "full"


_ACTIVE: Optional[Observability] = None


def active() -> Optional[Observability]:
    """The enabled session, or ``None``.

    This is *the* hot-path guard: instrumentation that would do per-event
    work checks ``active() is None`` (a global load and an identity
    test) and bails out.
    """
    return _ACTIVE


def enable(detail: str = "metrics") -> Observability:
    """Start a fresh observability session (replacing any current one)."""
    global _ACTIVE
    _ACTIVE = Observability(detail=detail)
    logger.debug("observability enabled (detail=%s)", detail)
    return _ACTIVE


def disable() -> None:
    """Stop collecting; instrumentation reverts to the no-op path."""
    global _ACTIVE
    _ACTIVE = None


def registry() -> MetricsRegistry:
    """The active registry, or the allocation-free null registry."""
    obs = _ACTIVE
    return obs.registry if obs is not None else NULL_REGISTRY


def span(name: str, **attrs: object) -> Span:
    """A recorded span when enabled; the shared no-op span otherwise."""
    obs = _ACTIVE
    if obs is None:
        return NULL_SPAN  # type: ignore[return-value]
    return obs.spans.span(name, **attrs)


def spans() -> SpanRecorder:
    """The active span recorder, or the null recorder."""
    obs = _ACTIVE
    return obs.spans if obs is not None else NULL_SPAN_RECORDER


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily disable collection inside an enabled session.

    The control arm of overhead measurements uses this to run the same
    workload on the no-op path without tearing the session down.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = previous


@contextmanager
def session(detail: str = "metrics") -> Iterator[Observability]:
    """Enable observability for a ``with`` block, then restore the
    previous state (supports nesting, e.g. tests inside a profiled
    run)."""
    global _ACTIVE
    previous = _ACTIVE
    obs = Observability(detail=detail)
    _ACTIVE = obs
    try:
        yield obs
    finally:
        _ACTIVE = previous
