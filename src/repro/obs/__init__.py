"""repro.obs — structured telemetry for simulation runs and campaigns.

Three layers:

* **Metrics** (:mod:`repro.obs.metrics`): counters, gauges and
  ns-resolution timers in a flat dot-named registry
  (``cpu.cycles``, ``bus.data.corrupted``, ``coverage.defects.detected``).
* **Spans** (:mod:`repro.obs.spans`): hierarchical timed regions with a
  context-manager API; root spans become a run's *phases*.
* **Reports** (:mod:`repro.obs.report`): :class:`RunReport` serializes a
  whole run — config, per-phase timings, metric snapshots, results — to
  JSON validated against ``src/repro/obs/schema.json``.

Observability is off by default and free when off: the instrumented
code paths throughout ``repro.cpu`` / ``repro.soc`` / ``repro.xtalk`` /
``repro.core`` either check :func:`repro.obs.runtime.active` (a global
load) or talk to shared null metric objects whose methods do nothing
and allocate nothing.  Enable collection around a workload with::

    from repro import obs

    with obs.session(detail="full") as session:
        simulator.run_library(library)
    report = obs.RunReport.from_observability(
        session, kind="run", label="my campaign"
    )
    report.save("run_report.json")
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    NULL_REGISTRY,
    Timer,
    merge_snapshot,
)
from repro.obs.report import RunReport
from repro.obs.runtime import (
    Observability,
    active,
    disable,
    enable,
    registry,
    session,
    span,
    spans,
)
from repro.obs.schema import load_schema, validate, validate_or_raise
from repro.obs.spans import NULL_SPAN, Span, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "Observability",
    "RunReport",
    "Span",
    "SpanRecorder",
    "Timer",
    "active",
    "disable",
    "enable",
    "load_schema",
    "merge_snapshot",
    "registry",
    "session",
    "span",
    "spans",
    "validate",
    "validate_or_raise",
]
