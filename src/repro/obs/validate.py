"""Validate RunReport JSON files against the checked-in schema.

CI uses this as a standalone gate after ``repro-sbst profile``::

    python -m repro.obs.validate run_report.json [more.json ...]

Exit code 0 iff every file validates; violations are printed one per
line as ``file: path: problem``.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from repro.obs.schema import load_schema, validate


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate REPORT.json [...]",
              file=sys.stderr)
        return 2
    schema = load_schema()
    failed = False
    for name in argv:
        try:
            with open(name, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{name}: unreadable ({exc})")
            failed = True
            continue
        errors = validate(payload, schema)
        if errors:
            failed = True
            for error in errors:
                print(f"{name}: {error}")
        else:
            metric_count = len(payload.get("metrics", {}))
            phase_count = len(payload.get("phases", []))
            print(f"{name}: valid ({phase_count} phases, "
                  f"{metric_count} metrics)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
