"""RunReport: the serialized outcome of one observed run.

A :class:`RunReport` freezes everything a later reader needs to
interpret a run without its stdout: the configuration, per-phase wall
timings, a snapshot of every metric, the span tree (optional),
paper-vs-measured experiment records (optional) and arbitrary result
payloads.  ``repro-sbst profile`` emits one per invocation and every
benchmark writes one next to its stdout output, so ``BENCH_*.json``
files form a self-describing performance trajectory.

The JSON layout is pinned by ``src/repro/obs/schema.json`` and checked
by :mod:`repro.obs.schema`; :meth:`RunReport.save` refuses to write an
invalid document.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.runtime import Observability
from repro.obs.schema import validate, validate_or_raise

SCHEMA_VERSION = 1


def _tool_info() -> Dict[str, str]:
    from repro import __version__

    return {"name": "repro", "version": __version__}


@dataclass
class RunReport:
    """One run's configuration, timings, metrics and results."""

    kind: str  # "profile" | "benchmark" | "run"
    label: str
    config: Dict[str, Any] = field(default_factory=dict)
    phases: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    records: List[Dict[str, str]] = field(default_factory=list)
    sections: List[Dict[str, str]] = field(default_factory=list)
    results: Dict[str, Any] = field(default_factory=dict)
    created_unix: float = field(default_factory=time.time)
    schema_version: int = SCHEMA_VERSION
    tool: Dict[str, str] = field(default_factory=_tool_info)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_observability(
        cls,
        obs: Observability,
        kind: str,
        label: str,
        config: Optional[Dict[str, Any]] = None,
        include_spans: bool = True,
    ) -> "RunReport":
        """Snapshot an observability session into a report."""
        return cls(
            kind=kind,
            label=label,
            config=dict(config or {}),
            phases=obs.spans.phases(),
            metrics=obs.registry.snapshot(),
            spans=obs.spans.as_dicts() if include_spans else [],
        )

    def add_records(self, records) -> None:
        """Attach experiment records (anything with the
        :class:`~repro.analysis.records.ExperimentRecord` fields)."""
        for record in records:
            self.records.append(
                {
                    "experiment": record.experiment,
                    "quantity": record.quantity,
                    "paper": record.paper,
                    "measured": record.measured,
                    "note": record.note,
                }
            )

    def add_section(self, title: str, body: str) -> None:
        """Mirror one emitted stdout section into the report."""
        self.sections.append({"title": title, "body": body})

    # -- serialization ----------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "tool": dict(self.tool),
            "created_unix": self.created_unix,
            "kind": self.kind,
            "label": self.label,
            "config": self.config,
            "phases": self.phases,
            "metrics": self.metrics,
        }
        if self.spans:
            payload["spans"] = self.spans
        if self.records:
            payload["records"] = self.records
        if self.sections:
            payload["sections"] = self.sections
        if self.results:
            payload["results"] = self.results
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def validation_errors(self) -> List[str]:
        """Schema violations of the serialized form (empty when valid)."""
        return validate(self.as_dict())

    def save(self, path: Union[str, Path]) -> Path:
        """Validate against the checked-in schema, then write JSON."""
        payload = self.as_dict()
        validate_or_raise(payload)
        path = Path(path)
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunReport":
        """Read a report back (validating it on the way in)."""
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
        validate_or_raise(payload)
        return cls(
            kind=payload["kind"],
            label=payload["label"],
            config=payload.get("config", {}),
            phases=payload.get("phases", []),
            metrics=payload.get("metrics", {}),
            spans=payload.get("spans", []),
            records=payload.get("records", []),
            sections=payload.get("sections", []),
            results=payload.get("results", {}),
            created_unix=payload["created_unix"],
            schema_version=payload["schema_version"],
            tool=payload["tool"],
        )

    # -- rendering --------------------------------------------------------

    def summary(self) -> str:
        """Human-oriented digest: phases plus the headline metrics."""
        from repro.analysis.tables import format_table

        phase_rows = [
            (p["name"], f"{p['duration_ns'] / 1e6:.2f} ms")
            for p in self.phases
        ]
        out = [format_table(("phase", "wall time"), phase_rows,
                            title=f"run report: {self.label}")]
        metric_rows = []
        for name in sorted(self.metrics):
            snap = self.metrics[name]
            if snap["type"] == "timer":
                value = (f"n={snap['count']} "
                         f"mean={snap['mean_ns'] / 1e3:.1f}us "
                         f"max={(snap['max_ns'] or 0) / 1e3:.1f}us")
            else:
                value = str(snap["value"])
            metric_rows.append((name, snap["type"], value))
        if metric_rows:
            out.append("")
            out.append(format_table(("metric", "type", "value"), metric_rows))
        return "\n".join(out)
