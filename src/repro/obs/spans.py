"""Hierarchical timing spans with a context-manager API.

A span is one timed region of a run (``setup``, ``campaign``,
``campaign/defect[17]``...).  Spans nest: entering a span while another
is open makes it a child, so a finished recorder holds a forest whose
roots are the run's *phases*.

As with metrics, the disabled path must be free: :data:`NULL_SPAN` is a
reusable context manager whose ``__enter__``/``__exit__`` do nothing and
allocate nothing.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class Span:
    """One timed region; also its own context manager."""

    __slots__ = ("name", "start_ns", "end_ns", "children", "attrs",
                 "_recorder")

    def __init__(self, name: str, recorder: Optional["SpanRecorder"] = None,
                 attrs: Optional[Dict[str, object]] = None):
        self.name = name
        self.start_ns: Optional[int] = None
        self.end_ns: Optional[int] = None
        self.children: List["Span"] = []
        self.attrs: Dict[str, object] = attrs or {}
        self._recorder = recorder

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (0 while the span is still open)."""
        if self.start_ns is None or self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def __enter__(self) -> "Span":
        self.start_ns = time.perf_counter_ns()
        if self._recorder is not None:
            self._recorder._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end_ns = time.perf_counter_ns()
        if self._recorder is not None:
            self._recorder._pop(self)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (children inlined recursively)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [c.as_dict() for c in self.children]
        return payload


class SpanRecorder:
    """Collects a forest of spans for one observability session.

    ``max_spans`` bounds memory on pathological workloads (a 1000-defect
    campaign with per-defect spans is fine; an unbounded loop is not):
    past the limit new spans are silently timed but not retained, and
    :attr:`dropped` counts them.
    """

    def __init__(self, max_spans: int = 100_000):
        self.roots: List[Span] = []
        self.dropped = 0
        self.max_spans = max_spans
        self._stack: List[Span] = []
        self._recorded = 0

    def span(self, name: str, **attrs: object) -> Span:
        """A new span, recorded under the currently open one on entry."""
        return Span(name, recorder=self, attrs=attrs or None)

    def _push(self, span: Span) -> None:
        if self._recorded >= self.max_spans:
            self.dropped += 1
        else:
            self._recorded += 1
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)

    def phases(self) -> List[Dict[str, object]]:
        """Root spans as flat phase dicts (the RunReport ``phases`` list)."""
        return [
            {
                "name": root.name,
                "start_ns": root.start_ns,
                "duration_ns": root.duration_ns,
            }
            for root in self.roots
            if root.start_ns is not None
        ]

    def as_dicts(self) -> List[Dict[str, object]]:
        """The whole span forest, JSON-ready."""
        return [root.as_dict() for root in self.roots]


class _NullSpan:
    """Reusable no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullSpanRecorder(SpanRecorder):
    """Recorder handed out when observability is disabled."""

    def span(self, name: str, **attrs: object) -> Span:
        return NULL_SPAN  # type: ignore[return-value]

    def phases(self) -> List[Dict[str, object]]:
        return []

    def as_dicts(self) -> List[Dict[str, object]]:
        return []


NULL_SPAN_RECORDER = NullSpanRecorder()
