"""Metric primitives: counters, gauges and ns-resolution timers.

A :class:`MetricsRegistry` owns a flat, dot-named metric namespace
(``cpu.cycles``, ``bus.data.corrupted``, ``coverage.defects.detected``,
...).  Names are plain strings; the dots are a reporting convention, not
a hierarchy the registry enforces.

Design note — the no-op mode.  Instrumented code paths must cost
(almost) nothing when observability is disabled.  The null variants
below (:data:`NULL_COUNTER`, :data:`NULL_REGISTRY`, ...) are shared
singletons whose mutating methods are empty: calling them performs no
attribute writes and **no allocations**, which the hot-path property
test in ``tests/test_obs_metrics.py`` enforces.  Instrumentation can
therefore be written unconditionally against the registry returned by
:func:`repro.obs.runtime.registry`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (negative increments are rejected)."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def snapshot(self) -> Dict[str, Union[str, int]]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A metric holding the most recently set value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Union[str, float]]:
        return {"type": "gauge", "value": self.value}


class Timer:
    """A duration histogram with nanosecond samples.

    Running aggregates (count / total / min / max) are always kept; the
    most recent ``reservoir_size`` samples are retained so reports can
    show a coarse distribution without unbounded memory.
    """

    __slots__ = ("name", "count", "total_ns", "min_ns", "max_ns",
                 "_reservoir", "_reservoir_size")

    def __init__(self, name: str, reservoir_size: int = 512):
        self.name = name
        self.count = 0
        self.total_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns: Optional[int] = None
        self._reservoir: list = []
        self._reservoir_size = reservoir_size

    def observe(self, duration_ns: int) -> None:
        """Record one duration sample (clamped at zero)."""
        if duration_ns < 0:
            duration_ns = 0
        self.count += 1
        self.total_ns += duration_ns
        if self.min_ns is None or duration_ns < self.min_ns:
            self.min_ns = duration_ns
        if self.max_ns is None or duration_ns > self.max_ns:
            self.max_ns = duration_ns
        reservoir = self._reservoir
        if len(reservoir) >= self._reservoir_size:
            # Keep the newest window: cheap, deterministic, bounded.
            del reservoir[0]
        reservoir.append(duration_ns)

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[int]:
        """Approximate percentile over the retained sample window."""
        if not self._reservoir:
            return None
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def absorb(
        self,
        count: int,
        total_ns: int,
        min_ns: Optional[int],
        max_ns: Optional[int],
    ) -> None:
        """Fold another timer's running aggregates into this one.

        Used by the campaign layer to roll worker-process snapshots up
        into the parent registry.  The sample reservoir cannot be
        reconstructed from a snapshot, so absorbed samples contribute to
        count/total/min/max but not to the percentile window.
        """
        if count <= 0:
            return
        self.count += count
        self.total_ns += total_ns
        if min_ns is not None and (self.min_ns is None or min_ns < self.min_ns):
            self.min_ns = min_ns
        if max_ns is not None and (self.max_ns is None or max_ns > self.max_ns):
            self.max_ns = max_ns

    def snapshot(self) -> Dict[str, Union[str, int, float, None]]:
        return {
            "type": "timer",
            "count": self.count,
            "total_ns": self.total_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
            "mean_ns": self.mean_ns,
            "p50_ns": self.percentile(0.50),
            "p95_ns": self.percentile(0.95),
        }


Metric = Union[Counter, Gauge, Timer]


class MetricsRegistry:
    """Creates and holds metrics by name (one kind per name)."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Tuple[str, Metric]]:
        return iter(sorted(self._metrics.items()))

    def snapshot(self) -> Dict[str, Dict]:
        """``name -> snapshot dict`` for every registered metric."""
        return {name: metric.snapshot() for name, metric in self}


class NullCounter(Counter):
    """Counter whose ``inc`` is a no-op (shared; never allocates)."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class NullGauge(Gauge):
    """Gauge whose ``set`` is a no-op (shared; never allocates)."""

    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class NullTimer(Timer):
    """Timer whose ``observe`` is a no-op (shared; never allocates)."""

    __slots__ = ()

    def observe(self, duration_ns: int) -> None:
        pass

    def absorb(
        self,
        count: int,
        total_ns: int,
        min_ns: Optional[int],
        max_ns: Optional[int],
    ) -> None:
        pass


NULL_COUNTER = NullCounter("null")
NULL_GAUGE = NullGauge("null")
NULL_TIMER = NullTimer("null")


class NullRegistry(MetricsRegistry):
    """Registry handed out when observability is disabled.

    Every accessor returns the same pre-allocated null metric, so
    ``registry().counter("x").inc()`` on the hot path costs two method
    calls and zero allocations.
    """

    def counter(self, name: str) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return NULL_GAUGE

    def timer(self, name: str) -> Timer:
        return NULL_TIMER

    def snapshot(self) -> Dict[str, Dict]:
        return {}


NULL_REGISTRY = NullRegistry()


def merge_snapshot(
    registry: MetricsRegistry, snapshot: Dict[str, Dict]
) -> None:
    """Fold a :meth:`MetricsRegistry.snapshot` into ``registry``.

    This is the order-independent rollup the campaign layer uses to
    merge worker-process metrics into the parent's registry: counters
    add, timers fold their running aggregates (:meth:`Timer.absorb`),
    and gauges adopt the snapshot value (last writer wins — campaign
    gauges are progress-style, where any recent value is fine).
    Unknown metric types are ignored so newer snapshots stay mergeable.
    """
    for name, data in snapshot.items():
        kind = data.get("type")
        if kind == "counter":
            registry.counter(name).inc(int(data.get("value", 0)))
        elif kind == "gauge":
            registry.gauge(name).set(float(data.get("value", 0.0)))
        elif kind == "timer":
            registry.timer(name).absorb(
                int(data.get("count", 0)),
                int(data.get("total_ns", 0)),
                data.get("min_ns"),
                data.get("max_ns"),
            )
