"""Minimal JSON-Schema validation for RunReport documents.

The container environment has no ``jsonschema`` package, so this module
implements the (small, stable) subset of draft-07 that
``src/repro/obs/schema.json`` uses: ``type`` (including type lists),
``properties`` / ``required`` / ``additionalProperties``, ``items``,
``enum`` and ``minimum``.  Unknown keywords are ignored, as the spec
prescribes, so the checked-in schema stays a valid draft-07 document
usable with full validators elsewhere (e.g. in downstream CI).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

SCHEMA_PATH = Path(__file__).with_name("schema.json")

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def load_schema(path: Path = SCHEMA_PATH) -> Dict[str, Any]:
    """The checked-in RunReport schema (or any other schema file)."""
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)


def _check_type(instance: Any, expected, where: str, errors: List[str]) -> bool:
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        check = _TYPE_CHECKS.get(name)
        if check is not None and check(instance):
            return True
    errors.append(
        f"{where}: expected type {'/'.join(names)}, "
        f"got {type(instance).__name__}"
    )
    return False


def _validate(instance: Any, schema: Dict[str, Any], where: str,
              errors: List[str]) -> None:
    if "type" in schema:
        if not _check_type(instance, schema["type"], where, errors):
            return  # further keyword checks would only cascade
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{where}: {instance!r} not one of {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            errors.append(
                f"{where}: {instance} is below minimum {schema['minimum']}"
            )
    if isinstance(instance, dict):
        properties = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{where}: missing required property {key!r}")
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            sub = properties.get(key)
            if sub is not None:
                _validate(value, sub, f"{where}.{key}", errors)
            elif isinstance(additional, dict):
                _validate(value, additional, f"{where}.{key}", errors)
            elif additional is False:
                errors.append(f"{where}: unexpected property {key!r}")
    if isinstance(instance, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for index, value in enumerate(instance):
                _validate(value, items, f"{where}[{index}]", errors)


def validate(instance: Any, schema: Dict[str, Any] = None) -> List[str]:
    """All violations of ``schema`` (default: the RunReport schema).

    Returns an empty list when the document is valid; each entry
    otherwise is a human-readable ``path: problem`` string.
    """
    if schema is None:
        schema = load_schema()
    errors: List[str] = []
    _validate(instance, schema, "$", errors)
    return errors


def validate_or_raise(instance: Any, schema: Dict[str, Any] = None) -> None:
    """Raise ``ValueError`` with all violations if ``instance`` is invalid."""
    errors = validate(instance, schema)
    if errors:
        raise ValueError(
            "RunReport does not match schema:\n  " + "\n  ".join(errors)
        )
