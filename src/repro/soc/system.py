"""Wiring of the CPU-memory system used throughout the paper.

A :class:`CpuMemorySystem` owns the 12-bit unidirectional address bus, the
8-bit bidirectional data bus, the memory core, optional memory-mapped
peripheral cores, and a PARWAN-class CPU.  It implements the CPU's
:class:`~repro.cpu.datapath.BusPort`, so every CPU memory access becomes an
address-bus transaction followed by a data-bus transaction — the exact
transition stream the crosstalk error model corrupts.

The memory services the *received* address of each access: a corrupted
address-bus word makes reads return data from the wrong location and writes
land at the wrong location, which is how address-bus crosstalk errors
manifest in the paper (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.cpu.control import STATE_CATEGORIES
from repro.cpu.datapath import BusPort, Cpu
from repro.isa.instructions import ADDR_BITS, DATA_BITS, MEMORY_SIZE
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import Observability
from repro.soc.bus import Bus, BusDirection, TransactionKind
from repro.soc.memory import Memory
from repro.soc.mmio import MMIORegion


@dataclass(frozen=True)
class RunResult:
    """Outcome of running the CPU until halt or a cycle budget."""

    halted: bool
    cycles: int
    instructions: int

    @property
    def timed_out(self) -> bool:
        """True when the cycle budget expired before the halt convention."""
        return not self.halted


class CpuMemorySystem(BusPort):
    """The demonstrator SoC: CPU + memory on shared address/data buses.

    Parameters
    ----------
    memory_size:
        Bytes of memory (default: the paper's 4K).
    addr_bits / data_bits:
        Bus widths; defaults match the paper (12-bit address, 8-bit data).
    mmio_regions:
        Optional memory-mapped cores overriding parts of the address space.
    """

    def __init__(
        self,
        memory_size: int = MEMORY_SIZE,
        addr_bits: int = ADDR_BITS,
        data_bits: int = DATA_BITS,
        mmio_regions: Optional[Sequence[MMIORegion]] = None,
    ):
        self.address_bus = Bus("addr", addr_bits)
        self.data_bus = Bus("data", data_bits)
        self.memory = Memory(memory_size)
        self.mmio_regions: List[MMIORegion] = list(mmio_regions or [])
        self.cpu = Cpu(self)
        self.cycle = 0
        self._pending_address = 0

    # -- BusPort implementation ------------------------------------------

    def address_phase(self, address: int, kind: TransactionKind) -> None:
        self._pending_address = self.address_bus.transfer(
            address, BusDirection.CPU_TO_MEM, kind, self.cycle
        )

    def read_phase(self, kind: TransactionKind) -> int:
        value = self._route_read(self._pending_address)
        return self.data_bus.transfer(
            value, BusDirection.MEM_TO_CPU, kind, self.cycle
        )

    def write_phase(self, value: int, kind: TransactionKind) -> None:
        received = self.data_bus.transfer(
            value, BusDirection.CPU_TO_MEM, kind, self.cycle
        )
        self._route_write(self._pending_address, received)

    # -- address decoding --------------------------------------------------

    def _find_region(self, address: int) -> Optional[MMIORegion]:
        for region in self.mmio_regions:
            if region.contains(address):
                return region
        return None

    def _route_read(self, address: int) -> int:
        region = self._find_region(address)
        if region is not None:
            return region.core.read(address - region.base)
        return self.memory.read(address % self.memory.size)

    def _route_write(self, address: int, value: int) -> None:
        region = self._find_region(address)
        if region is not None:
            region.core.write(address - region.base, value)
            return
        self.memory.write(address % self.memory.size, value)

    # -- program control ----------------------------------------------------

    def load_image(self, image: Mapping[int, int]) -> None:
        """Copy a sparse program image into memory."""
        self.memory.load_image(image)

    def reset(self, pc: int = 0) -> None:
        """Reset CPU, clock and bus state (memory content is preserved)."""
        self.cpu.reset(pc)
        self.cycle = 0
        self.address_bus.reset()
        self.data_bus.reset()

    def step(self) -> None:
        """Advance the system by one clock cycle."""
        self.cycle += 1
        self.cpu.tick()

    def run(self, entry: int = 0, max_cycles: int = 1_000_000) -> RunResult:
        """Reset to ``entry`` and clock the CPU until it halts.

        ``max_cycles`` bounds runaway programs — a crosstalk defect can send
        the CPU into an endless loop, which the defect simulator must treat
        as a (detected) abnormal outcome rather than hang.

        When an observability session is active the run additionally
        rolls its aggregate counters (cycles, instructions, per-bus
        transaction stats; FSM-state occupancy in full detail) into the
        session registry.  With observability off, this method is the
        plain tight loop it always was.
        """
        obs = obs_runtime.active()
        if obs is not None:
            return self._run_observed(obs, entry, max_cycles)
        self.reset(entry)
        while not self.cpu.halted and self.cycle < max_cycles:
            self.step()
        return RunResult(
            halted=self.cpu.halted,
            cycles=self.cycle,
            instructions=self.cpu.instruction_count,
        )

    def _run_observed(
        self, obs: Observability, entry: int, max_cycles: int
    ) -> RunResult:
        """The instrumented twin of :meth:`run`."""
        self.reset(entry)
        cpu = self.cpu
        before = [bus.stats() for bus in (self.address_bus, self.data_bus)]
        if obs.full_detail:
            occupancy: dict = {}
            while not cpu.halted and self.cycle < max_cycles:
                self.cycle += 1
                cpu.tick_counted(occupancy)
        else:
            occupancy = {}
            while not cpu.halted and self.cycle < max_cycles:
                self.step()
        result = RunResult(
            halted=cpu.halted,
            cycles=self.cycle,
            instructions=cpu.instruction_count,
        )
        registry = obs.registry
        registry.counter("cpu.runs").inc()
        registry.counter("cpu.cycles").inc(result.cycles)
        registry.counter("cpu.instructions").inc(result.instructions)
        if result.timed_out:
            registry.counter("cpu.timeouts").inc()
        for bus, earlier in zip((self.address_bus, self.data_bus), before):
            delta = bus.stats().delta(earlier)
            registry.counter(f"bus.{bus.name}.transactions").inc(
                delta.transactions
            )
            registry.counter(f"bus.{bus.name}.corrupted").inc(delta.corrupted)
            for kind, count in delta.by_kind.items():
                if count:
                    registry.counter(
                        f"bus.{bus.name}.kind.{kind.value}"
                    ).inc(count)
        for state, count in occupancy.items():
            registry.counter(f"cpu.state.{state.value}").inc(count)
            registry.counter(
                f"cpu.state_class.{STATE_CATEGORIES[state]}"
            ).inc(count)
        return result

    def resume(self, max_cycles: int = 1_000_000) -> RunResult:
        """Continue clocking without a reset (for cycle-level inspection)."""
        while not self.cpu.halted and self.cycle < max_cycles:
            self.step()
        return RunResult(
            halted=self.cpu.halted,
            cycles=self.cycle,
            instructions=self.cpu.instruction_count,
        )
