"""Wiring of the CPU-memory system used throughout the paper.

A :class:`CpuMemorySystem` owns the 12-bit unidirectional address bus, the
8-bit bidirectional data bus, the memory core, optional memory-mapped
peripheral cores, and a PARWAN-class CPU.  It implements the CPU's
:class:`~repro.cpu.datapath.BusPort`, so every CPU memory access becomes an
address-bus transaction followed by a data-bus transaction — the exact
transition stream the crosstalk error model corrupts.

The memory services the *received* address of each access: a corrupted
address-bus word makes reads return data from the wrong location and writes
land at the wrong location, which is how address-bus crosstalk errors
manifest in the paper (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.cpu.control import STATE_CATEGORIES
from repro.cpu.datapath import BusPort, Cpu, CpuSnapshot
from repro.cpu.microcode import FastCpu, resolve_core
from repro.isa.instructions import ADDR_BITS, DATA_BITS, MEMORY_SIZE
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import Observability
from repro.soc.bus import Bus, BusDirection, BusSnapshot, TransactionKind
from repro.soc.memory import Memory
from repro.soc.mmio import MMIORegion


@dataclass(frozen=True)
class RunResult:
    """Outcome of running the CPU until halt or a cycle budget."""

    halted: bool
    cycles: int
    instructions: int

    @property
    def timed_out(self) -> bool:
        """True when the cycle budget expired before the halt convention."""
        return not self.halted


@dataclass(frozen=True)
class SystemSnapshot:
    """Complete restorable state of a :class:`CpuMemorySystem`.

    Everything the simulation depends on is captured: the clock, the CPU
    (mid-instruction latches included), the memory image, and both buses'
    held words and counters.  Restoring a snapshot and resuming therefore
    reproduces the original run cycle for cycle — the property the
    screened defect-simulation engine relies on to fast-forward defective
    replays to just before their first corrupted transaction.
    """

    cycle: int
    pending_address: int
    cpu: CpuSnapshot
    memory: bytes
    address_bus: BusSnapshot
    data_bus: BusSnapshot


class CpuMemorySystem(BusPort):
    """The demonstrator SoC: CPU + memory on shared address/data buses.

    Parameters
    ----------
    memory_size:
        Bytes of memory (default: the paper's 4K).
    addr_bits / data_bits:
        Bus widths; defaults match the paper (12-bit address, 8-bit data).
    mmio_regions:
        Optional memory-mapped cores overriding parts of the address space.
    core:
        CPU implementation: ``"micro"`` (the readable FSM reference),
        ``"fast"`` (the microprogram interpreter) or ``"auto"`` (honour
        ``REPRO_FAST_CORE``; defaults to fast).  The cores are
        bit-identical — see :mod:`repro.cpu.lockstep`.
    """

    def __init__(
        self,
        memory_size: int = MEMORY_SIZE,
        addr_bits: int = ADDR_BITS,
        data_bits: int = DATA_BITS,
        mmio_regions: Optional[Sequence[MMIORegion]] = None,
        core: str = "auto",
    ):
        self.address_bus = Bus("addr", addr_bits)
        self.data_bus = Bus("data", data_bits)
        self.memory = Memory(memory_size)
        self.mmio_regions: List[MMIORegion] = list(mmio_regions or [])
        self.core = resolve_core(core)
        self.cpu = FastCpu(self) if self.core == "fast" else Cpu(self)
        self.cycle = 0
        self._pending_address = 0

    # -- BusPort implementation ------------------------------------------

    def address_phase(self, address: int, kind: TransactionKind) -> None:
        self._pending_address = self.address_bus.transfer(
            address, BusDirection.CPU_TO_MEM, kind, self.cycle
        )

    def read_phase(self, kind: TransactionKind) -> int:
        value = self._route_read(self._pending_address)
        return self.data_bus.transfer(
            value, BusDirection.MEM_TO_CPU, kind, self.cycle
        )

    def write_phase(self, value: int, kind: TransactionKind) -> None:
        received = self.data_bus.transfer(
            value, BusDirection.CPU_TO_MEM, kind, self.cycle
        )
        self._route_write(self._pending_address, received)

    # -- address decoding --------------------------------------------------

    def _find_region(self, address: int) -> Optional[MMIORegion]:
        for region in self.mmio_regions:
            if region.contains(address):
                return region
        return None

    def _route_read(self, address: int) -> int:
        region = self._find_region(address)
        if region is not None:
            return region.core.read(address - region.base)
        return self.memory.read(address % self.memory.size)

    def _route_write(self, address: int, value: int) -> None:
        region = self._find_region(address)
        if region is not None:
            region.core.write(address - region.base, value)
            return
        self.memory.write(address % self.memory.size, value)

    # -- program control ----------------------------------------------------

    def load_image(self, image: Mapping[int, int]) -> None:
        """Copy a sparse program image into memory."""
        self.memory.load_image(image)

    def reset(self, pc: int = 0) -> None:
        """Reset CPU, clock and bus state (memory content is preserved)."""
        self.cpu.reset(pc)
        self.cycle = 0
        self.address_bus.reset()
        self.data_bus.reset()

    def step(self) -> None:
        """Advance the system by one clock cycle."""
        self.cycle += 1
        self.cpu.tick()

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> SystemSnapshot:
        """Capture the full system state for later :meth:`restore`.

        Only pure CPU+memory systems are checkpointable: memory-mapped
        peripheral cores keep private state the system cannot capture, so
        a system with ``mmio_regions`` refuses to snapshot rather than
        produce a checkpoint that silently resumes wrong.
        """
        if self.mmio_regions:
            raise ValueError(
                "cannot snapshot a system with MMIO regions: peripheral "
                "cores hold state outside the system's reach"
            )
        return SystemSnapshot(
            cycle=self.cycle,
            pending_address=self._pending_address,
            cpu=self.cpu.snapshot(),
            memory=self.memory.snapshot(),
            address_bus=self.address_bus.snapshot(),
            data_bus=self.data_bus.snapshot(),
        )

    def restore(self, snapshot: SystemSnapshot) -> None:
        """Rewind the system to a previously captured snapshot.

        Bus corruption hooks and observers are not part of snapshots —
        they survive a restore, so the caller can rewind to a golden
        checkpoint and then install a defect's hook for the resumed run.
        """
        self.cycle = snapshot.cycle
        self._pending_address = snapshot.pending_address
        self.cpu.restore(snapshot.cpu)
        self.memory.restore(snapshot.memory)
        self.address_bus.restore(snapshot.address_bus)
        self.data_bus.restore(snapshot.data_bus)

    # -- clocked execution ---------------------------------------------------

    def run(self, entry: int = 0, max_cycles: int = 1_000_000) -> RunResult:
        """Reset to ``entry`` and clock the CPU until it halts.

        ``max_cycles`` bounds runaway programs — a crosstalk defect can send
        the CPU into an endless loop, which the defect simulator must treat
        as a (detected) abnormal outcome rather than hang.

        When an observability session is active the run additionally
        rolls its aggregate counters (cycles, instructions, per-bus
        transaction stats; FSM-state occupancy in full detail) into the
        session registry.  With observability off, this method is the
        plain tight loop it always was.
        """
        self.reset(entry)
        return self._drive(obs_runtime.active(), max_cycles, "cpu.runs")

    def resume(self, max_cycles: int = 1_000_000) -> RunResult:
        """Continue clocking without a reset.

        Used for cycle-level inspection and by the screened simulation
        engine to continue from a restored checkpoint.  Instrumented the
        same way as :meth:`run` (counter ``cpu.resumes`` instead of
        ``cpu.runs``); counter increments are deltas over this call, so
        a run split into resumes tallies the same totals as one run.
        """
        return self._drive(obs_runtime.active(), max_cycles, "cpu.resumes")

    def _drive(
        self, obs: Optional[Observability], max_cycles: int, run_counter: str
    ) -> RunResult:
        """Clock the CPU until halt or ``max_cycles``; shared by run/resume."""
        cpu = self.cpu
        if obs is None:
            tick = cpu.tick
            cycle = self.cycle
            while not cpu.halted and cycle < max_cycles:
                cycle += 1
                self.cycle = cycle
                tick()
            return RunResult(
                halted=cpu.halted,
                cycles=self.cycle,
                instructions=cpu.instruction_count,
            )
        cycles_before = self.cycle
        instructions_before = cpu.instruction_count
        before = [bus.stats() for bus in (self.address_bus, self.data_bus)]
        occupancy: dict = {}
        if obs.full_detail:
            while not cpu.halted and self.cycle < max_cycles:
                self.cycle += 1
                cpu.tick_counted(occupancy)
        else:
            while not cpu.halted and self.cycle < max_cycles:
                self.step()
        result = RunResult(
            halted=cpu.halted,
            cycles=self.cycle,
            instructions=cpu.instruction_count,
        )
        registry = obs.registry
        registry.counter(run_counter).inc()
        registry.counter("cpu.cycles").inc(self.cycle - cycles_before)
        registry.counter("cpu.instructions").inc(
            cpu.instruction_count - instructions_before
        )
        if result.timed_out:
            registry.counter("cpu.timeouts").inc()
        for bus, earlier in zip((self.address_bus, self.data_bus), before):
            delta = bus.stats().delta(earlier)
            registry.counter(f"bus.{bus.name}.transactions").inc(
                delta.transactions
            )
            registry.counter(f"bus.{bus.name}.corrupted").inc(delta.corrupted)
            for kind, count in delta.by_kind.items():
                if count:
                    registry.counter(
                        f"bus.{bus.name}.kind.{kind.value}"
                    ).inc(count)
        for state, count in occupancy.items():
            registry.counter(f"cpu.state.{state.value}").inc(count)
            registry.counter(
                f"cpu.state_class.{STATE_CATEGORIES[state]}"
            ).inc(count)
        return result
