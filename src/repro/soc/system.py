"""Wiring of the CPU-memory system used throughout the paper.

A :class:`CpuMemorySystem` owns the 12-bit unidirectional address bus, the
8-bit bidirectional data bus, the memory core, optional memory-mapped
peripheral cores, and a PARWAN-class CPU.  It implements the CPU's
:class:`~repro.cpu.datapath.BusPort`, so every CPU memory access becomes an
address-bus transaction followed by a data-bus transaction — the exact
transition stream the crosstalk error model corrupts.

The memory services the *received* address of each access: a corrupted
address-bus word makes reads return data from the wrong location and writes
land at the wrong location, which is how address-bus crosstalk errors
manifest in the paper (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.cpu.datapath import BusPort, Cpu
from repro.isa.instructions import ADDR_BITS, DATA_BITS, MEMORY_SIZE
from repro.soc.bus import Bus, BusDirection, TransactionKind
from repro.soc.memory import Memory
from repro.soc.mmio import MMIORegion


@dataclass(frozen=True)
class RunResult:
    """Outcome of running the CPU until halt or a cycle budget."""

    halted: bool
    cycles: int
    instructions: int

    @property
    def timed_out(self) -> bool:
        """True when the cycle budget expired before the halt convention."""
        return not self.halted


class CpuMemorySystem(BusPort):
    """The demonstrator SoC: CPU + memory on shared address/data buses.

    Parameters
    ----------
    memory_size:
        Bytes of memory (default: the paper's 4K).
    addr_bits / data_bits:
        Bus widths; defaults match the paper (12-bit address, 8-bit data).
    mmio_regions:
        Optional memory-mapped cores overriding parts of the address space.
    """

    def __init__(
        self,
        memory_size: int = MEMORY_SIZE,
        addr_bits: int = ADDR_BITS,
        data_bits: int = DATA_BITS,
        mmio_regions: Optional[Sequence[MMIORegion]] = None,
    ):
        self.address_bus = Bus("addr", addr_bits)
        self.data_bus = Bus("data", data_bits)
        self.memory = Memory(memory_size)
        self.mmio_regions: List[MMIORegion] = list(mmio_regions or [])
        self.cpu = Cpu(self)
        self.cycle = 0
        self._pending_address = 0

    # -- BusPort implementation ------------------------------------------

    def address_phase(self, address: int, kind: TransactionKind) -> None:
        self._pending_address = self.address_bus.transfer(
            address, BusDirection.CPU_TO_MEM, kind, self.cycle
        )

    def read_phase(self, kind: TransactionKind) -> int:
        value = self._route_read(self._pending_address)
        return self.data_bus.transfer(
            value, BusDirection.MEM_TO_CPU, kind, self.cycle
        )

    def write_phase(self, value: int, kind: TransactionKind) -> None:
        received = self.data_bus.transfer(
            value, BusDirection.CPU_TO_MEM, kind, self.cycle
        )
        self._route_write(self._pending_address, received)

    # -- address decoding --------------------------------------------------

    def _find_region(self, address: int) -> Optional[MMIORegion]:
        for region in self.mmio_regions:
            if region.contains(address):
                return region
        return None

    def _route_read(self, address: int) -> int:
        region = self._find_region(address)
        if region is not None:
            return region.core.read(address - region.base)
        return self.memory.read(address % self.memory.size)

    def _route_write(self, address: int, value: int) -> None:
        region = self._find_region(address)
        if region is not None:
            region.core.write(address - region.base, value)
            return
        self.memory.write(address % self.memory.size, value)

    # -- program control ----------------------------------------------------

    def load_image(self, image: Mapping[int, int]) -> None:
        """Copy a sparse program image into memory."""
        self.memory.load_image(image)

    def reset(self, pc: int = 0) -> None:
        """Reset CPU, clock and bus state (memory content is preserved)."""
        self.cpu.reset(pc)
        self.cycle = 0
        self.address_bus.reset()
        self.data_bus.reset()

    def step(self) -> None:
        """Advance the system by one clock cycle."""
        self.cycle += 1
        self.cpu.tick()

    def run(self, entry: int = 0, max_cycles: int = 1_000_000) -> RunResult:
        """Reset to ``entry`` and clock the CPU until it halts.

        ``max_cycles`` bounds runaway programs — a crosstalk defect can send
        the CPU into an endless loop, which the defect simulator must treat
        as a (detected) abnormal outcome rather than hang.
        """
        self.reset(entry)
        while not self.cpu.halted and self.cycle < max_cycles:
            self.step()
        return RunResult(
            halted=self.cpu.halted,
            cycles=self.cycle,
            instructions=self.cpu.instruction_count,
        )

    def resume(self, max_cycles: int = 1_000_000) -> RunResult:
        """Continue clocking without a reset (for cycle-level inspection)."""
        while not self.cpu.halted and self.cycle < max_cycles:
            self.step()
        return RunResult(
            halted=self.cpu.halted,
            cycles=self.cycle,
            instructions=self.cpu.instruction_count,
        )
