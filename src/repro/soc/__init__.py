"""SoC-level substrate: buses, memory, memory-mapped cores, system wiring.

This package models the system side of the paper's demonstrator: a 12-bit
unidirectional address bus and an 8-bit bidirectional data bus connecting a
PARWAN-class CPU with a 4K byte memory core (and, optionally, memory-mapped
peripheral cores).  Bus accesses are explicit transactions so that the
crosstalk error model in :mod:`repro.xtalk` can corrupt every transition the
way the paper's HDL-level defect simulation environment does.
"""

from repro.soc.bus import Bus, BusDirection, BusTransaction, TransactionKind
from repro.soc.hexfile import HexFormatError, dump_image, load_image
from repro.soc.memory import Memory
from repro.soc.mmio import MMIORegion, RegisterCore, RomCore
from repro.soc.system import CpuMemorySystem, RunResult
from repro.soc.tracer import BusTracer, render_timing_diagram

__all__ = [
    "Bus",
    "BusDirection",
    "BusTransaction",
    "TransactionKind",
    "HexFormatError",
    "dump_image",
    "load_image",
    "Memory",
    "MMIORegion",
    "RegisterCore",
    "RomCore",
    "CpuMemorySystem",
    "RunResult",
    "BusTracer",
    "render_timing_diagram",
]
