"""Tri-state bus model with hold-last-value semantics.

The paper's demonstrator controls bus access with tri-state buffers; when
all buffers are disabled the bus floats (``z``) and is assumed to hold the
last defined value (Section 4.1, Fig. 5).  That assumption matters: the
first vector of a crosstalk test pair is whatever was last driven on the
bus, so the bus model must remember it across transactions.

A :class:`Bus` therefore keeps the last *settled* word.  Each
:meth:`Bus.transfer` is one transaction: the driver puts a new word on the
wires, producing a transition ``(previous, driven)``; an optional crosstalk
error model decides what the receiver actually samples.  Glitches and
delays are transient, so the settled value after the transaction is the
driven word regardless of what the receiver saw.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple


class BusDirection(enum.Enum):
    """Driving direction of a transaction on a (possibly bidirectional) bus."""

    CPU_TO_MEM = "cpu_to_mem"
    MEM_TO_CPU = "mem_to_cpu"


class TransactionKind(enum.Enum):
    """What a bus transaction was for (used by tracing and analysis)."""

    FETCH = "fetch"
    OPERAND_READ = "operand_read"
    OPERAND_WRITE = "operand_write"
    POINTER_READ = "pointer_read"


@dataclass(frozen=True)
class BusTransaction:
    """One recorded bus transaction.

    ``driven`` is the word the driver put on the bus; ``received`` is the
    word sampled at the receiving end (equal to ``driven`` unless a
    crosstalk error corrupted the transition ``previous -> driven``).
    """

    cycle: int
    bus: str
    kind: TransactionKind
    direction: BusDirection
    previous: int
    driven: int
    received: int

    @property
    def corrupted(self) -> bool:
        """True if the receiver sampled a word different from the driven one."""
        return self.received != self.driven


#: Signature of a corruption hook: (previous, driven, direction) -> received.
CorruptionHook = Callable[[int, int, BusDirection], int]


@dataclass(frozen=True)
class BusStats:
    """Cumulative transaction statistics of one bus.

    These are the bus's *native* counters: plain integer increments paid
    on every transfer whether or not observability is enabled, so that
    enabling telemetry does not change the per-transaction cost (the
    observability layer merely snapshots them per run).
    """

    transactions: int
    corrupted: int
    by_kind: Dict[TransactionKind, int]

    def delta(self, earlier: "BusStats") -> "BusStats":
        """Stats accumulated since ``earlier`` was captured."""
        return BusStats(
            transactions=self.transactions - earlier.transactions,
            corrupted=self.corrupted - earlier.corrupted,
            by_kind={
                kind: self.by_kind[kind] - earlier.by_kind.get(kind, 0)
                for kind in self.by_kind
            },
        )


@dataclass(frozen=True)
class BusSnapshot:
    """Complete restorable state of one bus: held word plus native counters.

    Counters are included so a run resumed from a checkpoint reports the
    same cumulative statistics as the full run it shortcuts.  Hooks and
    observers are deliberately *not* part of the snapshot — they are
    wiring, not state, and survive a restore unchanged.
    """

    value: int
    transactions: int
    corrupted: int
    by_kind: Tuple[Tuple[TransactionKind, int], ...]


class Bus:
    """An N-bit bus with hold-last-value semantics and a corruption hook.

    Parameters
    ----------
    name:
        Identifier used in transaction records (e.g. ``"addr"``, ``"data"``).
    width:
        Bus width in bits.
    initial:
        The word the bus is assumed to hold before the first transaction.
    """

    def __init__(self, name: str, width: int, initial: int = 0):
        if width <= 0:
            raise ValueError("bus width must be positive")
        mask = (1 << width) - 1
        if not 0 <= initial <= mask:
            raise ValueError("initial value does not fit the bus width")
        self.name = name
        self.width = width
        self._mask = mask
        self._value = initial
        self._corruption_hook: Optional[CorruptionHook] = None
        self._observers: List[Callable[[BusTransaction], None]] = []
        self._transaction_count = 0
        self._corrupted_count = 0
        # Keyed by TransactionKind.value: string keys have a C-level
        # cached hash, unlike enum members whose __hash__ is a Python
        # call — and transfer() bumps this on every bus word.
        self._kind_counts: Dict[str, int] = {
            kind.value: 0 for kind in TransactionKind
        }

    @property
    def value(self) -> int:
        """The word the bus currently holds (last settled value)."""
        return self._value

    def install_corruption_hook(self, hook: Optional[CorruptionHook]) -> None:
        """Install (or clear, with ``None``) the crosstalk corruption hook."""
        self._corruption_hook = hook

    def add_observer(self, observer: Callable[[BusTransaction], None]) -> None:
        """Register a callback invoked with every completed transaction."""
        self._observers.append(observer)

    def stats(self) -> BusStats:
        """Snapshot of the native transaction counters (since creation)."""
        return BusStats(
            transactions=self._transaction_count,
            corrupted=self._corrupted_count,
            by_kind={kind: self._kind_counts[kind.value] for kind in TransactionKind},
        )

    def reset(self, value: int = 0) -> None:
        """Reset the held word (the corruption hook and observers remain)."""
        if not 0 <= value <= self._mask:
            raise ValueError("reset value does not fit the bus width")
        self._value = value

    def snapshot(self) -> BusSnapshot:
        """Capture the held word and the native counters."""
        return BusSnapshot(
            value=self._value,
            transactions=self._transaction_count,
            corrupted=self._corrupted_count,
            by_kind=tuple(
                (kind, self._kind_counts[kind.value]) for kind in TransactionKind
            ),
        )

    def restore(self, snapshot: BusSnapshot) -> None:
        """Overwrite held word and counters with a snapshot.

        The corruption hook and observers are untouched (as with
        :meth:`reset`), so a caller can restore a checkpoint and then
        install a different defect's hook for the resumed run.
        """
        if not 0 <= snapshot.value <= self._mask:
            raise ValueError("snapshot value does not fit the bus width")
        self._value = snapshot.value
        self._transaction_count = snapshot.transactions
        self._corrupted_count = snapshot.corrupted
        self._kind_counts = {kind.value: 0 for kind in TransactionKind}
        for kind, count in snapshot.by_kind:
            self._kind_counts[kind.value] = count

    def transfer(
        self,
        value: int,
        direction: BusDirection,
        kind: TransactionKind,
        cycle: int,
    ) -> int:
        """Drive ``value`` onto the bus and return the word the receiver sees.

        The transition subjected to the corruption hook is from the last
        settled word to ``value``.  After the call the bus holds ``value``.
        """
        if not 0 <= value <= self._mask:
            raise ValueError(
                f"value {value:#x} does not fit {self.width}-bit bus {self.name!r}"
            )
        previous = self._value
        received = value
        if self._corruption_hook is not None:
            received = self._corruption_hook(previous, value, direction) & self._mask
        self._value = value
        self._transaction_count += 1
        # _value_ is the enum member's plain instance attribute; going
        # through the .value descriptor costs a Python-level call here.
        self._kind_counts[kind._value_] += 1
        if received != value:
            self._corrupted_count += 1
        observers = self._observers
        if observers:
            # Only materialize the transaction record when someone is
            # listening; the no-observer path is the simulation hot loop.
            transaction = BusTransaction(
                cycle=cycle,
                bus=self.name,
                kind=kind,
                direction=direction,
                previous=previous,
                driven=value,
                received=received,
            )
            for observer in observers:
                observer(transaction)
        return received
