"""Memory-mapped I/O cores.

The paper notes (Sections 3 and 6) that the CPU addresses non-memory cores
via memory-mapped I/O, so the same self-test strategy extends to the
CPU-to-core buses.  This module provides simple core models that can be
mapped into the CPU's address space so examples and tests can exercise that
extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence


class MMIOCoreProtocol:
    """Interface expected of a memory-mapped core."""

    def read(self, offset: int) -> int:
        """Return the byte at ``offset`` within the core's window."""
        raise NotImplementedError

    def write(self, offset: int, value: int) -> None:
        """Store ``value`` at ``offset`` within the core's window."""
        raise NotImplementedError


@dataclass
class MMIORegion:
    """A core mapped at ``[base, base + size)`` in the CPU address space."""

    base: int
    size: int
    core: MMIOCoreProtocol
    name: str = "core"

    def contains(self, address: int) -> bool:
        """Return True when ``address`` falls inside this window."""
        return self.base <= address < self.base + self.size


class RegisterCore(MMIOCoreProtocol):
    """A peripheral core exposing a bank of read/write byte registers.

    This is the minimal stand-in for "other cores" of the paper's target
    SoC (Fig. 2): a block whose registers the CPU can exchange test vectors
    with over the shared buses.
    """

    def __init__(self, register_count: int = 16):
        if register_count <= 0:
            raise ValueError("register_count must be positive")
        self.register_count = register_count
        self._registers = bytearray(register_count)
        self.read_count = 0
        self.write_count = 0

    def read(self, offset: int) -> int:
        self._check(offset)
        self.read_count += 1
        return self._registers[offset]

    def write(self, offset: int, value: int) -> None:
        self._check(offset)
        if not 0 <= value < 256:
            raise ValueError("byte out of range")
        self.write_count += 1
        self._registers[offset] = value

    def _check(self, offset: int) -> None:
        if not 0 <= offset < self.register_count:
            raise IndexError(f"register offset out of range: {offset}")

    def snapshot(self) -> bytes:
        """Return a copy of the register bank."""
        return bytes(self._registers)

    def load(self, values: Sequence[int]) -> None:
        """Preset the first ``len(values)`` registers."""
        for offset, value in enumerate(values):
            self.write(offset, value)
        self.read_count = 0
        self.write_count = 0


class RomCore(MMIOCoreProtocol):
    """A read-only core; writes are ignored (as on a real ROM's bus port).

    Useful for modeling the paper's "read-only locations" corner case in
    address-bus testing (Section 3.2): the value stored at a corrupted
    target address may not be controllable.
    """

    def __init__(self, contents: Sequence[int]):
        if not contents:
            raise ValueError("ROM must have at least one byte")
        for value in contents:
            if not 0 <= value < 256:
                raise ValueError("byte out of range")
        self._contents = bytes(contents)
        self.ignored_writes: Dict[int, int] = {}

    def read(self, offset: int) -> int:
        if not 0 <= offset < len(self._contents):
            raise IndexError(f"ROM offset out of range: {offset}")
        return self._contents[offset]

    def write(self, offset: int, value: int) -> None:
        # Writes to a ROM region land nowhere; remember them for tests.
        self.ignored_writes[offset] = value
