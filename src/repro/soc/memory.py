"""The 4K x 8 memory core of the demonstrator system."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.isa.instructions import MEMORY_SIZE


class Memory:
    """A byte-addressable RAM core.

    The paper's demonstrator uses a single 4K instruction/data memory; the
    size is parameterized so synthetic systems (e.g. the bus-width scaling
    experiment) can use other sizes.
    """

    def __init__(self, size: int = MEMORY_SIZE, fill: int = 0x00):
        if size <= 0:
            raise ValueError("memory size must be positive")
        if not 0 <= fill < 256:
            raise ValueError("fill byte out of range")
        self.size = size
        self._fill = fill
        self._cells = bytearray([fill] * size)

    def _check(self, address: int) -> None:
        if not 0 <= address < self.size:
            raise IndexError(f"memory address out of range: {address:#x}")

    def read(self, address: int) -> int:
        """Return the byte stored at ``address``."""
        self._check(address)
        return self._cells[address]

    def write(self, address: int, value: int) -> None:
        """Store ``value`` at ``address``."""
        self._check(address)
        if not 0 <= value < 256:
            raise ValueError(f"byte out of range: {value}")
        self._cells[address] = value

    def load_image(self, image: Mapping[int, int]) -> None:
        """Copy a sparse ``address -> byte`` image into memory."""
        for address, value in image.items():
            self.write(address, value)

    def fill(self, value: int) -> None:
        """Set every cell to ``value``."""
        if not 0 <= value < 256:
            raise ValueError(f"byte out of range: {value}")
        for index in range(self.size):
            self._cells[index] = value

    def snapshot(self) -> bytes:
        """Return an immutable copy of the whole memory content."""
        return bytes(self._cells)

    def restore(self, snapshot: bytes) -> None:
        """Overwrite the whole memory content with a snapshot.

        This is the fast path for resetting memory between defect
        replays (a single ``bytearray`` slice assignment) and for
        restoring checkpoints in the screened simulation engine.
        """
        if len(snapshot) != self.size:
            raise ValueError("snapshot size mismatch")
        self._cells[:] = snapshot

    def region(self, start: int, length: int) -> bytes:
        """Return ``length`` bytes starting at ``start``."""
        self._check(start)
        if length < 0 or start + length > self.size:
            raise IndexError("region out of range")
        return bytes(self._cells[start:start + length])

    def diff(self, other_snapshot: bytes) -> Dict[int, Tuple[int, int]]:
        """Compare current content against a snapshot.

        Returns ``address -> (snapshot byte, current byte)`` for every
        differing cell.
        """
        if len(other_snapshot) != self.size:
            raise ValueError("snapshot size mismatch")
        return {
            index: (other_snapshot[index], self._cells[index])
            for index in range(self.size)
            if other_snapshot[index] != self._cells[index]
        }

    def addresses_with(self, value: int) -> Iterable[int]:
        """Yield every address currently holding ``value``."""
        for index, byte in enumerate(self._cells):
            if byte == value:
                yield index
