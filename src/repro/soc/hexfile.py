"""Intel HEX export/import of program images.

The paper's flow has a low-speed external tester load the self-test
program into on-chip memory and unload the response region afterwards.
This module provides the standard interchange format for that step, so
generated programs can round-trip through real tester tooling.

Only the record types needed for a 4K image are implemented: data
records (type 00) and end-of-file (type 01).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping


class HexFormatError(ValueError):
    """Raised for malformed Intel HEX input."""


def _checksum(record_bytes: Iterable[int]) -> int:
    return (-sum(record_bytes)) & 0xFF


def dump_image(image: Mapping[int, int], record_size: int = 16) -> str:
    """Render a sparse ``address -> byte`` image as Intel HEX text.

    Contiguous byte runs are packed into data records of up to
    ``record_size`` bytes; a type-01 record terminates the file.
    """
    if not 1 <= record_size <= 255:
        raise ValueError("record_size must be in 1..255")
    lines: List[str] = []
    addresses = sorted(image)
    index = 0
    while index < len(addresses):
        start = addresses[index]
        run = [image[start]]
        while (
            index + 1 < len(addresses)
            and addresses[index + 1] == addresses[index] + 1
            and len(run) < record_size
        ):
            index += 1
            run.append(image[addresses[index]])
        index += 1
        record = [len(run), (start >> 8) & 0xFF, start & 0xFF, 0x00] + run
        record.append(_checksum(record))
        lines.append(":" + "".join(f"{byte:02X}" for byte in record))
    lines.append(":00000001FF")
    return "\n".join(lines) + "\n"


def load_image(text: str) -> Dict[int, int]:
    """Parse Intel HEX text back into a sparse image.

    Raises
    ------
    HexFormatError
        On syntax errors, bad checksums, unsupported record types, or a
        missing end-of-file record.
    """
    image: Dict[int, int] = {}
    saw_eof = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if saw_eof:
            raise HexFormatError(f"line {line_number}: data after EOF record")
        if not line.startswith(":"):
            raise HexFormatError(f"line {line_number}: missing ':' start code")
        body = line[1:]
        if len(body) % 2 or len(body) < 10:
            raise HexFormatError(f"line {line_number}: truncated record")
        try:
            record = [int(body[i:i + 2], 16) for i in range(0, len(body), 2)]
        except ValueError as exc:
            raise HexFormatError(f"line {line_number}: bad hex digit") from exc
        count, addr_hi, addr_lo, rtype = record[:4]
        payload = record[4:-1]
        if len(payload) != count:
            raise HexFormatError(f"line {line_number}: length mismatch")
        if _checksum(record[:-1]) != record[-1]:
            raise HexFormatError(f"line {line_number}: checksum mismatch")
        if rtype == 0x01:
            saw_eof = True
            continue
        if rtype != 0x00:
            raise HexFormatError(
                f"line {line_number}: unsupported record type {rtype:#04x}"
            )
        address = (addr_hi << 8) | addr_lo
        for offset, byte in enumerate(payload):
            image[address + offset] = byte
    if not saw_eof:
        raise HexFormatError("missing end-of-file record")
    return image
