"""Bus transaction tracing and Fig. 5-style timing rendering.

Attach a :class:`BusTracer` to a system's buses to capture the full
transaction stream of a program run; :func:`render_timing_diagram` turns a
window of that stream into an ASCII timing diagram equivalent to the
paper's Fig. 5 (the load-instruction bus activity).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.soc.bus import Bus, BusTransaction, TransactionKind


class BusTracer:
    """Records every transaction on the buses it is attached to."""

    def __init__(self, buses: Iterable[Bus] = ()):
        self.transactions: List[BusTransaction] = []
        for bus in buses:
            self.attach(bus)

    def attach(self, bus: Bus) -> None:
        """Start recording ``bus``'s transactions."""
        bus.add_observer(self.transactions.append)

    def clear(self) -> None:
        """Drop all recorded transactions."""
        self.transactions.clear()

    def on_bus(self, name: str) -> List[BusTransaction]:
        """All recorded transactions on the bus called ``name``."""
        return [t for t in self.transactions if t.bus == name]

    def of_kind(self, kind: TransactionKind) -> List[BusTransaction]:
        """All recorded transactions of the given kind."""
        return [t for t in self.transactions if t.kind == kind]

    def corrupted(self) -> List[BusTransaction]:
        """All transactions whose received word differed from the driven one."""
        return [t for t in self.transactions if t.corrupted]

    def transitions_on(self, name: str) -> List[tuple]:
        """``(previous, driven)`` pairs seen on bus ``name``, in order.

        These are exactly the crosstalk-relevant vector pairs: the error
        model judges each ``previous -> driven`` transition.
        """
        return [(t.previous, t.driven) for t in self.on_bus(name)]


def render_timing_diagram(
    transactions: Sequence[BusTransaction],
    start_cycle: Optional[int] = None,
    end_cycle: Optional[int] = None,
) -> str:
    """Render an ASCII timing diagram of the given transactions.

    One column per clock cycle; one row per bus.  Cycles with no
    transaction on a bus show the held (``z``-floating) value, matching the
    hold-last-value assumption of the paper's demonstrator.
    """
    if not transactions:
        return "(no bus activity)"
    cycles = [t.cycle for t in transactions]
    first = start_cycle if start_cycle is not None else min(cycles)
    last = end_cycle if end_cycle is not None else max(cycles)
    bus_names = sorted({t.bus for t in transactions})
    widths = {t.bus: max(3, (len(f"{t.driven:x}"))) for t in transactions}
    for t in transactions:
        widths[t.bus] = max(widths[t.bus], len(f"{t.driven:x}"))
    column = max(widths.values()) + 1

    header = "cycle".ljust(8) + "".join(
        str(c).rjust(column) for c in range(first, last + 1)
    )
    lines = [header]
    for name in bus_names:
        held = {}
        value = None
        by_cycle = {t.cycle: t for t in transactions if t.bus == name}
        row = [name.ljust(8)]
        for cycle in range(first, last + 1):
            t = by_cycle.get(cycle)
            if t is not None:
                value = t.driven
                text = f"{value:x}"
                if t.corrupted:
                    text += "*"
            elif value is None:
                text = "z"
            else:
                text = f"({value:x})"
            row.append(text.rjust(column))
            held[cycle] = value
        lines.append("".join(row))
    lines.append("")
    lines.append("(n) = value held by the floating bus; * = corrupted at receiver")
    return "\n".join(lines)
