"""Bus transaction tracing and Fig. 5-style timing rendering.

Attach a :class:`BusTracer` to a system's buses to capture the full
transaction stream of a program run; :func:`render_timing_diagram` turns a
window of that stream into an ASCII timing diagram equivalent to the
paper's Fig. 5 (the load-instruction bus activity).

For long campaigns (1000 defects replaying the full self-test program),
an unbounded capture would grow without limit; pass ``max_transactions``
to keep only the newest window in a ring buffer and count what was
dropped instead of silently accumulating.  A captured stream can be
exported as JSON Lines with :meth:`BusTracer.export_jsonl` and read back
with :func:`load_jsonl` — the interchange format ``repro-sbst profile
--trace`` emits.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterable, List, Optional, Sequence, Union

from repro.obs import runtime as obs_runtime
from repro.soc.bus import Bus, BusDirection, BusTransaction, TransactionKind


class BusTracer:
    """Records transactions on the buses it is attached to.

    Parameters
    ----------
    buses:
        Buses to attach immediately (more can follow via :meth:`attach`).
    max_transactions:
        If given, keep only the newest ``max_transactions`` records
        (ring buffer); :attr:`dropped` counts evicted ones, mirrored to
        the ``bus.trace.dropped`` metric when observability is enabled.
    """

    def __init__(
        self,
        buses: Iterable[Bus] = (),
        max_transactions: Optional[int] = None,
    ):
        if max_transactions is not None and max_transactions <= 0:
            raise ValueError("max_transactions must be positive")
        self.max_transactions = max_transactions
        self.dropped = 0
        if max_transactions is None:
            self.transactions: Union[List[BusTransaction],
                                     "deque[BusTransaction]"] = []
        else:
            self.transactions = deque(maxlen=max_transactions)
        for bus in buses:
            self.attach(bus)

    def attach(self, bus: Bus) -> None:
        """Start recording ``bus``'s transactions."""
        bus.add_observer(self._record)

    def _record(self, transaction: BusTransaction) -> None:
        limit = self.max_transactions
        if limit is not None and len(self.transactions) == limit:
            # deque(maxlen=...) evicts the oldest record on append.
            self.dropped += 1
            obs_runtime.registry().counter("bus.trace.dropped").inc()
        self.transactions.append(transaction)

    @property
    def captured(self) -> int:
        """Records currently held (excludes dropped ones)."""
        return len(self.transactions)

    def clear(self) -> None:
        """Drop all recorded transactions (and the dropped count)."""
        self.transactions.clear()
        self.dropped = 0

    def on_bus(self, name: str) -> List[BusTransaction]:
        """All recorded transactions on the bus called ``name``."""
        return [t for t in self.transactions if t.bus == name]

    def of_kind(self, kind: TransactionKind) -> List[BusTransaction]:
        """All recorded transactions of the given kind."""
        return [t for t in self.transactions if t.kind == kind]

    def corrupted(self) -> List[BusTransaction]:
        """All transactions whose received word differed from the driven one."""
        return [t for t in self.transactions if t.corrupted]

    def transitions_on(self, name: str) -> List[tuple]:
        """``(previous, driven)`` pairs seen on bus ``name``, in order.

        These are exactly the crosstalk-relevant vector pairs: the error
        model judges each ``previous -> driven`` transition.
        """
        return [(t.previous, t.driven) for t in self.on_bus(name)]

    # -- interchange --------------------------------------------------------

    def export_jsonl(self, target: Union[str, Path, IO[str]]) -> int:
        """Write the captured stream as JSON Lines; returns record count."""
        return dump_jsonl(self.transactions, target)


def transaction_to_dict(transaction: BusTransaction) -> dict:
    """JSON-ready representation of one transaction."""
    return {
        "cycle": transaction.cycle,
        "bus": transaction.bus,
        "kind": transaction.kind.value,
        "direction": transaction.direction.value,
        "previous": transaction.previous,
        "driven": transaction.driven,
        "received": transaction.received,
    }


def transaction_from_dict(payload: dict) -> BusTransaction:
    """Inverse of :func:`transaction_to_dict`."""
    return BusTransaction(
        cycle=payload["cycle"],
        bus=payload["bus"],
        kind=TransactionKind(payload["kind"]),
        direction=BusDirection(payload["direction"]),
        previous=payload["previous"],
        driven=payload["driven"],
        received=payload["received"],
    )


def dump_jsonl(
    transactions: Iterable[BusTransaction],
    target: Union[str, Path, IO[str]],
) -> int:
    """Write transactions to ``target`` (path or stream), one per line."""
    if hasattr(target, "write"):
        stream = target
        close = False
    else:
        stream = open(target, "w", encoding="utf-8")
        close = True
    count = 0
    try:
        for transaction in transactions:
            stream.write(json.dumps(transaction_to_dict(transaction)))
            stream.write("\n")
            count += 1
    finally:
        if close:
            stream.close()
    return count


def load_jsonl(source: Union[str, Path, IO[str]]) -> List[BusTransaction]:
    """Read a JSONL trace back into transaction records."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    return [
        transaction_from_dict(json.loads(line))
        for line in lines
        if line.strip()
    ]


def render_timing_diagram(
    transactions: Sequence[BusTransaction],
    start_cycle: Optional[int] = None,
    end_cycle: Optional[int] = None,
) -> str:
    """Render an ASCII timing diagram of the given transactions.

    One column per clock cycle; one row per bus.  Cycles with no
    transaction on a bus show the held (``z``-floating) value, matching the
    hold-last-value assumption of the paper's demonstrator.
    """
    if not transactions:
        return "(no bus activity)"
    cycles = [t.cycle for t in transactions]
    first = start_cycle if start_cycle is not None else min(cycles)
    last = end_cycle if end_cycle is not None else max(cycles)
    bus_names = sorted({t.bus for t in transactions})
    widths = {t.bus: max(3, (len(f"{t.driven:x}"))) for t in transactions}
    for t in transactions:
        widths[t.bus] = max(widths[t.bus], len(f"{t.driven:x}"))
    column = max(widths.values()) + 1

    header = "cycle".ljust(8) + "".join(
        str(c).rjust(column) for c in range(first, last + 1)
    )
    lines = [header]
    for name in bus_names:
        held = {}
        value = None
        by_cycle = {t.cycle: t for t in transactions if t.bus == name}
        row = [name.ljust(8)]
        for cycle in range(first, last + 1):
            t = by_cycle.get(cycle)
            if t is not None:
                value = t.driven
                text = f"{value:x}"
                if t.corrupted:
                    text += "*"
            elif value is None:
                text = "z"
            else:
                text = f"({value:x})"
            row.append(text.rjust(column))
            held[cycle] = value
        lines.append("".join(row))
    lines.append("")
    lines.append("(n) = value held by the floating bus; * = corrupted at receiver")
    return "\n".join(lines)
