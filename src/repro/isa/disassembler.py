"""Disassembly of PARWAN-class memory images.

Used by the analysis/reporting layer to render generated self-test programs
as human-readable listings (useful when inspecting the scattered program
images produced by the address-bus test builders).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.isa.encoding import (
    EncodingError,
    Instruction,
    decode,
    instruction_length_from_first_byte,
)


def disassemble_one(
    image: Dict[int, int], address: int
) -> Tuple[Optional[Instruction], int]:
    """Decode the instruction starting at ``address`` in ``image``.

    Returns ``(instruction, length)``.  If the bytes do not form a valid
    instruction (or the image has a hole), returns ``(None, 1)`` so callers
    can resynchronize byte by byte.
    """
    byte1 = image.get(address)
    if byte1 is None:
        return None, 1
    length = instruction_length_from_first_byte(byte1)
    byte2 = image.get(address + 1) if length == 2 else None
    if length == 2 and byte2 is None:
        return None, 1
    try:
        return decode(byte1, byte2), length
    except EncodingError:
        return None, 1


def disassemble_image(
    image: Dict[int, int], start: Optional[int] = None, limit: Optional[int] = None
) -> List[str]:
    """Produce a listing of ``image`` starting at ``start``.

    Contiguous runs of bytes are decoded linearly; holes in the image break
    runs.  Undecodable bytes are listed as ``.byte`` lines.  ``limit`` caps
    the number of emitted lines.
    """
    lines: List[str] = []
    addresses = sorted(image)
    if not addresses:
        return lines
    position = start if start is not None else addresses[0]
    seen = set()
    for base in addresses:
        if base in seen or base < position:
            continue
        cursor = max(base, position)
        while cursor in image and cursor not in seen:
            instruction, length = disassemble_one(image, cursor)
            if instruction is None:
                lines.append(f"{cursor:#05x}: .byte {image[cursor]:#04x}")
                seen.add(cursor)
                cursor += 1
            else:
                raw = " ".join(
                    f"{image[cursor + i]:02x}" for i in range(length)
                )
                lines.append(f"{cursor:#05x}: {raw:<6} {instruction}")
                seen.update(range(cursor, cursor + length))
                cursor += length
            if limit is not None and len(lines) >= limit:
                return lines
    return lines


def format_listing(lines: Iterable[str]) -> str:
    """Join listing lines into one printable block."""
    return "\n".join(lines)
