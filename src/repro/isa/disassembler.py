"""Disassembly of PARWAN-class memory images.

Used by the analysis/reporting layer to render generated self-test programs
as human-readable listings (useful when inspecting the scattered program
images produced by the address-bus test builders).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.isa.encoding import (
    EncodingError,
    Instruction,
    decode,
    instruction_length_from_first_byte,
)


def instruction_bytes(
    image: Mapping[int, int],
    address: int,
    memory_size: int = 4096,
    fill: Optional[int] = None,
) -> Tuple[Optional[int], Optional[int], bool]:
    """Fetch the raw byte(s) of the instruction starting at ``address``.

    Returns ``(byte1, byte2, from_hole)``.  ``byte2`` is ``None`` for
    one-byte instructions.  Holes in the image read as ``fill`` when one
    is given (the memory core's power-on value), else as ``None``;
    ``from_hole`` reports whether any consumed byte came from a hole —
    the control-flow walkers use it to flag fall-through into unplaced
    memory.
    """
    address %= memory_size
    byte1 = image.get(address, fill)
    from_hole = address not in image
    if byte1 is None:
        return None, None, from_hole
    if instruction_length_from_first_byte(byte1) == 1:
        return byte1, None, from_hole
    second = (address + 1) % memory_size
    byte2 = image.get(second, fill)
    from_hole = from_hole or second not in image
    return byte1, byte2, from_hole


def disassemble_one(
    image: Dict[int, int], address: int
) -> Tuple[Optional[Instruction], int]:
    """Decode the instruction starting at ``address`` in ``image``.

    Returns ``(instruction, length)``.  If the bytes do not form a valid
    instruction (or the image has a hole), returns ``(None, 1)`` so callers
    can resynchronize byte by byte.
    """
    byte1 = image.get(address)
    if byte1 is None:
        return None, 1
    length = instruction_length_from_first_byte(byte1)
    byte2 = image.get(address + 1) if length == 2 else None
    if length == 2 and byte2 is None:
        return None, 1
    try:
        return decode(byte1, byte2), length
    except EncodingError:
        return None, 1


def strict_decode_at(
    image: Mapping[int, int],
    address: int,
    memory_size: int = 4096,
    fill: Optional[int] = None,
) -> Optional[Instruction]:
    """Strictly decode the instruction at ``address``, or ``None``.

    Unlike :func:`disassemble_one` this honours ``fill`` for image holes
    and wraps addresses, matching what the hardware would actually fetch;
    it still applies the *strict* decoder, so encodings the permissive
    control unit would accept (undefined implied sub-opcodes, multi-bit
    branch masks) come back as ``None``.  The static analyzer compares
    this against the permissive decode to spot adopted bytes that changed
    instruction semantics.
    """
    byte1, byte2, _ = instruction_bytes(image, address, memory_size, fill)
    if byte1 is None:
        return None
    if instruction_length_from_first_byte(byte1) == 2 and byte2 is None:
        return None
    try:
        return decode(byte1, byte2)
    except EncodingError:
        return None


def disassemble_image(
    image: Dict[int, int], start: Optional[int] = None, limit: Optional[int] = None
) -> List[str]:
    """Produce a listing of ``image`` starting at ``start``.

    Contiguous runs of bytes are decoded linearly; holes in the image break
    runs.  Undecodable bytes are listed as ``.byte`` lines.  ``limit`` caps
    the number of emitted lines.
    """
    lines: List[str] = []
    addresses = sorted(image)
    if not addresses:
        return lines
    position = start if start is not None else addresses[0]
    seen = set()
    for base in addresses:
        if base in seen or base < position:
            continue
        cursor = max(base, position)
        while cursor in image and cursor not in seen:
            instruction, length = disassemble_one(image, cursor)
            if instruction is None:
                lines.append(f"{cursor:#05x}: .byte {image[cursor]:#04x}")
                seen.add(cursor)
                cursor += 1
            else:
                raw = " ".join(
                    f"{image[cursor + i]:02x}" for i in range(length)
                )
                lines.append(f"{cursor:#05x}: {raw:<6} {instruction}")
                seen.update(range(cursor, cursor + length))
                cursor += length
            if limit is not None and len(lines) >= limit:
                return lines
    return lines


def format_listing(lines: Iterable[str]) -> str:
    """Join listing lines into one printable block."""
    return "\n".join(lines)
