"""A small two-pass assembler for the PARWAN-class ISA.

The assembler exists so that examples and tests can express self-test
programs (and ordinary programs) readably.  The SBST program builders in
:mod:`repro.core` emit instructions through :mod:`repro.isa.encoding`
directly, because they need byte-exact placement control.

Syntax
------
* One statement per line; ``;`` starts a comment.
* ``label:`` defines a symbol at the current location counter.
* Directives:

  - ``.org ADDRESS`` — set the location counter.
  - ``.byte V1, V2, ...`` — emit literal bytes.

* Instructions use the spec names from :mod:`repro.isa.instructions`:
  ``lda``, ``lda@`` (indirect), ..., ``bra_z``, ``nop``.
* Memory operands are ``page:offset`` (each hex ``0x..``/decimal), a plain
  12-bit number, or a label.  Branch operands are an 8-bit offset or a
  label on the same page as the branch target slot.

Numbers accept ``0x`` (hex), ``0b`` (binary) and decimal forms.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.encoding import (
    Instruction,
    encode,
    make_address,
    page_of,
)
from repro.isa.instructions import (
    Format,
    MEMORY_SIZE,
    Mnemonic,
)

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

_SPEC_NAMES = {}
for _m in Mnemonic:
    _SPEC_NAMES[_m.value] = (_m, False)
for _m in (
    Mnemonic.LDA,
    Mnemonic.AND,
    Mnemonic.ADD,
    Mnemonic.SUB,
    Mnemonic.JMP,
    Mnemonic.STA,
):
    _SPEC_NAMES[_m.value + "@"] = (_m, True)


class AssemblyError(ValueError):
    """Raised on any assembly problem, with the offending line number."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


@dataclass
class AssembledProgram:
    """Result of assembling a source text.

    Attributes
    ----------
    image:
        Sparse memory image mapping address -> byte value.
    symbols:
        Label name -> address.
    entry:
        Suggested entry point (address of the first emitted byte).
    listing:
        ``(address, bytes, source line)`` triples for human inspection.
    """

    image: Dict[int, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = 0
    listing: List[Tuple[int, Tuple[int, ...], str]] = field(default_factory=list)


@dataclass
class _Statement:
    line_number: int
    source: str
    labels: List[str]
    op: Optional[str]  # directive (".org") or instruction name
    operand_text: Optional[str]
    address: int = 0  # filled in pass 1


def _parse_number(text: str, line_number: int) -> int:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError(line_number, f"bad number: {text!r}") from None


class Assembler:
    """Two-pass assembler.  Use :func:`assemble` for the one-shot form."""

    def __init__(self) -> None:
        self._statements: List[_Statement] = []

    # -- pass 0: line parsing -------------------------------------------

    def _parse_line(self, line_number: int, raw: str) -> Optional[_Statement]:
        text = raw.split(";", 1)[0].rstrip()
        if not text.strip():
            return None
        labels = []
        while True:
            stripped = text.lstrip()
            match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*):", stripped)
            if not match:
                break
            labels.append(match.group(1))
            text = stripped[match.end():]
        body = text.strip()
        if not body:
            return _Statement(line_number, raw, labels, None, None)
        parts = body.split(None, 1)
        op = parts[0].lower()
        operand_text = parts[1].strip() if len(parts) > 1 else None
        return _Statement(line_number, raw, labels, op, operand_text)

    def _statement_size(self, stmt: _Statement) -> int:
        if stmt.op is None:
            return 0
        if stmt.op == ".org":
            return 0
        if stmt.op == ".byte":
            if not stmt.operand_text:
                raise AssemblyError(stmt.line_number, ".byte needs at least one value")
            return len(stmt.operand_text.split(","))
        if stmt.op in _SPEC_NAMES:
            mnemonic, indirect = _SPEC_NAMES[stmt.op]
            return Instruction(mnemonic, indirect, operand=0).spec.length
        raise AssemblyError(stmt.line_number, f"unknown instruction: {stmt.op!r}")

    # -- operand resolution ---------------------------------------------

    def _resolve_address(
        self, text: str, symbols: Dict[str, int], line_number: int
    ) -> int:
        text = text.strip()
        if _LABEL_RE.match(text):
            if text not in symbols:
                raise AssemblyError(line_number, f"undefined label: {text!r}")
            return symbols[text]
        if ":" in text:
            page_text, offset_text = text.split(":", 1)
            page = _parse_number(page_text, line_number)
            offset = _parse_number(offset_text, line_number)
            if not 0 <= page < 16 or not 0 <= offset < 256:
                raise AssemblyError(line_number, f"address out of range: {text!r}")
            return make_address(page, offset)
        value = _parse_number(text, line_number)
        if not 0 <= value < MEMORY_SIZE:
            raise AssemblyError(line_number, f"address out of range: {text!r}")
        return value

    # -- public API -------------------------------------------------------

    def assemble(self, source: str) -> AssembledProgram:
        """Assemble ``source`` and return the program image."""
        statements = []
        for index, raw in enumerate(source.splitlines(), start=1):
            stmt = self._parse_line(index, raw)
            if stmt is not None:
                statements.append(stmt)

        # Pass 1: location counting and symbol definition.
        program = AssembledProgram()
        location = 0
        first_emit: Optional[int] = None
        for stmt in statements:
            if stmt.op == ".org":
                if not stmt.operand_text:
                    raise AssemblyError(stmt.line_number, ".org needs an address")
                location = _parse_number(stmt.operand_text, stmt.line_number)
                if not 0 <= location < MEMORY_SIZE:
                    raise AssemblyError(stmt.line_number, "org address out of range")
            stmt.address = location
            for label in stmt.labels:
                if label in program.symbols:
                    raise AssemblyError(stmt.line_number, f"duplicate label {label!r}")
                program.symbols[label] = location
            size = self._statement_size(stmt)
            if size and first_emit is None:
                first_emit = location
            location += size
            if location > MEMORY_SIZE:
                raise AssemblyError(stmt.line_number, "program overflows memory")

        # Pass 2: encoding.
        for stmt in statements:
            if stmt.op is None or stmt.op == ".org":
                continue
            if stmt.op == ".byte":
                values = []
                for chunk in stmt.operand_text.split(","):
                    value = _parse_number(chunk, stmt.line_number)
                    if not 0 <= value < 256:
                        raise AssemblyError(
                            stmt.line_number, f"byte out of range: {chunk.strip()!r}"
                        )
                    values.append(value)
                encoded = tuple(values)
            else:
                mnemonic, indirect = _SPEC_NAMES[stmt.op]
                instruction = self._build_instruction(
                    mnemonic, indirect, stmt, program.symbols
                )
                encoded = encode(instruction)
            self._emit(program, stmt, encoded)

        program.entry = first_emit or 0
        return program

    def _build_instruction(
        self,
        mnemonic: Mnemonic,
        indirect: bool,
        stmt: _Statement,
        symbols: Dict[str, int],
    ) -> Instruction:
        probe = Instruction(mnemonic, indirect, operand=0)
        spec = probe.spec
        if spec.format is Format.IMPLIED:
            if stmt.operand_text:
                raise AssemblyError(stmt.line_number, f"{stmt.op} takes no operand")
            return Instruction(mnemonic, indirect)
        if not stmt.operand_text:
            raise AssemblyError(stmt.line_number, f"{stmt.op} needs an operand")
        address = self._resolve_address(stmt.operand_text, symbols, stmt.line_number)
        if spec.format is Format.BRANCH:
            if address >= 256:
                # A full address was given; the branch can only encode the
                # offset, and the hardware branches within the page of the
                # *following* instruction, so require page agreement.
                branch_page = page_of(stmt.address + spec.length)
                if page_of(address) != branch_page:
                    raise AssemblyError(
                        stmt.line_number,
                        "branch target must be on the same page as the branch",
                    )
                address = address & 0xFF
            return Instruction(mnemonic, operand=address)
        return Instruction(mnemonic, indirect, operand=address)

    def _emit(
        self, program: AssembledProgram, stmt: _Statement, encoded: Tuple[int, ...]
    ) -> None:
        for index, byte in enumerate(encoded):
            address = stmt.address + index
            if address in program.image and program.image[address] != byte:
                raise AssemblyError(
                    stmt.line_number,
                    f"overlapping emission at {address:#05x}",
                )
            program.image[address] = byte
        program.listing.append((stmt.address, encoded, stmt.source))


def assemble(source: str) -> AssembledProgram:
    """Assemble ``source`` text into an :class:`AssembledProgram`."""
    return Assembler().assemble(source)
