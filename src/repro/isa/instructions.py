"""Instruction metadata for the PARWAN-class processor.

The processor is an 8-bit accumulator machine with a 12-bit address space
(4-bit page, 8-bit offset).  Its 23 instructions fall into three formats:

``MEMREF`` (two bytes)
    ``LDA``, ``AND``, ``ADD``, ``SUB``, ``JMP``, ``STA`` in direct and
    indirect form (12 instructions) and ``JSR`` (direct only).
    Byte 1 carries a 3-bit opcode, the indirect flag, and the 4-bit page
    number of the operand address; byte 2 carries the 8-bit offset.

``BRANCH`` (two bytes)
    ``BRA_V``, ``BRA_C``, ``BRA_Z``, ``BRA_N`` — branch within the current
    page when the selected status flag is set.  Byte 1 is ``1110`` plus a
    4-bit condition mask (V, C, Z, N); byte 2 is the target offset.

``IMPLIED`` (one byte)
    ``NOP``, ``CLA``, ``CMA``, ``CMC``, ``ASL``, ``ASR`` — byte 1 is
    ``1111`` plus a 4-bit sub-opcode.

That is 12 + 1 + 4 + 6 = 23 instructions, matching the paper's description
of the demonstrator CPU ("an 8-bit accumulator-based multi-cycle processor
core with 23 instructions").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Width of the data bus in bits.
DATA_BITS = 8
#: Width of the address bus in bits.
ADDR_BITS = 12
#: Bits of the page number (upper part of an address).
PAGE_BITS = 4
#: Bits of the in-page offset (lower part of an address).
OFFSET_BITS = 8
#: Size of the directly addressable memory in bytes.
MEMORY_SIZE = 1 << ADDR_BITS


class Format(enum.Enum):
    """Binary format of an instruction."""

    MEMREF = "memref"
    BRANCH = "branch"
    IMPLIED = "implied"


class Mnemonic(enum.Enum):
    """All PARWAN-class mnemonics (addressing mode excluded)."""

    LDA = "lda"
    AND = "and"
    ADD = "add"
    SUB = "sub"
    JMP = "jmp"
    STA = "sta"
    JSR = "jsr"
    BRA_V = "bra_v"
    BRA_C = "bra_c"
    BRA_Z = "bra_z"
    BRA_N = "bra_n"
    NOP = "nop"
    CLA = "cla"
    CMA = "cma"
    CMC = "cmc"
    ASL = "asl"
    ASR = "asr"


#: 3-bit major opcodes of the MEMREF instructions (byte 1, bits 7..5).
MEMREF_OPCODES = {
    Mnemonic.LDA: 0b000,
    Mnemonic.AND: 0b001,
    Mnemonic.ADD: 0b010,
    Mnemonic.SUB: 0b011,
    Mnemonic.JMP: 0b100,
    Mnemonic.STA: 0b101,
    Mnemonic.JSR: 0b110,
}

#: Condition-mask nibbles of the branch instructions (byte 1, bits 3..0).
#: Bit 3 selects V, bit 2 selects C, bit 1 selects Z, bit 0 selects N.
BRANCH_MASKS = {
    Mnemonic.BRA_V: 0b1000,
    Mnemonic.BRA_C: 0b0100,
    Mnemonic.BRA_Z: 0b0010,
    Mnemonic.BRA_N: 0b0001,
}

#: Sub-opcode nibbles of the implied instructions (byte 1, bits 3..0).
IMPLIED_SUBOPS = {
    Mnemonic.NOP: 0b0000,
    Mnemonic.CLA: 0b0001,
    Mnemonic.CMA: 0b0010,
    Mnemonic.CMC: 0b0100,
    Mnemonic.ASL: 0b1000,
    Mnemonic.ASR: 0b1001,
}


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one instruction variant.

    Attributes
    ----------
    mnemonic:
        The instruction mnemonic.
    format:
        Binary format (determines the instruction length).
    indirect:
        True for the indirect-addressing variant of a MEMREF instruction.
    reads_memory:
        True if execution performs a memory-read bus transaction beyond the
        instruction fetch (``LDA``, ``AND``, ``ADD``, ``SUB`` and every
        indirect variant's pointer fetch).
    writes_memory:
        True if execution performs a memory-write bus transaction
        (``STA``, ``JSR``).
    sets_flags:
        Status flags (subset of ``"VCZN"``) updated by execution.
    description:
        One-line human description.
    """

    mnemonic: Mnemonic
    format: Format
    indirect: bool
    reads_memory: bool
    writes_memory: bool
    sets_flags: str
    description: str

    @property
    def length(self) -> int:
        """Instruction length in bytes (1 for IMPLIED, otherwise 2)."""
        return 1 if self.format is Format.IMPLIED else 2

    @property
    def name(self) -> str:
        """Assembler-facing name, e.g. ``"lda"`` or ``"lda@"``."""
        suffix = "@" if self.indirect else ""
        return self.mnemonic.value + suffix


def _memref(mnemonic, indirect, reads, writes, flags, description):
    return InstructionSpec(
        mnemonic=mnemonic,
        format=Format.MEMREF,
        indirect=indirect,
        reads_memory=reads or indirect,
        writes_memory=writes,
        sets_flags=flags,
        description=description,
    )


def _build_instruction_set():
    """Construct the full 23-entry instruction registry."""
    specs = []
    memref_info = [
        (Mnemonic.LDA, True, False, "ZN", "load memory into AC"),
        (Mnemonic.AND, True, False, "ZN", "AND memory into AC"),
        (Mnemonic.ADD, True, False, "VCZN", "add memory into AC"),
        (Mnemonic.SUB, True, False, "VCZN", "subtract memory from AC"),
        (Mnemonic.JMP, False, False, "", "jump to address"),
        (Mnemonic.STA, False, True, "", "store AC to memory"),
    ]
    for mnemonic, reads, writes, flags, description in memref_info:
        specs.append(_memref(mnemonic, False, reads, writes, flags, description))
        specs.append(
            _memref(mnemonic, True, reads, writes, flags, description + " (indirect)")
        )
    specs.append(
        _memref(
            Mnemonic.JSR,
            False,
            False,
            True,
            "",
            "store return offset at target, jump to target+1",
        )
    )
    branch_info = [
        (Mnemonic.BRA_V, "branch in page if overflow flag set"),
        (Mnemonic.BRA_C, "branch in page if carry flag set"),
        (Mnemonic.BRA_Z, "branch in page if zero flag set"),
        (Mnemonic.BRA_N, "branch in page if negative flag set"),
    ]
    for mnemonic, description in branch_info:
        specs.append(
            InstructionSpec(
                mnemonic=mnemonic,
                format=Format.BRANCH,
                indirect=False,
                reads_memory=False,
                writes_memory=False,
                sets_flags="",
                description=description,
            )
        )
    implied_info = [
        (Mnemonic.NOP, "", "no operation"),
        (Mnemonic.CLA, "", "clear AC"),
        (Mnemonic.CMA, "ZN", "complement AC"),
        (Mnemonic.CMC, "C", "complement carry flag"),
        (Mnemonic.ASL, "VCZN", "arithmetic shift AC left"),
        (Mnemonic.ASR, "CZN", "arithmetic shift AC right"),
    ]
    for mnemonic, flags, description in implied_info:
        specs.append(
            InstructionSpec(
                mnemonic=mnemonic,
                format=Format.IMPLIED,
                indirect=False,
                reads_memory=False,
                writes_memory=False,
                sets_flags=flags,
                description=description,
            )
        )
    return tuple(specs)


#: The complete instruction registry (23 entries).
INSTRUCTION_SET = _build_instruction_set()

_BY_NAME = {spec.name: spec for spec in INSTRUCTION_SET}


def instruction_count() -> int:
    """Return the number of instruction variants (the paper's "23")."""
    return len(INSTRUCTION_SET)


def spec_for(mnemonic: Mnemonic, indirect: bool = False) -> InstructionSpec:
    """Look up the spec for ``mnemonic`` in the requested addressing mode.

    Raises
    ------
    KeyError
        If the mnemonic does not exist in the requested mode (e.g. an
        indirect ``JSR`` or an indirect implied instruction).
    """
    name = mnemonic.value + ("@" if indirect else "")
    return _BY_NAME[name]
