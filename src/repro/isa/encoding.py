"""Binary encoding and decoding of PARWAN-class instructions.

Encoding summary (see :mod:`repro.isa.instructions` for the format list)::

    MEMREF   byte1 = ooo i pppp   byte2 = ffffffff
             ooo  = 3-bit opcode (LDA=000 ... JSR=110)
             i    = indirect flag (must be 0 for JSR)
             pppp = page number of the operand address
             ffffffff = offset of the operand address

    BRANCH   byte1 = 1110 vczn    byte2 = ffffffff (target offset, same page)

    IMPLIED  byte1 = 1111 ssss    (ssss = sub-opcode)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa.instructions import (
    ADDR_BITS,
    BRANCH_MASKS,
    Format,
    IMPLIED_SUBOPS,
    InstructionSpec,
    MEMREF_OPCODES,
    Mnemonic,
    OFFSET_BITS,
    spec_for,
)

_ADDR_MASK = (1 << ADDR_BITS) - 1
_OFFSET_MASK = (1 << OFFSET_BITS) - 1

_MEMREF_BY_OPCODE = {code: m for m, code in MEMREF_OPCODES.items()}
_BRANCH_BY_MASK = {mask: m for m, mask in BRANCH_MASKS.items()}
_IMPLIED_BY_SUBOP = {sub: m for m, sub in IMPLIED_SUBOPS.items()}


class EncodingError(ValueError):
    """Raised for un-encodable operand combinations or undecodable bytes."""


def make_address(page: int, offset: int) -> int:
    """Combine a 4-bit page and an 8-bit offset into a 12-bit address."""
    if not 0 <= page < 16:
        raise EncodingError(f"page out of range: {page}")
    if not 0 <= offset < 256:
        raise EncodingError(f"offset out of range: {offset}")
    return (page << OFFSET_BITS) | offset


def page_of(address: int) -> int:
    """Return the 4-bit page number of a 12-bit address."""
    return (address & _ADDR_MASK) >> OFFSET_BITS


def offset_of(address: int) -> int:
    """Return the 8-bit in-page offset of a 12-bit address."""
    return address & _OFFSET_MASK


@dataclass(frozen=True)
class Instruction:
    """A decoded (or to-be-encoded) instruction.

    ``operand`` is the full 12-bit operand address for MEMREF instructions,
    the 8-bit in-page target offset for BRANCH instructions, and ``None``
    for IMPLIED instructions.
    """

    mnemonic: Mnemonic
    indirect: bool = False
    operand: Optional[int] = None

    @property
    def spec(self) -> InstructionSpec:
        """Return the static spec of this instruction variant.

        Raises :class:`EncodingError` for variants that do not exist
        (e.g. an indirect ``JSR``).
        """
        try:
            return spec_for(self.mnemonic, self.indirect)
        except KeyError as exc:
            raise EncodingError(str(exc)) from exc

    @property
    def length(self) -> int:
        """Instruction length in bytes."""
        return self.spec.length

    def __str__(self) -> str:
        spec = self.spec
        if spec.format is Format.IMPLIED:
            return spec.name
        if spec.format is Format.BRANCH:
            return f"{spec.name} {self.operand:#04x}"
        return f"{spec.name} {page_of(self.operand):x}:{offset_of(self.operand):02x}"


def encode(instruction: Instruction) -> Tuple[int, ...]:
    """Encode ``instruction`` into its byte sequence.

    Returns a 1- or 2-tuple of byte values.

    Raises
    ------
    EncodingError
        On missing/out-of-range operands or an indirect JSR.
    """
    spec = instruction.spec  # raises KeyError for impossible variants
    if spec.format is Format.IMPLIED:
        if instruction.operand is not None:
            raise EncodingError(f"{spec.name} takes no operand")
        return (0b1111_0000 | IMPLIED_SUBOPS[instruction.mnemonic],)
    if instruction.operand is None:
        raise EncodingError(f"{spec.name} requires an operand")
    if spec.format is Format.BRANCH:
        if not 0 <= instruction.operand < 256:
            raise EncodingError(f"branch offset out of range: {instruction.operand}")
        return (
            0b1110_0000 | BRANCH_MASKS[instruction.mnemonic],
            instruction.operand,
        )
    # MEMREF
    if not 0 <= instruction.operand < (1 << ADDR_BITS):
        raise EncodingError(f"address out of range: {instruction.operand:#x}")
    if instruction.mnemonic is Mnemonic.JSR and instruction.indirect:
        raise EncodingError("JSR has no indirect form")
    byte1 = (
        (MEMREF_OPCODES[instruction.mnemonic] << 5)
        | ((1 << 4) if instruction.indirect else 0)
        | page_of(instruction.operand)
    )
    return (byte1, offset_of(instruction.operand))


def first_byte(instruction: Instruction) -> int:
    """Return only the first encoded byte of ``instruction``.

    The SBST address-bus glitch tests (Section 4.2.2 of the paper) plant
    *first bytes* of load instructions at the corrupted target addresses;
    this helper makes those call sites read naturally.
    """
    return encode(instruction)[0]


def decode(byte1: int, byte2: Optional[int] = None) -> Instruction:
    """Decode one instruction from its first byte (and second, if needed).

    ``byte2`` may be omitted for IMPLIED instructions; supplying it for a
    two-byte instruction is mandatory.

    Raises
    ------
    EncodingError
        If ``byte1`` is not a valid first byte or ``byte2`` is missing.
    """
    if not 0 <= byte1 < 256:
        raise EncodingError(f"byte out of range: {byte1}")
    top = byte1 >> 4
    if top == 0b1111:
        sub = byte1 & 0x0F
        if sub not in _IMPLIED_BY_SUBOP:
            raise EncodingError(f"unknown implied sub-opcode: {sub:#x}")
        return Instruction(_IMPLIED_BY_SUBOP[sub])
    if byte2 is None:
        raise EncodingError("second byte required for a two-byte instruction")
    if not 0 <= byte2 < 256:
        raise EncodingError(f"byte out of range: {byte2}")
    if top == 0b1110:
        mask = byte1 & 0x0F
        if mask not in _BRANCH_BY_MASK:
            raise EncodingError(f"unknown branch condition mask: {mask:#x}")
        return Instruction(_BRANCH_BY_MASK[mask], operand=byte2)
    opcode = byte1 >> 5
    mnemonic = _MEMREF_BY_OPCODE[opcode]
    indirect = bool(byte1 & 0x10)
    if mnemonic is Mnemonic.JSR and indirect:
        raise EncodingError("JSR has no indirect form")
    address = make_address(byte1 & 0x0F, byte2)
    return Instruction(mnemonic, indirect=indirect, operand=address)


def instruction_length_from_first_byte(byte1: int) -> int:
    """Return the instruction length implied by a first byte (1 or 2)."""
    return 1 if (byte1 >> 4) == 0b1111 else 2
