"""PARWAN-class instruction set architecture.

This package models the instruction set of the 8-bit accumulator-based
multicycle processor used as the demonstrator in the paper (an implementation
of Navabi's PARWAN processor, "VHDL: Analysis and Modeling of Digital
Systems", McGraw-Hill 1993).  The processor has 23 instructions, an 8-bit
data path and a 12-bit address space organized as 16 pages of 256 bytes.

Modules
-------
``instructions``
    Instruction metadata: mnemonics, formats, flag behaviour.
``encoding``
    Binary encoding and decoding of instructions.
``assembler``
    A small two-pass assembler (labels, ``.org``/``.byte`` directives).
``disassembler``
    Conversion of memory images back into listings.
"""

from repro.isa.instructions import (
    ADDR_BITS,
    DATA_BITS,
    MEMORY_SIZE,
    OFFSET_BITS,
    PAGE_BITS,
    Format,
    InstructionSpec,
    INSTRUCTION_SET,
    Mnemonic,
    instruction_count,
    spec_for,
)
from repro.isa.encoding import (
    Instruction,
    decode,
    encode,
    make_address,
    offset_of,
    page_of,
)
from repro.isa.assembler import AssemblyError, Assembler, assemble
from repro.isa.disassembler import disassemble_image, disassemble_one

__all__ = [
    "ADDR_BITS",
    "DATA_BITS",
    "MEMORY_SIZE",
    "OFFSET_BITS",
    "PAGE_BITS",
    "Format",
    "InstructionSpec",
    "INSTRUCTION_SET",
    "Mnemonic",
    "instruction_count",
    "spec_for",
    "Instruction",
    "decode",
    "encode",
    "make_address",
    "offset_of",
    "page_of",
    "AssemblyError",
    "Assembler",
    "assemble",
    "disassemble_image",
    "disassemble_one",
]
