"""Unit tests for the instruction registry."""

import pytest

from repro.isa.instructions import (
    Format,
    INSTRUCTION_SET,
    Mnemonic,
    instruction_count,
    spec_for,
)


def test_instruction_count_matches_paper():
    # "an 8-bit accumulator-based multi-cycle processor core with 23
    # instructions"
    assert instruction_count() == 23


def test_unique_names():
    names = [spec.name for spec in INSTRUCTION_SET]
    assert len(names) == len(set(names))


def test_memref_direct_and_indirect_variants():
    for mnemonic in (
        Mnemonic.LDA,
        Mnemonic.AND,
        Mnemonic.ADD,
        Mnemonic.SUB,
        Mnemonic.JMP,
        Mnemonic.STA,
    ):
        direct = spec_for(mnemonic)
        indirect = spec_for(mnemonic, indirect=True)
        assert direct.format is Format.MEMREF
        assert indirect.indirect
        assert direct.length == 2
        assert indirect.length == 2


def test_jsr_has_no_indirect_variant():
    assert spec_for(Mnemonic.JSR).format is Format.MEMREF
    with pytest.raises(KeyError):
        spec_for(Mnemonic.JSR, indirect=True)


def test_implied_instructions_are_one_byte():
    for mnemonic in (
        Mnemonic.NOP,
        Mnemonic.CLA,
        Mnemonic.CMA,
        Mnemonic.CMC,
        Mnemonic.ASL,
        Mnemonic.ASR,
    ):
        spec = spec_for(mnemonic)
        assert spec.format is Format.IMPLIED
        assert spec.length == 1


def test_branches_are_two_bytes_and_set_nothing():
    for mnemonic in (
        Mnemonic.BRA_V,
        Mnemonic.BRA_C,
        Mnemonic.BRA_Z,
        Mnemonic.BRA_N,
    ):
        spec = spec_for(mnemonic)
        assert spec.format is Format.BRANCH
        assert spec.length == 2
        assert spec.sets_flags == ""


def test_memory_behaviour_flags():
    assert spec_for(Mnemonic.LDA).reads_memory
    assert not spec_for(Mnemonic.LDA).writes_memory
    assert spec_for(Mnemonic.STA).writes_memory
    assert spec_for(Mnemonic.JSR).writes_memory
    assert not spec_for(Mnemonic.JMP).reads_memory
    # Indirect variants always read (pointer fetch).
    assert spec_for(Mnemonic.STA, indirect=True).reads_memory


def test_flag_annotations():
    assert spec_for(Mnemonic.ADD).sets_flags == "VCZN"
    assert spec_for(Mnemonic.AND).sets_flags == "ZN"
    assert spec_for(Mnemonic.CMC).sets_flags == "C"
    assert spec_for(Mnemonic.ASL).sets_flags == "VCZN"
