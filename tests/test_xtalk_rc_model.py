"""Unit tests for the lumped RC estimators."""

import pytest

from repro.soc.bus import BusDirection
from repro.xtalk.capacitance import extract_capacitance
from repro.xtalk.geometry import BusGeometry
from repro.xtalk.params import ElectricalParams
from repro.xtalk.rc_model import (
    TransitionKindBits,
    classify_transition,
    glitch_voltage,
    miller_factor,
    transition_delay,
    worst_case_delay,
    worst_case_glitch,
)


@pytest.fixture
def caps():
    return extract_capacitance(BusGeometry.uniform(4))


@pytest.fixture
def params():
    return ElectricalParams()


def test_classify_transition():
    kinds = classify_transition(0b0101, 0b0011, 4)
    assert kinds[0] is TransitionKindBits.STABLE1
    assert kinds[1] is TransitionKindBits.RISING
    assert kinds[2] is TransitionKindBits.FALLING
    assert kinds[3] is TransitionKindBits.STABLE0


def test_miller_factors():
    rising = TransitionKindBits.RISING
    falling = TransitionKindBits.FALLING
    stable = TransitionKindBits.STABLE0
    assert miller_factor(rising, rising) == 0.0
    assert miller_factor(rising, falling) == 2.0
    assert miller_factor(rising, stable) == 1.0


def test_glitch_sign_and_magnitude(caps, params):
    # Victim 1 stable 0, both neighbours rising -> positive glitch.
    kinds = classify_transition(0b0000, 0b1101, 4)
    voltage = glitch_voltage(caps, params, 1, kinds)
    assert voltage > 0
    # Same but falling aggressors -> negative glitch of equal magnitude.
    kinds_down = classify_transition(0b1111, 0b0010, 4)
    assert glitch_voltage(caps, params, 1, kinds_down) == pytest.approx(-voltage)


def test_glitch_zero_for_switching_victim(caps, params):
    kinds = classify_transition(0b0000, 0b1111, 4)
    assert glitch_voltage(caps, params, 1, kinds) == 0.0


def test_opposing_aggressors_cancel(caps, params):
    # One neighbour rising, the other falling: the injections cancel on a
    # uniform bus.
    kinds = classify_transition(0b0100, 0b0001, 4)
    assert glitch_voltage(caps, params, 1, kinds) == pytest.approx(0.0)


def test_delay_orders(caps, params):
    direction = BusDirection.CPU_TO_MEM
    # Victim 1 rising; cases: aggressors same / quiet / opposite.
    same = classify_transition(0b0000, 0b1111, 4)
    quiet = classify_transition(0b0000, 0b0010, 4)
    opposite = classify_transition(0b1101, 0b0010, 4)
    d_same = transition_delay(caps, params, 1, same, direction)
    d_quiet = transition_delay(caps, params, 1, quiet, direction)
    d_opposite = transition_delay(caps, params, 1, opposite, direction)
    assert d_same < d_quiet < d_opposite


def test_delay_zero_for_stable_wire(caps, params):
    kinds = classify_transition(0b0000, 0b1101, 4)
    assert transition_delay(caps, params, 1, kinds, BusDirection.CPU_TO_MEM) == 0.0


def test_worst_cases_match_ma_patterns(caps, params):
    direction = BusDirection.CPU_TO_MEM
    width = caps.wire_count
    ones = (1 << width) - 1
    for victim in range(width):
        bit = 1 << victim
        # MA delay pattern: victim rises, every aggressor falls.
        kinds = classify_transition(ones & ~bit, bit, width)
        assert transition_delay(
            caps, params, victim, kinds, direction
        ) == pytest.approx(worst_case_delay(caps, params, victim, direction))
        # MA glitch pattern: victim quiet at 0, all aggressors rise.
        kinds = classify_transition(0, ones & ~bit, width)
        assert glitch_voltage(caps, params, victim, kinds) == pytest.approx(
            worst_case_glitch(caps, params, victim)
        )


def test_direction_changes_delay():
    params = ElectricalParams(r_driver_cpu=500.0, r_driver_mem=2000.0)
    caps = extract_capacitance(BusGeometry.uniform(4))
    slow = worst_case_delay(caps, params, 1, BusDirection.MEM_TO_CPU)
    fast = worst_case_delay(caps, params, 1, BusDirection.CPU_TO_MEM)
    assert slow == pytest.approx(4.0 * fast)
