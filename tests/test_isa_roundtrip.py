"""Property tests: every encodable instruction survives the round trip.

``encode -> disassemble_one -> encode`` must be the identity on byte
sequences for all 23 instruction variants across their full operand
ranges, and the disassembler must resynchronize (consume exactly one
byte) on anything the strict decoder rejects.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.encoding import (
    EncodingError,
    Instruction,
    decode,
    encode,
    instruction_length_from_first_byte,
)
from repro.isa.disassembler import disassemble_one
from repro.isa.instructions import Format, INSTRUCTION_SET, instruction_count


def _instructions() -> st.SearchStrategy:
    """Every variant of the 23-entry registry with a full-range operand."""

    def build(spec, operand, offset):
        if spec.format is Format.IMPLIED:
            return Instruction(spec.mnemonic)
        if spec.format is Format.BRANCH:
            return Instruction(spec.mnemonic, operand=offset)
        return Instruction(
            spec.mnemonic, indirect=spec.indirect, operand=operand
        )

    return st.builds(
        build,
        st.sampled_from(INSTRUCTION_SET),
        st.integers(0, 0xFFF),
        st.integers(0, 0xFF),
    )


def test_registry_is_complete():
    assert instruction_count() == 23


@settings(max_examples=300)
@given(instruction=_instructions(), base=st.integers(0, 0x800))
def test_encode_disassemble_encode_roundtrip(instruction, base):
    raw = encode(instruction)
    assert len(raw) == instruction.length
    image = {base + k: byte for k, byte in enumerate(raw)}
    decoded, length = disassemble_one(image, base)
    assert decoded is not None
    assert length == len(raw)
    assert encode(decoded) == raw
    assert decoded.mnemonic is instruction.mnemonic
    assert decoded.indirect == instruction.indirect


@settings(max_examples=300)
@given(byte1=st.integers(0, 0xFF), byte2=st.integers(0, 0xFF))
def test_disassembler_resynchronizes_on_strict_rejects(byte1, byte2):
    image = {0: byte1, 1: byte2}
    decoded, length = disassemble_one(image, 0)
    try:
        strict = decode(
            byte1,
            byte2 if instruction_length_from_first_byte(byte1) == 2 else None,
        )
    except EncodingError:
        strict = None
    if strict is None:
        # Invalid first byte: exactly one byte consumed so the caller
        # can resynchronize at the next address.
        assert decoded is None and length == 1
    else:
        assert decoded == strict
        assert length == instruction_length_from_first_byte(byte1)


@settings(max_examples=200)
@given(
    data=st.lists(st.integers(0, 0xFF), min_size=1, max_size=24),
    base=st.integers(0, 0x400),
)
def test_linear_sweep_consumes_every_byte_once(data, base):
    image = {base + k: byte for k, byte in enumerate(data)}
    cursor = base
    consumed = 0
    while cursor in image:
        decoded, length = disassemble_one(image, cursor)
        if decoded is not None:
            assert [
                image.get(cursor + k) for k in range(length)
            ] == list(encode(decoded))
        else:
            assert length == 1
        cursor += length
        consumed += length
    assert consumed >= len(data)
