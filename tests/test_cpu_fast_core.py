"""The microprogram fast core: table properties and lockstep equivalence.

The fast core's contract is *bit-identical behaviour*: same bus
transaction stream, same architectural state every cycle, same cycle
and instruction counts as the reference FSM core — under fault-free
runs and under corrupted (defective) runs alike.  These tests enforce
the contract with the lockstep differential harness plus direct
properties of the compiled 256-entry microprogram table.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import CORES, MICROPROGRAMS, Cpu, FastCpu, decode_raw, resolve_core
from repro.cpu.control import ControlState, expected_cycles
from repro.cpu.lockstep import LockstepDivergence, run_lockstep
from repro.soc.system import CpuMemorySystem


# ---------------------------------------------------------------- resolve


def test_resolve_core_explicit():
    assert resolve_core("micro") == "micro"
    assert resolve_core("fast") == "fast"
    assert resolve_core("auto") in ("micro", "fast")
    with pytest.raises(ValueError):
        resolve_core("turbo")


def test_resolve_core_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAST_CORE", raising=False)
    assert resolve_core("auto") == "fast"  # fast is the default
    for value in ("0", "false", "no", "off", "micro"):
        monkeypatch.setenv("REPRO_FAST_CORE", value)
        assert resolve_core("auto") == "micro"
    monkeypatch.setenv("REPRO_FAST_CORE", "1")
    assert resolve_core("auto") == "fast"
    # explicit selection wins over the environment
    assert resolve_core("micro") == "micro"


def test_core_constants():
    assert CORES == ("micro", "fast", "auto")


def test_system_core_selection(monkeypatch):
    monkeypatch.delenv("REPRO_FAST_CORE", raising=False)
    assert isinstance(CpuMemorySystem(core="fast").cpu, FastCpu)
    assert isinstance(CpuMemorySystem(core="micro").cpu, Cpu)
    assert isinstance(CpuMemorySystem(core="auto").cpu, FastCpu)
    monkeypatch.setenv("REPRO_FAST_CORE", "0")
    assert isinstance(CpuMemorySystem(core="auto").cpu, Cpu)


# ---------------------------------------------------------------- table


def test_microprogram_table_covers_every_byte():
    """Every first byte compiles to the FSM's exact control sequence."""
    assert len(MICROPROGRAMS) == 256
    for byte in range(256):
        entry = MICROPROGRAMS[byte]
        decoded = decode_raw(byte)
        assert entry.decoded == decoded
        assert len(entry.steps) == len(entry.states)
        # The per-opcode program excludes the two shared fetch states.
        assert len(entry.states) == expected_cycles(decoded) - 2
        assert ControlState.FETCH1_ADDR not in entry.states
        assert ControlState.FETCH1_DATA not in entry.states


# ---------------------------------------------------------------- lockstep


def test_lockstep_address_program(address_program):
    report = run_lockstep(
        address_program.image,
        entry=address_program.entry,
        memory_size=address_program.memory_size,
    )
    assert report.halted
    assert report.cycles > 0
    assert report.transactions > 0


def test_lockstep_data_program(data_program):
    report = run_lockstep(
        data_program.image,
        entry=data_program.entry,
        memory_size=data_program.memory_size,
    )
    assert report.halted


def test_lockstep_under_corruption(address_program):
    """Cores must also agree cycle-for-cycle on *corrupted* runs."""

    def flip_low_bit(previous, value, direction):
        return value ^ 0x001 if value % 7 == 3 else value

    report = run_lockstep(
        address_program.image,
        entry=address_program.entry,
        memory_size=address_program.memory_size,
        hook=flip_low_bit,
        hook_bus="addr",
        max_cycles=5000,
    )
    assert report.cycles <= 5000


@settings(max_examples=25, deadline=None)
@given(
    image=st.dictionaries(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        max_size=48,
    ),
    entry=st.integers(min_value=0, max_value=63),
)
def test_lockstep_random_images(image, entry):
    """Random sparse images: any byte soup is a valid program (the
    decoder is total), and the cores must agree on all of it —
    including runs that never halt and time out."""
    report = run_lockstep(image, entry=entry, max_cycles=2000)
    assert report.cycles <= 2000


def test_lockstep_divergence_is_assertion_error():
    assert issubclass(LockstepDivergence, AssertionError)


# ---------------------------------------------------------------- state


def test_cross_core_snapshot_restore(address_program):
    """A mid-run FSM snapshot restores into the fast core and resumes
    to the identical final state (and vice versa)."""
    reference = CpuMemorySystem(
        memory_size=address_program.memory_size, core="micro"
    )
    reference.load_image(address_program.image)
    reference.reset(address_program.entry)
    for _ in range(137):
        reference.step()
    frozen = reference.snapshot()

    fast = CpuMemorySystem(
        memory_size=address_program.memory_size, core="fast"
    )
    fast.restore(frozen)
    assert fast.cpu.snapshot() == reference.cpu.snapshot()

    while not reference.cpu.halted:
        reference.step()
        fast.step()
    assert fast.cpu.halted
    assert fast.cycle == reference.cycle
    assert fast.memory.snapshot() == reference.memory.snapshot()
    assert fast.cpu.snapshot() == reference.cpu.snapshot()


def test_fast_registers_view(address_program):
    """The read-only register view matches the packed internal state."""
    system = CpuMemorySystem(
        memory_size=address_program.memory_size, core="fast"
    )
    system.load_image(address_program.image)
    system.reset(address_program.entry)
    for _ in range(200):
        system.step()
    cpu = system.cpu
    registers = cpu.registers
    assert registers.ac == cpu.ac
    assert registers.pc == cpu.pc
    assert registers.flags.as_mask() == cpu.flags
