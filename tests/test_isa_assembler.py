"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.encoding import decode


def test_basic_program_assembles():
    program = assemble(
        """
        .org 0x100
start:  lda data
        sta result
halt:   jmp halt
data:   .byte 0x42
result: .byte 0
        """
    )
    assert program.entry == 0x100
    assert program.symbols["start"] == 0x100
    assert program.symbols["data"] == 0x106
    # lda byte1 = opcode 000 | page(0x106) = 0x01, byte2 = 0x06
    assert program.image[0x100] == 0x01
    assert program.image[0x101] == 0x06


def test_page_offset_operands():
    program = assemble("lda 3:0x1f")
    instruction = decode(program.image[0], program.image[1])
    assert instruction.operand == 0x31F


def test_indirect_syntax():
    program = assemble("lda@ 2:0x10")
    assert program.image[0] & 0x10  # indirect bit


def test_byte_directive_multiple_values():
    program = assemble(".byte 1, 2, 0xff")
    assert [program.image[i] for i in range(3)] == [1, 2, 0xFF]


def test_labels_resolve_forward_and_backward():
    program = assemble(
        """
back:   nop
        jmp fwd
fwd:    jmp back
        """
    )
    assert program.symbols["fwd"] == 0x003


def test_branch_same_page_constraint():
    with pytest.raises(AssemblyError):
        assemble(
            """
        .org 0x0f0
        bra_z target
        .org 0x200
target: nop
        """
        )


def test_branch_same_page_accepted():
    program = assemble(
        """
        .org 0x010
loop:   bra_z loop
        """
    )
    assert program.image[0x010] == 0b1110_0010
    assert program.image[0x011] == 0x10


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("a: nop\na: nop")


def test_unknown_instruction_rejected():
    with pytest.raises(AssemblyError):
        assemble("frobnicate 1")


def test_undefined_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("jmp nowhere")


def test_overlapping_emission_rejected():
    with pytest.raises(AssemblyError):
        assemble(
            """
        .org 0
        .byte 1
        .org 0
        .byte 2
        """
        )


def test_overlapping_same_value_allowed():
    program = assemble(
        """
        .org 0
        .byte 7
        .org 0
        .byte 7
        """
    )
    assert program.image[0] == 7


def test_comments_and_blank_lines():
    program = assemble("; just a comment\n\nnop ; trailing\n")
    assert program.image[0] == 0xF0


def test_implied_with_operand_rejected():
    with pytest.raises(AssemblyError):
        assemble("nop 5")


def test_org_out_of_range():
    with pytest.raises(AssemblyError):
        assemble(".org 0x1000")
