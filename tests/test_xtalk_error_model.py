"""Unit and property tests for the high-level crosstalk error model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.soc.bus import BusDirection
from repro.xtalk.calibration import calibrate
from repro.xtalk.capacitance import extract_capacitance
from repro.xtalk.error_model import CrosstalkErrorModel
from repro.xtalk.geometry import BusGeometry
from repro.xtalk.params import ElectricalParams

WIDTH = 8
ONES = (1 << WIDTH) - 1


@pytest.fixture(scope="module")
def nominal():
    caps = extract_capacitance(BusGeometry.edge_relaxed(WIDTH))
    params = ElectricalParams()
    return caps, params, calibrate(caps, params)


def defective_on(nominal, victim, factor=2.0):
    caps, params, calibration = nominal
    n = caps.wire_count
    factors = [[1.0] * n for _ in range(n)]
    for j, _ in caps.neighbours(victim):
        factors[victim][j] = factors[j][victim] = factor
    return CrosstalkErrorModel(caps.perturbed(factors), params, calibration)


def test_no_transition_no_error(nominal):
    model = CrosstalkErrorModel(nominal[0], nominal[1], nominal[2])
    assert model.corrupt(0x55, 0x55, BusDirection.CPU_TO_MEM) == 0x55


def test_positive_glitch_flips_stable_zero(nominal):
    victim = 4
    model = defective_on(nominal, victim)
    received = model.corrupt(0, ONES & ~(1 << victim), BusDirection.CPU_TO_MEM)
    assert received & (1 << victim)


def test_negative_glitch_flips_stable_one(nominal):
    victim = 4
    model = defective_on(nominal, victim)
    received = model.corrupt(ONES, 1 << victim, BusDirection.CPU_TO_MEM)
    assert not received & (1 << victim)


def test_rising_delay_holds_old_zero(nominal):
    victim = 4
    model = defective_on(nominal, victim)
    received = model.corrupt(ONES & ~(1 << victim), 1 << victim,
                             BusDirection.CPU_TO_MEM)
    assert not received & (1 << victim)


def test_falling_delay_holds_old_one(nominal):
    victim = 4
    model = defective_on(nominal, victim)
    received = model.corrupt(1 << victim, ONES & ~(1 << victim),
                             BusDirection.CPU_TO_MEM)
    assert received & (1 << victim)


def test_glitch_wrong_polarity_is_harmless(nominal):
    victim = 4
    model = defective_on(nominal, victim)
    # Aggressors rise around a stable-1 victim: upward glitch on a high
    # wire cannot flip it.
    received = model.corrupt(1 << victim, ONES, BusDirection.CPU_TO_MEM)
    assert received & (1 << victim)


def test_explain_names_the_effect(nominal):
    victim = 4
    model = defective_on(nominal, victim)
    errors = model.explain(0, ONES & ~(1 << victim), BusDirection.CPU_TO_MEM)
    assert any(
        e.wire == victim and e.effect == "positive_glitch" for e in errors
    )
    errors = model.explain(
        ONES & ~(1 << victim), 1 << victim, BusDirection.CPU_TO_MEM
    )
    assert any(e.wire == victim and e.effect == "delay" for e in errors)
    assert model.explain(0x12, 0x12, BusDirection.CPU_TO_MEM) == []


def test_explain_agrees_with_corrupt(nominal):
    victim = 3
    model = defective_on(nominal, victim)
    for v1, v2 in [(0, ONES & ~(1 << victim)), (0x12, 0x34), (ONES, 0)]:
        corrupted = model.corrupt(v1, v2, BusDirection.MEM_TO_CPU) != v2
        explained = bool(model.explain(v1, v2, BusDirection.MEM_TO_CPU))
        assert corrupted == explained


@settings(max_examples=60)
@given(v1=st.integers(0, ONES), v2=st.integers(0, ONES))
def test_corruption_only_touches_plausible_wires(v1, v2):
    caps = extract_capacitance(BusGeometry.edge_relaxed(WIDTH))
    params = ElectricalParams()
    calibration = calibrate(caps, params)
    n = caps.wire_count
    factors = [[2.5] * n for _ in range(n)]
    model = CrosstalkErrorModel(caps.perturbed(factors), params, calibration)
    received = model.corrupt(v1, v2, BusDirection.CPU_TO_MEM)
    changed = received ^ v2
    for wire in range(WIDTH):
        bit = 1 << wire
        if not changed & bit:
            continue
        if (v1 ^ v2) & bit:
            # Delayed wire reverts to its old value.
            assert received & bit == v1 & bit
        else:
            # Glitched wire flips away from its stable value; a stable-0
            # wire can only flip up, a stable-1 wire only down.
            assert received & bit != v2 & bit


@settings(max_examples=60)
@given(v1=st.integers(0, ONES), v2=st.integers(0, ONES))
def test_nominal_bus_never_corrupts_anything(nominal, v1, v2):
    caps, params, calibration = nominal
    model = CrosstalkErrorModel(caps, params, calibration)
    for direction in BusDirection:
        assert model.corrupt(v1, v2, direction) == v2
