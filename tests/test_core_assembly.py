"""Unit tests for the program assembly (chaining, jumps, markers)."""

import pytest

from repro.core.assembly import ProgramAssembly
from repro.core.image import ConflictError
from repro.isa.encoding import Instruction, decode
from repro.isa.instructions import Mnemonic


def test_halt_is_self_loop():
    assembly = ProgramAssembly()
    halt = assembly.build_halt()
    image = assembly.image.as_dict()
    instruction = decode(image[halt], image[halt + 1])
    assert instruction.mnemonic is Mnemonic.JMP
    assert instruction.operand == halt


def test_backward_chaining_links_fragments():
    assembly = ProgramAssembly()
    halt = assembly.build_halt()
    entry = assembly.emit_code(
        [Instruction(Mnemonic.NOP), assembly.jump_to_next()], "frag"
    )
    assembly.finish_fragment(entry)
    image = assembly.image.as_dict()
    jump = decode(image[entry + 1], image[entry + 2])
    assert jump.operand == halt
    assert assembly.next_entry == entry


def test_jump_to_next_requires_halt_first():
    assembly = ProgramAssembly()
    with pytest.raises(RuntimeError):
        assembly.jump_to_next()


def test_response_bytes_are_exclusive():
    assembly = ProgramAssembly()
    address = assembly.new_response_byte("t1")
    with pytest.raises(ConflictError):
        assembly.image.place(address, 0x00, "t2")
    assert address in assembly.response_addresses


def test_trailing_jump_free_location():
    assembly = ProgramAssembly()
    assembly.build_halt()
    response = assembly.new_response_byte("t")
    glue = assembly.emit_trailing_jump(
        0x500, "t", [Instruction(Mnemonic.STA, operand=response)]
    )
    image = assembly.image.as_dict()
    jump = decode(image[0x500], image[0x501])
    assert jump.mnemonic is Mnemonic.JMP and jump.operand == glue
    # Free-location glue prefers a jump-encodable start offset.
    assert 0x80 <= (glue & 0xFF) <= 0x8F


def test_trailing_jump_steers_to_fixed_first_byte():
    assembly = ProgramAssembly()
    assembly.build_halt()
    assembly.image.place(0x500, 0x83, "other")  # a direct JMP into page 3
    response = assembly.new_response_byte("t")
    glue = assembly.emit_trailing_jump(
        0x500, "t", [Instruction(Mnemonic.STA, operand=response)]
    )
    assert glue >> 8 == 3


def test_trailing_jump_steers_to_fixed_second_byte():
    assembly = ProgramAssembly()
    assembly.build_halt()
    assembly.image.place(0x501, 0x44, "other")
    response = assembly.new_response_byte("t")
    glue = assembly.emit_trailing_jump(
        0x500, "t", [Instruction(Mnemonic.STA, operand=response)]
    )
    assert glue & 0xFF == 0x44


def test_trailing_jump_rejects_non_jmp_first_byte():
    assembly = ProgramAssembly()
    assembly.build_halt()
    assembly.image.place(0x500, 0x12, "other")
    with pytest.raises(ConflictError):
        assembly.emit_trailing_jump(0x500, "t", [])


def test_deferred_markers_resolution_adopts_and_places():
    assembly = ProgramAssembly()
    assembly.defer_marker_pair("t", 0x700, 0x701, 0x55, 0x2A)
    assembly.image.place(0x700, 0x11, "other")  # later pin at pass cell
    assembly.resolve_deferred_markers()
    assert assembly.image.value_at(0x700) == 0x11  # adopted
    assert assembly.image.value_at(0x701) == 0x2A  # placed preferred
    assert assembly.weak_tests == []


def test_deferred_markers_weak_when_equal():
    assembly = ProgramAssembly()
    assembly.defer_marker_pair("t", 0x700, 0x701, 0x55, 0x2A)
    assembly.image.place(0x700, 0x11, "a")
    assembly.image.place(0x701, 0x11, "b")
    assembly.resolve_deferred_markers()
    assert assembly.weak_tests == ["t"]


def test_deferred_marker_cells_kept_out_of_glue():
    assembly = ProgramAssembly(glue_start=0x700)
    assembly.defer_marker_pair("t", 0x700, 0x701, 0x55, 0x2A)
    run = assembly.allocator.alloc_run(2)
    assert run >= 0x702


def test_rollback_restores_everything():
    assembly = ProgramAssembly()
    assembly.build_halt()
    state = assembly.transaction_state()
    assembly.new_response_byte("t")
    assembly.defer_marker_pair("t", 0x700, 0x701, 0x55, 0x2A)
    assembly.emit_code([Instruction(Mnemonic.NOP)], "t")
    assembly.finish_fragment(0x123)
    assembly.rollback(state)
    assert assembly.response_addresses == []
    assert assembly.deferred_markers == []
    assert assembly.marker_addresses == set()
    assert assembly.next_entry != 0x123
    assert 0x700 not in assembly.allocator.avoid
