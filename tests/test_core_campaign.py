"""The campaign orchestration layer: specs, backends, journals, resume.

The load-bearing guarantees under test:

* a :class:`CampaignSpec` is pure picklable data with a stable
  fingerprint (workers rebuild engines from it);
* the process backend produces outcomes bit-identical to the serial
  backend at any worker count;
* the JSONL journal survives the interruptions it exists for — a
  truncated trailing line is repaired, anything worse is refused — and
  a resumed campaign's merged result is identical to an uninterrupted
  run (a hypothesis property over random interrupt points).
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import (
    CampaignJournal,
    CampaignRunner,
    CampaignSpec,
    DetectionOutcome,
    JournalError,
    ProcessBackend,
    SerialBackend,
    _init_worker,
    make_backend,
    run_campaign,
)
from repro import obs
from repro.obs import runtime as obs_runtime


@pytest.fixture(scope="module")
def spec(address_setup, address_program, campaign_engine):
    return CampaignSpec(
        program=address_program,
        params=address_setup.params,
        calibration=address_setup.calibration,
        defects=tuple(address_setup.library),
        bus="addr",
        engine=campaign_engine,
        label="test-campaign",
    )


@pytest.fixture(scope="module")
def serial_outcomes(spec):
    """The uninterrupted serial run every other result must match."""
    return run_campaign(spec).outcomes


@pytest.fixture(scope="module")
def small_spec(spec):
    """A 20-defect slice for the many-examples hypothesis property."""
    return CampaignSpec(
        program=spec.program,
        params=spec.params,
        calibration=spec.calibration,
        defects=spec.defects[:20],
        bus=spec.bus,
        engine=spec.engine,
        label=spec.label,
    )


@pytest.fixture(scope="module")
def small_serial_outcomes(small_spec):
    return run_campaign(small_spec).outcomes


# ---------------------------------------------------------------------------
# CampaignSpec
# ---------------------------------------------------------------------------


class TestCampaignSpec:
    def test_pickle_round_trip(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_fingerprint_is_engine_independent(self, spec):
        """A journal written under one engine must resume under the other."""
        other = CampaignSpec(
            program=spec.program,
            params=spec.params,
            calibration=spec.calibration,
            defects=spec.defects,
            bus=spec.bus,
            engine="screened" if spec.engine == "exact" else "exact",
            label=spec.label,
        )
        assert other.fingerprint() == spec.fingerprint()

    def test_fingerprint_tracks_outcome_determining_config(self, spec):
        fewer = CampaignSpec(
            program=spec.program,
            params=spec.params,
            calibration=spec.calibration,
            defects=spec.defects[:10],
            bus=spec.bus,
        )
        assert fewer.fingerprint() != spec.fingerprint()

    def test_build_engine_leaves_spec_picklable(self, spec):
        """Engines hold live buses and hooks; the spec must not."""
        spec.build_engine()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_rejects_bad_bus_and_engine(self, spec):
        with pytest.raises(ValueError):
            CampaignSpec(
                program=spec.program, params=spec.params,
                calibration=spec.calibration, defects=spec.defects,
                bus="ctrl",
            )
        with pytest.raises(ValueError):
            CampaignSpec(
                program=spec.program, params=spec.params,
                calibration=spec.calibration, defects=spec.defects,
                engine="quantum",
            )


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class TestBackends:
    def test_make_backend(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        process = make_backend("process", workers=3)
        assert isinstance(process, ProcessBackend)
        assert process.workers == 3
        with pytest.raises(ValueError):
            make_backend("serial", workers=2)
        with pytest.raises(ValueError):
            make_backend("thread")
        with pytest.raises(ValueError):
            ProcessBackend(workers=0)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_process_backend_matches_serial(
        self, spec, serial_outcomes, workers
    ):
        result = run_campaign(spec, workers=workers)
        assert result.backend == "process"
        assert result.workers == workers
        assert result.outcomes == serial_outcomes

    def test_process_backend_rejects_foreign_defects(self, spec):
        import dataclasses

        foreign = dataclasses.replace(spec.defects[0], index=10_000)
        with pytest.raises(ValueError, match="not part of the campaign"):
            ProcessBackend(workers=2).run(spec, [foreign])

    def test_empty_defect_slice(self, spec):
        assert SerialBackend().run(spec, []) == []
        assert ProcessBackend(workers=2).run(spec, []) == []

    def test_worker_initializer_drops_inherited_obs_session(self, spec):
        """A forked worker must not report into the parent's registry."""
        with obs.session(detail="metrics"):
            assert obs_runtime.active() is not None
            _init_worker(spec, collect_metrics=False)
            assert obs_runtime.active() is None

    def test_parallel_metrics_roll_up_into_one_registry(self, spec):
        with obs.session(detail="metrics") as session:
            run_campaign(spec, workers=2)
        snapshot = session.registry.snapshot()
        assert (
            snapshot["coverage.defects.simulated"]["value"]
            == len(spec.defects)
        )
        assert snapshot["campaign.workers"]["value"] == 2
        replay = snapshot["coverage.defect.replay"]
        assert replay["count"] == len(spec.defects)
        assert replay["total_ns"] > 0


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


def _outcome(index, detected=True):
    return DetectionOutcome(
        defect_index=index, detected=detected, timed_out=False,
        mismatches=1 if detected else 0,
    )


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignJournal(path, "fp") as journal:
            journal.record(_outcome(3), group="a")
            journal.record(_outcome(7, detected=False), group="b")
        reloaded = CampaignJournal(path, "fp", resume=True)
        assert reloaded.done("a") == {3: _outcome(3)}
        assert reloaded.done("b") == {7: _outcome(7, detected=False)}
        assert reloaded.done("missing") == {}
        assert reloaded.completed == 2
        assert not reloaded.repaired
        reloaded.close()

    def test_without_resume_overwrites(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignJournal(path, "fp") as journal:
            journal.record(_outcome(1))
        with CampaignJournal(path, "fp") as journal:
            assert journal.done() == {}

    def test_truncated_trailing_line_is_repaired(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignJournal(path, "fp") as journal:
            journal.record(_outcome(1))
            journal.record(_outcome(2))
        intact_size = path.stat().st_size
        with open(path, "a") as stream:
            stream.write('{"g": "campaign", "i": 3, "d')  # the cut write
        journal = CampaignJournal(path, "fp", resume=True)
        assert journal.repaired
        assert set(journal.done()) == {1, 2}
        assert path.stat().st_size == intact_size
        journal.record(_outcome(3))
        journal.close()
        reloaded = CampaignJournal(path, "fp", resume=True)
        assert set(reloaded.done()) == {1, 2, 3}
        assert not reloaded.repaired
        reloaded.close()

    def test_missing_trailing_newline_is_completed(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignJournal(path, "fp") as journal:
            journal.record(_outcome(1))
        raw = path.read_bytes()
        path.write_bytes(raw.rstrip(b"\n"))  # intact record, no newline
        journal = CampaignJournal(path, "fp", resume=True)
        journal.record(_outcome(2))
        journal.close()
        reloaded = CampaignJournal(path, "fp", resume=True)
        assert set(reloaded.done()) == {1, 2}
        reloaded.close()

    def test_mid_file_corruption_is_refused(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignJournal(path, "fp") as journal:
            journal.record(_outcome(1))
            journal.record(_outcome(2))
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:5]  # corrupt a record that is NOT last
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt journal line"):
            CampaignJournal(path, "fp", resume=True)

    def test_fingerprint_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        CampaignJournal(path, "fp-one").close()
        with pytest.raises(JournalError, match="different campaign"):
            CampaignJournal(path, "fp-two", resume=True)

    def test_foreign_file_is_refused(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(JournalError, match="not a campaign journal"):
            CampaignJournal(path, "fp", resume=True)

    def test_journal_is_not_picklable(self, tmp_path):
        journal = CampaignJournal(tmp_path / "campaign.jsonl", "fp")
        with pytest.raises(TypeError, match="not picklable"):
            pickle.dumps(journal)
        journal.close()


# ---------------------------------------------------------------------------
# Runner + resume semantics
# ---------------------------------------------------------------------------


class TestRunnerResume:
    def test_resume_requires_journal(self, spec):
        with pytest.raises(ValueError, match="requires a journal"):
            CampaignRunner(spec, resume=True)

    def test_completed_journal_resumes_without_executing(
        self, spec, serial_outcomes, tmp_path
    ):
        path = tmp_path / "campaign.jsonl"
        first = run_campaign(spec, journal=path)
        assert first.executed == len(spec.defects)
        assert first.resumed == 0
        second = run_campaign(spec, journal=path, resume=True)
        assert second.executed == 0
        assert second.resumed == len(spec.defects)
        assert second.outcomes == serial_outcomes

    @pytest.mark.parametrize("workers", [1, 2])
    def test_interrupted_run_resumes_identically(
        self, spec, serial_outcomes, tmp_path, workers
    ):
        path = tmp_path / f"campaign-{workers}.jsonl"
        journal = CampaignJournal(path, spec.fingerprint())
        for outcome in serial_outcomes[:25]:  # the part that "finished"
            journal.record(outcome, group=spec.label)
        journal.close()
        resumed = run_campaign(
            spec, workers=workers, journal=path, resume=True
        )
        assert resumed.resumed == 25
        assert resumed.executed == len(spec.defects) - 25
        assert resumed.outcomes == serial_outcomes

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_resume_identical_over_random_interrupt_points(
        self, data, small_spec, small_serial_outcomes, tmp_path_factory
    ):
        """Interrupt anywhere — mid-record included — and resume exactly.

        The journal after an interrupt is: header + k intact records +
        (sometimes) one partial trailing record.  Whatever k and
        whatever the partial tail, the resumed campaign must equal the
        uninterrupted run.
        """
        k = data.draw(
            st.integers(min_value=0, max_value=len(small_serial_outcomes)),
            label="records_flushed",
        )
        partial = data.draw(
            st.sampled_from(["", '{"g"', '{"g": "test-campaign", "i": 1',
                             "\x00\xff garbage"]),
            label="partial_tail",
        )
        path = tmp_path_factory.mktemp("journal") / "campaign.jsonl"
        journal = CampaignJournal(path, small_spec.fingerprint())
        for outcome in small_serial_outcomes[:k]:
            journal.record(outcome, group=small_spec.label)
        journal.close()
        if partial:
            with open(path, "a") as stream:
                stream.write(partial)
        resumed = run_campaign(small_spec, journal=path, resume=True)
        assert resumed.resumed == k
        assert resumed.executed == len(small_serial_outcomes) - k
        assert resumed.outcomes == small_serial_outcomes
