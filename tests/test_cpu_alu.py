"""Unit and property tests for the ALU."""

from hypothesis import given, strategies as st

from repro.cpu.alu import (
    alu_add,
    alu_and,
    alu_asl,
    alu_asr,
    alu_complement,
    alu_sub,
)

bytes_ = st.integers(0, 255)


def test_add_basic():
    result = alu_add(0x21, 0x12)
    assert result.value == 0x33
    assert not result.c and not result.v and not result.z and not result.n


def test_add_carry_and_zero():
    result = alu_add(0xFF, 0x01)
    assert result.value == 0x00
    assert result.c and result.z


def test_add_signed_overflow():
    result = alu_add(0x7F, 0x01)  # +127 + 1 -> -128
    assert result.value == 0x80
    assert result.v and result.n and not result.c


def test_sub_no_borrow_sets_carry():
    result = alu_sub(5, 3)
    assert result.value == 2
    assert result.c  # no borrow


def test_sub_borrow_clears_carry():
    result = alu_sub(3, 5)
    assert result.value == 0xFE
    assert not result.c
    assert result.n


def test_sub_overflow():
    result = alu_sub(0x80, 0x01)  # -128 - 1 overflows
    assert result.v


def test_and_only_zn():
    result = alu_and(0xF0, 0x0F)
    assert result.value == 0
    assert result.z
    assert result.v is None and result.c is None


def test_asl():
    result = alu_asl(0b1100_0001)
    assert result.value == 0b1000_0010
    assert result.c  # bit 7 shifted out
    assert not result.v  # sign unchanged (1 -> 1)


def test_asl_sign_change_sets_v():
    result = alu_asl(0b0100_0000)
    assert result.value == 0b1000_0000
    assert result.v and not result.c


def test_asr_preserves_sign():
    result = alu_asr(0b1000_0011)
    assert result.value == 0b1100_0001
    assert result.c  # bit 0 out


def test_complement():
    result = alu_complement(0x0F)
    assert result.value == 0xF0
    assert result.n and not result.z


@given(bytes_, bytes_)
def test_add_matches_integer_arithmetic(a, b):
    result = alu_add(a, b)
    assert result.value == (a + b) & 0xFF
    assert result.c == (a + b > 0xFF)
    assert result.z == (((a + b) & 0xFF) == 0)


@given(bytes_, bytes_)
def test_sub_matches_integer_arithmetic(a, b):
    result = alu_sub(a, b)
    assert result.value == (a - b) & 0xFF
    assert result.c == (a >= b)


@given(bytes_)
def test_double_complement_is_identity(a):
    assert alu_complement(alu_complement(a).value).value == a


@given(bytes_)
def test_asr_of_asl_low_bits(a):
    # shifting left then right preserves bits 0..5 and the (new) sign.
    shifted = alu_asr(alu_asl(a).value).value
    assert shifted & 0x3F == a & 0x3F
