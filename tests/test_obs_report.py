"""Unit tests for RunReport serialization and schema validation."""

import json

import pytest

from repro.analysis.records import ExperimentRecord
from repro.obs import RunReport, load_schema, session, validate


def make_report():
    with session(detail="full") as obs:
        with obs.spans.span("setup"):
            pass
        with obs.spans.span("campaign"):
            obs.registry.counter("cpu.cycles").inc(1234)
            obs.registry.gauge("coverage.campaign.progress").set(1.0)
            obs.registry.timer("coverage.defect.replay").observe(5000)
    return RunReport.from_observability(
        obs, kind="run", label="unit", config={"defects": 3}
    )


def test_from_observability_snapshot():
    report = make_report()
    assert [p["name"] for p in report.phases] == ["setup", "campaign"]
    assert report.metrics["cpu.cycles"] == {"type": "counter", "value": 1234}
    assert report.metrics["coverage.defect.replay"]["count"] == 1
    assert report.spans  # include_spans=True by default


def test_report_validates_against_checked_in_schema():
    report = make_report()
    assert report.validation_errors() == []
    assert validate(report.as_dict(), load_schema()) == []


def test_report_round_trip(tmp_path):
    report = make_report()
    report.add_records(
        [ExperimentRecord("E4", "coverage", "94.3%", "94.0%", note="n=3")]
    )
    report.add_section("E4 — record", "body text")
    report.results = {"coverage": {"detected": 2, "defects": 3}}
    path = report.save(tmp_path / "report.json")
    loaded = RunReport.load(path)
    assert loaded.as_dict() == report.as_dict()
    assert loaded.records[0]["measured"] == "94.0%"
    assert loaded.sections[0]["title"] == "E4 — record"


def test_save_refuses_invalid_report(tmp_path):
    report = make_report()
    report.kind = "bogus"  # not in the schema's enum
    with pytest.raises(ValueError, match="schema"):
        report.save(tmp_path / "report.json")
    assert not (tmp_path / "report.json").exists()


def test_validator_flags_structural_violations():
    report = make_report()
    payload = report.as_dict()
    payload["phases"][0].pop("duration_ns")
    payload["metrics"]["cpu.cycles"]["type"] = "histogram"
    payload["unexpected"] = True
    errors = validate(payload)
    assert any("duration_ns" in e for e in errors)
    assert any("histogram" in e for e in errors)
    assert any("unexpected" in e for e in errors)


def test_validator_checks_primitive_types():
    errors = validate({"schema_version": "1"})
    assert any("schema_version" in e and "integer" in e for e in errors)
    # bool is not an acceptable integer (draft-07 semantics).
    errors = validate({"schema_version": True})
    assert any("schema_version" in e for e in errors)


def test_summary_renders_phases_and_metrics():
    report = make_report()
    text = report.summary()
    assert "campaign" in text
    assert "cpu.cycles" in text
    assert "timer" in text


def test_validate_cli_tool(tmp_path, capsys):
    from repro.obs.validate import main as validate_main

    path = make_report().save(tmp_path / "ok.json")
    assert validate_main([str(path)]) == 0
    assert "valid" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"kind": "profile"}), encoding="utf-8")
    assert validate_main([str(bad)]) == 1
