"""Tests for response-based fault diagnosis (Section 4.3)."""

import pytest

from repro.core.diagnosis import (
    DiagnosisReport,
    diagnose,
    diagnosis_accuracy,
)
from repro.core.signature import capture_golden, make_system
from repro.xtalk.error_model import CrosstalkErrorModel


@pytest.fixture(scope="module")
def golden_addr(address_program):
    return capture_golden(address_program)


def run_with_defect(program, golden, setup, defect):
    system = make_system(program)
    model = CrosstalkErrorModel(defect.caps, setup.params, setup.calibration)
    system.address_bus.install_corruption_hook(model.corrupt)
    result = system.run(entry=program.entry, max_cycles=golden.max_cycles)
    return system, result.halted


def test_clean_run_produces_no_evidence(address_program, golden_addr):
    system = make_system(address_program)
    result = system.run(entry=address_program.entry)
    report = diagnose(address_program, golden_addr, system, result.halted)
    assert report.implications == []
    assert report.prime_suspect() is None


def test_timeout_reported(address_program, golden_addr):
    system = make_system(address_program)
    report = diagnose(address_program, golden_addr, system, halted=False)
    assert report.timed_out
    assert report.suspected_faults == []


def test_defect_implicates_tests(address_setup, address_program, golden_addr):
    defect = max(address_setup.library, key=lambda d: d.severity)
    system, halted = run_with_defect(
        address_program, golden_addr, address_setup, defect
    )
    report = diagnose(address_program, golden_addr, system, halted)
    if not halted:
        pytest.skip("severe defect hung the CPU; nothing to localize")
    assert report.implications
    votes = report.victim_votes()
    assert sum(votes.values()) == len(report.implications)


def test_diagnosis_localizes_defective_wires(
    address_setup, address_program, golden_addr
):
    """Across the library, the prime suspect should usually be on or next
    to a defective wire (a coupling defect straddles two wires)."""
    pairs = []
    for defect in list(address_setup.library)[:30]:
        system, halted = run_with_defect(
            address_program, golden_addr, address_setup, defect
        )
        if not halted:
            continue
        report = diagnose(address_program, golden_addr, system, halted)
        pairs.append((report, defect.defective_wires))
    accuracy = diagnosis_accuracy(pairs)
    assert accuracy >= 0.7


def test_signature_bit_attribution(data_setup, data_program):
    """A data-bus defect flips compacted-signature bits that map back to
    the family tests of the affected wires."""
    golden = capture_golden(data_program)
    # Mild defects leave the instruction stream intact; scan for one that
    # halts and flips a signature.
    for defect in sorted(data_setup.library, key=lambda d: d.severity):
        system = make_system(data_program)
        model = CrosstalkErrorModel(
            defect.caps, data_setup.params, data_setup.calibration
        )
        system.data_bus.install_corruption_hook(model.corrupt)
        result = system.run(
            entry=data_program.entry, max_cycles=golden.max_cycles
        )
        if not result.halted:
            continue
        report = diagnose(data_program, golden, system, result.halted)
        if any("signature bit" in i.via for i in report.implications):
            return
    pytest.fail("no halting defect produced a signature-bit implication")


def test_accuracy_of_empty_input():
    assert diagnosis_accuracy([]) == 0.0
    assert diagnosis_accuracy([(DiagnosisReport(), (1,))]) == 0.0
