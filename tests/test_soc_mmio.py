"""Unit tests for memory-mapped cores and system routing."""

import pytest

from repro.isa.assembler import assemble
from repro.soc.mmio import MMIORegion, RegisterCore, RomCore
from repro.soc.system import CpuMemorySystem


def test_register_core_read_write():
    core = RegisterCore(4)
    core.write(2, 0x7E)
    assert core.read(2) == 0x7E
    assert core.write_count == 1 and core.read_count == 1
    with pytest.raises(IndexError):
        core.read(4)


def test_register_core_load_resets_counters():
    core = RegisterCore(4)
    core.load([1, 2, 3])
    assert core.read_count == 0 and core.write_count == 0
    assert core.snapshot()[:3] == bytes([1, 2, 3])


def test_rom_core_ignores_writes():
    rom = RomCore([9, 8, 7])
    rom.write(1, 0xFF)
    assert rom.read(1) == 8
    assert rom.ignored_writes == {1: 0xFF}


def test_mmio_region_contains():
    region = MMIORegion(base=0xF00, size=16, core=RegisterCore(16))
    assert region.contains(0xF00)
    assert region.contains(0xF0F)
    assert not region.contains(0xF10)
    assert not region.contains(0xEFF)


def test_cpu_reaches_mmio_core_via_memory_mapped_io():
    # The paper's Fig. 2 scenario: the CPU exchanges data with a
    # non-memory core over the same buses, addressed like memory.
    core = RegisterCore(16)
    core.load([0x5C])
    system = CpuMemorySystem(
        mmio_regions=[MMIORegion(base=0xF00, size=16, core=core, name="periph")]
    )
    program = assemble(
        """
        .org 0x10
        lda 0xF:0x00      ; read peripheral register 0
        sta out
        lda val
        sta 0xF:0x01      ; write peripheral register 1
halt:   jmp halt
val:    .byte 0x99
out:    .byte 0
        """
    )
    system.load_image(program.image)
    result = system.run(entry=0x10)
    assert result.halted
    assert system.memory.read(program.symbols["out"]) == 0x5C
    assert core.read(1) == 0x99
