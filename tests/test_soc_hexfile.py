"""Tests for Intel HEX image interchange."""

import pytest
from hypothesis import given, strategies as st

from repro.soc.hexfile import HexFormatError, dump_image, load_image


def test_known_record():
    text = dump_image({0x10: 0x00, 0x11: 0x80})
    first = text.splitlines()[0]
    assert first == ":0200100000806E"
    assert text.splitlines()[-1] == ":00000001FF"


def test_roundtrip_sparse_image():
    image = {0: 1, 1: 2, 0x7FF: 0xAB, 0xFFF: 0xCD}
    assert load_image(dump_image(image)) == image


def test_program_roundtrip(address_program):
    text = dump_image(address_program.image)
    assert load_image(text) == address_program.image


def test_record_size_packing():
    image = {i: i & 0xFF for i in range(40)}
    text = dump_image(image, record_size=16)
    data_lines = [l for l in text.splitlines() if not l.endswith("01FF")]
    assert len(data_lines) == 3  # 16 + 16 + 8


def test_bad_inputs():
    with pytest.raises(HexFormatError):
        load_image("0200100000806E")  # missing colon
    with pytest.raises(HexFormatError):
        load_image(":0200100000806F\n:00000001FF")  # bad checksum
    with pytest.raises(HexFormatError):
        load_image(":020010000080\n:00000001FF")  # truncated
    with pytest.raises(HexFormatError):
        load_image(":0200100000806E")  # no EOF
    with pytest.raises(HexFormatError):
        load_image(":00000001FF\n:0200100000806E")  # data after EOF
    with pytest.raises(HexFormatError):
        load_image(":00000005FB\n:00000001FF")  # unsupported type
    with pytest.raises(ValueError):
        dump_image({0: 1}, record_size=0)


def test_loadable_by_memory(address_program):
    from repro.soc.memory import Memory

    memory = Memory()
    memory.load_image(load_image(dump_image(address_program.image)))
    for address, byte in address_program.image.items():
        assert memory.read(address) == byte


@given(
    st.dictionaries(
        st.integers(0, 0xFFF), st.integers(0, 255), max_size=60
    )
)
def test_roundtrip_property(image):
    assert load_image(dump_image(image)) == image
