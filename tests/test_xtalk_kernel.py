"""The shared transition kernel: purity, model agreement, explain/decide
consistency (the Miller-weighting logic used to be duplicated between
``corrupt`` and ``explain``; these properties pin the deduplicated one)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.soc.bus import BusDirection
from repro.xtalk.calibration import calibrate
from repro.xtalk.capacitance import extract_capacitance
from repro.xtalk.error_model import CrosstalkErrorModel
from repro.xtalk.geometry import BusGeometry
from repro.xtalk.kernel import TransitionKernel
from repro.xtalk.params import ElectricalParams

WIDTH = 8
ONES = (1 << WIDTH) - 1


@pytest.fixture(scope="module")
def nominal():
    caps = extract_capacitance(BusGeometry.edge_relaxed(WIDTH))
    params = ElectricalParams()
    return caps, params, calibrate(caps, params)


def perturbed_kernel(nominal, factor):
    caps, params, calibration = nominal
    n = caps.wire_count
    factors = [[factor] * n for _ in range(n)]
    return TransitionKernel(caps.perturbed(factors), params, calibration)


@settings(max_examples=80)
@given(
    v1=st.integers(0, ONES),
    v2=st.integers(0, ONES),
    factor=st.sampled_from([1.0, 1.6, 2.2, 3.0]),
)
def test_explain_reports_exactly_the_flipped_wires(v1, v2, factor):
    """explain() names wire *i* iff decide() flips wire *i* — per wire."""
    caps = extract_capacitance(BusGeometry.edge_relaxed(WIDTH))
    params = ElectricalParams()
    kernel = TransitionKernel(
        caps.perturbed([[factor] * WIDTH for _ in range(WIDTH)]),
        params,
        calibrate(caps, params),
    )
    for direction in BusDirection:
        received, glitches, delays = kernel.decide(v1, v2, direction)
        errors = kernel.explain(v1, v2, direction)
        assert {e.wire for e in errors} == {
            i for i in range(WIDTH) if (received ^ v2) & (1 << i)
        }
        assert glitches == sum(1 for e in errors if e.effect.endswith("glitch"))
        assert delays == sum(1 for e in errors if e.effect == "delay")
        assert kernel.corrupts(v1, v2, direction) == (received != v2)


@settings(max_examples=60)
@given(v1=st.integers(0, ONES), v2=st.integers(0, ONES))
def test_kernel_agrees_with_error_model(v1, v2):
    caps = extract_capacitance(BusGeometry.edge_relaxed(WIDTH))
    params = ElectricalParams()
    calibration = calibrate(caps, params)
    bad = caps.perturbed([[2.4] * WIDTH for _ in range(WIDTH)])
    kernel = TransitionKernel(bad, params, calibration)
    model = CrosstalkErrorModel(bad, params, calibration)
    for direction in BusDirection:
        assert model.corrupt(v1, v2, direction) == kernel.decide(
            v1, v2, direction
        )[0]


def test_model_accepts_prebuilt_kernel(nominal):
    caps, params, calibration = nominal
    kernel = TransitionKernel(caps, params, calibration)
    model = CrosstalkErrorModel(caps, params, calibration, kernel=kernel)
    assert model.kernel is kernel
    assert model.corrupt(0x00, 0xFF, BusDirection.CPU_TO_MEM) == 0xFF


def test_kernel_is_pure(nominal):
    kernel = perturbed_kernel(nominal, 2.5)
    first = kernel.decide(0x00, 0x55, BusDirection.CPU_TO_MEM)
    thresholds = list(kernel.glitch_threshold)
    for _ in range(3):
        assert kernel.decide(0x00, 0x55, BusDirection.CPU_TO_MEM) == first
    assert kernel.glitch_threshold == thresholds


def test_no_transition_is_never_an_error(nominal):
    kernel = perturbed_kernel(nominal, 3.0)
    assert kernel.decide(0x33, 0x33, BusDirection.MEM_TO_CPU) == (0x33, 0, 0)
    assert not kernel.corrupts(0x33, 0x33, BusDirection.MEM_TO_CPU)
    assert kernel.explain(0x33, 0x33, BusDirection.MEM_TO_CPU) == []
