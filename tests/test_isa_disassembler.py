"""Unit tests for the disassembler."""

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_image, disassemble_one, format_listing


def test_roundtrip_listing():
    program = assemble(
        """
        .org 0x20
        cla
        lda 1:0x10
        sta 2:0x00
halt:   jmp halt
        """
    )
    lines = disassemble_image(program.image)
    text = format_listing(lines)
    assert "cla" in text
    assert "lda 1:10" in text
    assert "sta 2:00" in text
    assert "jmp" in text


def test_disassemble_one_hole():
    instruction, length = disassemble_one({}, 0)
    assert instruction is None
    assert length == 1


def test_disassemble_one_truncated_two_byte():
    # First byte of an LDA with no second byte in the image.
    instruction, length = disassemble_one({0: 0x00}, 0)
    assert instruction is None
    assert length == 1


def test_undecodable_byte_listed_as_byte():
    # 0xF5 is an undefined implied sub-opcode: strict decode fails.
    lines = disassemble_image({0x10: 0xF5})
    assert any(".byte" in line for line in lines)


def test_limit_caps_output():
    image = {i: 0xF0 for i in range(20)}  # 20 NOPs
    lines = disassemble_image(image, limit=5)
    assert len(lines) == 5


def test_empty_image():
    assert disassemble_image({}) == []
