"""Unit tests for bus geometry."""

import pytest

from repro.xtalk.geometry import BusGeometry


def test_uniform_spacing():
    geometry = BusGeometry.uniform(8, spacing_um=0.4)
    assert len(geometry.spacings_um) == 7
    assert set(geometry.spacings_um) == {0.4}


def test_edge_relaxed_profile():
    geometry = BusGeometry.edge_relaxed(12, spacing_um=0.5)
    gaps = geometry.spacings_um
    assert gaps[0] == gaps[-1] == 1.5  # 3x
    assert gaps[1] == gaps[-2] == 1.0  # 2x
    assert set(gaps[2:-2]) == {0.5}


def test_edge_relaxed_symmetry():
    gaps = BusGeometry.edge_relaxed(9).spacings_um
    assert gaps == tuple(reversed(gaps))


def test_validation():
    with pytest.raises(ValueError):
        BusGeometry(wire_count=1, spacings_um=())
    with pytest.raises(ValueError):
        BusGeometry(wire_count=3, spacings_um=(1.0,))
    with pytest.raises(ValueError):
        BusGeometry(wire_count=3, spacings_um=(1.0, -1.0))
    with pytest.raises(ValueError):
        BusGeometry(wire_count=3, length_um=0, spacings_um=(1.0, 1.0))
    with pytest.raises(ValueError):
        BusGeometry.edge_relaxed(8, edge_factors=(0.0,))


def test_edge_factors_on_tiny_bus():
    # Factors deeper than the gap count must not blow up.
    geometry = BusGeometry.edge_relaxed(3, edge_factors=(3.0, 2.0))
    assert len(geometry.spacings_um) == 2
