"""Tests for the reporting helpers."""

import pytest

from repro.analysis.charts import bar_chart, coverage_chart
from repro.analysis.records import ExperimentRecord, format_records
from repro.analysis.tables import format_table


def test_format_table_alignment():
    text = format_table(
        ("name", "value"),
        [("alpha", 1), ("b", 22)],
        title="demo",
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert lines[1].startswith("name")
    assert "alpha" in lines[3]


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(("a", "b"), [(1,)])


def test_bar_chart():
    text = bar_chart(["x", "longer"], [0.5, 1.0], width=10)
    assert "#####" in text
    assert "##########" in text
    with pytest.raises(ValueError):
        bar_chart(["x"], [1.0, 2.0])
    with pytest.raises(ValueError):
        bar_chart(["x"], [1.0], max_value=0)


def test_bar_chart_clamps():
    text = bar_chart(["x"], [5.0], width=10, max_value=1.0)
    assert text.count("#") == 10


def test_coverage_chart():
    text = coverage_chart([(1, 0.0, 0.0), (6, 0.6, 0.9)], width=10)
    assert "line" in text
    assert "ind |######" in text
    assert "cum |=========" in text


def test_experiment_records():
    records = [
        ExperimentRecord("E4/Fig.11", "cumulative coverage", "100%", "100%"),
        ExperimentRecord(
            "E3", "tests applied", "41/48", "23/48", note="stricter allocator"
        ),
    ]
    text = format_records(records, title="paper vs measured")
    assert "E4/Fig.11" in text
    assert "stricter allocator" in text
    assert text.splitlines()[0] == "paper vs measured"
