"""Engine equivalence: screened == exact, checkpointed replay exactness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import default_bus_setup
from repro.core.coverage import DefectSimulator
from repro.core.engine import (
    ExactEngine,
    ScreenedEngine,
    auto_checkpoint_interval,
    capture_golden_with_trace,
    make_engine,
)
from repro.core.program_builder import SelfTestProgramBuilder
from repro.core.signature import build_base_image, capture_golden, make_system
from repro.soc.mmio import MMIORegion, RegisterCore


@pytest.fixture(scope="module")
def builder():
    return SelfTestProgramBuilder()


@pytest.fixture(scope="module")
def addr_program(builder):
    return builder.build_address_bus_program()


@pytest.fixture(scope="module")
def data_program(builder):
    return builder.build_data_bus_program()


@pytest.fixture(scope="module")
def addr_setup():
    return default_bus_setup(12, defect_count=50, seed=11)


@pytest.fixture(scope="module")
def data_setup():
    return default_bus_setup(8, defect_count=50, seed=11)


def outcomes(program, setup, bus, **kwargs):
    simulator = DefectSimulator(
        program, setup.params, setup.calibration, bus=bus, **kwargs
    )
    return simulator.run_library(setup.library)


@pytest.mark.parametrize("backend", ["python", "auto"])
def test_screened_equals_exact_on_address_bus(
    addr_program, addr_setup, backend
):
    exact = outcomes(addr_program, addr_setup, "addr")
    screened = outcomes(
        addr_program, addr_setup, "addr",
        engine="screened", screen_backend=backend,
    )
    assert screened == exact


def test_screened_equals_exact_on_data_bus(data_program, data_setup):
    exact = outcomes(data_program, data_setup, "data")
    screened = outcomes(data_program, data_setup, "data", engine="screened")
    assert screened == exact


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    count=st.integers(1, 12),
    interval=st.sampled_from([None, 1, 7, 64]),
)
def test_screened_equals_exact_on_random_libraries(
    addr_program, seed, count, interval
):
    setup = default_bus_setup(12, defect_count=count, seed=seed)
    exact = DefectSimulator(
        addr_program, setup.params, setup.calibration, bus="addr"
    ).run_library(setup.library)
    screened = DefectSimulator(
        addr_program, setup.params, setup.calibration, bus="addr",
        engine="screened", checkpoint_interval=interval,
    ).run_library(setup.library)
    assert screened == exact


def test_per_line_programs_equivalent(builder, addr_setup):
    """Small per-line programs (the Fig. 11 shape screening accelerates)."""
    faults = [f for f in builder.address_faults() if f.victim in (0, 5, 11)]
    program = builder.build_address_bus_program(faults)
    assert outcomes(program, addr_setup, "addr", engine="screened") == \
        outcomes(program, addr_setup, "addr")


def test_simulate_without_prepare(addr_program, addr_setup):
    """Single-defect path must screen lazily (no run_library batch)."""
    exact = DefectSimulator(
        addr_program, addr_setup.params, addr_setup.calibration, bus="addr"
    )
    screened = DefectSimulator(
        addr_program, addr_setup.params, addr_setup.calibration, bus="addr",
        engine="screened",
    )
    for defect in addr_setup.library.defects[:5]:
        assert screened.simulate(defect) == exact.simulate(defect)


def test_engines_share_golden_reference(addr_program, addr_setup):
    golden = capture_golden(addr_program)
    for name in ("exact", "screened"):
        engine = make_engine(
            name, addr_program, addr_setup.params, addr_setup.calibration,
            "addr",
        )
        assert engine.golden.snapshot == golden.snapshot
        assert engine.golden.cycles == golden.cycles
        assert engine.golden.instructions == golden.instructions


def test_make_engine_rejects_unknown_name(addr_program, addr_setup):
    with pytest.raises(ValueError):
        make_engine(
            "quantum", addr_program, addr_setup.params,
            addr_setup.calibration, "addr",
        )
    with pytest.raises(ValueError):
        DefectSimulator(
            addr_program, addr_setup.params, addr_setup.calibration,
            engine="quantum",
        )


def test_capture_golden_with_trace(addr_program):
    capture = capture_golden_with_trace(addr_program, "addr", interval=16)
    golden = capture_golden(addr_program)
    assert capture.golden.snapshot == golden.snapshot
    assert capture.golden.cycles == golden.cycles
    assert capture.trace, "address bus trace must not be empty"
    assert capture.checkpoints[0].cycle == 0
    cycles = [c.cycle for c in capture.checkpoints]
    assert cycles == sorted(cycles)
    assert all(c.cycle < golden.cycles for c in capture.checkpoints)


def test_checkpoint_resume_reproduces_suffix(addr_program):
    """restore(checkpoint) + resume == the uninterrupted golden run."""
    capture = capture_golden_with_trace(addr_program, "addr", interval=8)
    golden = capture.golden
    for checkpoint in capture.checkpoints[1::3]:
        system = make_system(addr_program)
        system.restore(checkpoint.snapshot)
        result = system.resume(max_cycles=golden.max_cycles)
        assert result.halted
        assert result.cycles == golden.cycles
        assert result.instructions == golden.instructions
        assert system.memory.snapshot() == golden.snapshot


def test_auto_checkpoint_interval_clamps():
    assert auto_checkpoint_interval(40) == 4
    assert auto_checkpoint_interval(640) == 10
    assert auto_checkpoint_interval(1_000_000) == 256


def test_screened_engine_uninstalls_hook(addr_program, addr_setup):
    engine = ScreenedEngine(
        addr_program, addr_setup.params, addr_setup.calibration, "addr"
    )
    corrupting = next(
        d for d in addr_setup.library
        if not engine.screen.screen_one(d).clean
    )
    engine.check(corrupting)
    assert engine._scratch.address_bus._corruption_hook is None


def test_exact_engine_base_image_matches_program(addr_program):
    image = build_base_image(addr_program)
    fresh = make_system(addr_program)
    cached = make_system(addr_program, image)
    assert fresh.memory.snapshot() == cached.memory.snapshot()
    engine = ExactEngine(
        addr_program,
        default_bus_setup(12, defect_count=1, seed=1).params,
        default_bus_setup(12, defect_count=1, seed=1).calibration,
        "addr",
    )
    assert engine._base_image == image


def test_replay_dedup_collapses_defect_classes(builder, addr_setup):
    """Defects sharing a replay behavior reuse one simulated outcome."""
    from repro.obs import runtime as obs_runtime

    faults = [f for f in builder.address_faults() if f.victim == 5]
    program = builder.build_address_bus_program(faults)
    exact = outcomes(program, addr_setup, "addr")
    simulator = DefectSimulator(
        program, addr_setup.params, addr_setup.calibration, bus="addr",
        engine="screened",
    )
    with obs_runtime.session() as obs:
        screened = simulator.run_library(addr_setup.library)
    assert screened == exact
    total = len(addr_setup.library.defects)
    snapshot = obs.registry.snapshot()

    def count(name):
        entry = snapshot.get("coverage.engine." + name)
        return entry["value"] if entry else 0

    clean, deduped, replayed = (
        count("screened_clean"), count("replay_deduped"), count("replayed")
    )
    assert clean + deduped + replayed == total
    assert deduped > 0, "expected defects to share a replay behavior"
    recorded = sum(len(v) for v in simulator.engine._replay_classes.values())
    assert recorded == replayed


def test_vectorized_class_matching_equals_exact(
    builder, addr_setup, monkeypatch
):
    """Force DecisionEvaluator matching on every class; outcomes unchanged."""
    pytest.importorskip("numpy")
    from repro.core import engine as engine_module

    monkeypatch.setattr(engine_module, "VECTOR_MATCH_MIN_ENTRIES", 1)
    faults = [f for f in builder.address_faults() if f.victim in (0, 7)]
    program = builder.build_address_bus_program(faults)
    screened = outcomes(
        program, addr_setup, "addr",
        engine="screened", screen_backend="numpy",
    )
    assert screened == outcomes(program, addr_setup, "addr")


def test_snapshot_refuses_mmio():
    system = make_system_with_mmio()
    with pytest.raises(ValueError):
        system.snapshot()


def make_system_with_mmio():
    from repro.soc.system import CpuMemorySystem

    core = RegisterCore(register_count=16)
    return CpuMemorySystem(
        mmio_regions=[MMIORegion(base=0xF00, size=16, core=core)]
    )
