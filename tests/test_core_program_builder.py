"""Tests for whole-program construction (Section 4 + Section 5 counts)."""

from repro.core.maf import FaultType
from repro.core.program_builder import SelfTestProgramBuilder
from repro.core.signature import capture_golden
from repro.core.validate import validate_applied_tests


def test_address_program_applies_majority_with_conflicts(address_program):
    # The paper applied 41/48 in one program; our stricter byte-exact
    # accounting lands lower but the structure is the same: most tests
    # apply, the rest are skipped with recorded conflicts.
    assert len(address_program.applied) + len(address_program.skipped) == 48
    assert len(address_program.applied) >= 20
    assert address_program.skipped  # conflicts exist, as in the paper
    for skipped in address_program.skipped:
        assert skipped.reason


def test_every_applied_address_test_is_observable(address_program):
    report = validate_applied_tests(address_program)
    assert report.all_confirmed


def test_program_halts_and_is_deterministic(address_program):
    golden_a = capture_golden(address_program)
    golden_b = capture_golden(address_program)
    assert golden_a.snapshot == golden_b.snapshot
    assert golden_a.cycles == golden_b.cycles


def test_combined_program(combined_program):
    addr = [t for t in combined_program.applied if t.fault.direction is None]
    data = [t for t in combined_program.applied if t.fault.direction is not None]
    assert len(addr) >= 20
    assert len(data) >= 40
    report = validate_applied_tests(combined_program)
    assert report.all_confirmed


def test_total_cycles_in_paper_ballpark(builder, address_program, data_program):
    # Paper: "The total execution time of the programs is 1720 processor
    # cycles."  Our control unit differs in detail, so we check the
    # magnitude (same order, within a factor of ~1.5).
    total = (
        capture_golden(address_program).cycles
        + capture_golden(data_program).cycles
    )
    assert 1000 <= total <= 2600


def test_program_size_scales_with_test_count(builder, address_program):
    few = builder.build_address_bus_program(
        [f for f in builder.address_faults() if f.victim < 3]
    )
    assert few.program_size < address_program.program_size


def test_skip_reasons_mention_owner_or_window(address_program):
    for skipped in address_program.skipped:
        assert skipped.fault.name.split("/")[0] in (
            "gp",
            "gn",
            "dr",
            "df",
        )


def test_empty_fault_sets():
    builder = SelfTestProgramBuilder()
    program = builder.build(address_faults=(), data_faults=())
    assert program.applied == []
    golden = capture_golden(program)  # just the halt loop
    assert golden.instructions == 1


def test_applied_list_in_execution_order(combined_program):
    # Data-write tests execute first, address tests last (reverse of the
    # build priority).
    kinds = [
        "addr" if t.fault.direction is None else "data"
        for t in combined_program.applied
    ]
    assert kinds[0] == "data"
    assert kinds[-1] == "addr"


def test_address_order_given_mode():
    builder = SelfTestProgramBuilder(address_order="given")
    faults = [
        f
        for f in builder.address_faults()
        if f.fault_type is FaultType.RISING_DELAY
    ]
    program = builder.build_address_bus_program(list(reversed(faults)))
    assert len(program.applied) >= 10


def test_invalid_address_order_rejected():
    import pytest

    with pytest.raises(ValueError):
        SelfTestProgramBuilder(address_order="chaotic")
