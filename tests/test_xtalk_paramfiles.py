"""Memoized parameter-file loaders (params + capacitance)."""

from __future__ import annotations

import json
import os

import pytest

from repro.xtalk import (
    CapacitanceSet,
    ElectricalParams,
    load_capacitance,
    load_params,
    parse_capacitance,
    parse_params,
)

PARAMS_DOC = {"vdd": 2.5, "r_driver_cpu": 800.0, "glitch_attenuation": 0.4}
CAP_DOC = {
    "coupling": [[0.0, 5.0, 0.0], [5.0, 0.0, 5.0], [0.0, 5.0, 0.0]],
    "ground": [2.0, 2.0, 2.0],
}


# ---------------------------------------------------------------- parse


def test_parse_params_values_and_defaults():
    params = parse_params(json.dumps(PARAMS_DOC))
    assert params == ElectricalParams(
        vdd=2.5, r_driver_cpu=800.0, glitch_attenuation=0.4
    )
    assert params.r_driver_mem == 1000.0  # dataclass default


def test_parse_params_memo_returns_same_instance():
    text = json.dumps(PARAMS_DOC)
    assert parse_params(text) is parse_params(text)
    # different (but equal-value) text is a different memo entry
    other = parse_params(json.dumps(PARAMS_DOC, indent=2))
    assert other == parse_params(text)


@pytest.mark.parametrize(
    "text",
    [
        "[1, 2]",  # not an object
        '{"bogus": 1.0}',  # unknown key
        '{"vdd": "high"}',  # non-numeric value
        '{"vdd": true}',  # bool is not a voltage
    ],
)
def test_parse_params_rejects(text):
    with pytest.raises(ValueError):
        parse_params(text)


def test_parse_capacitance_round_trip():
    capacitance = parse_capacitance(json.dumps(CAP_DOC))
    assert isinstance(capacitance, CapacitanceSet)
    assert capacitance.wire_count == 3
    assert capacitance.net_coupling(1) == 10.0
    assert parse_capacitance(json.dumps(CAP_DOC)) is capacitance


@pytest.mark.parametrize(
    "document",
    [
        [1, 2],  # not an object
        {"coupling": [[0.0]]},  # missing ground
        {"coupling": [[0.0]], "ground": [1.0], "extra": 1},  # unknown key
        {"coupling": [[0.0, 1.0], [2.0, 0.0]], "ground": [1.0, 1.0]},  # asym
    ],
)
def test_parse_capacitance_rejects(document):
    with pytest.raises(ValueError):
        parse_capacitance(json.dumps(document))


# ---------------------------------------------------------------- load


def test_load_params_memoizes_on_stat(tmp_path):
    path = tmp_path / "params.json"
    path.write_text(json.dumps(PARAMS_DOC))
    first = load_params(path)
    assert load_params(path) is first
    assert load_params(str(path)) is first  # str and PathLike agree

    # rewriting the file (new mtime, new content) invalidates the memo
    path.write_text(json.dumps({"vdd": 3.3}))
    os.utime(path, ns=(1, 1))
    second = load_params(path)
    assert second is not first
    assert second.vdd == 3.3


def test_load_capacitance_memoizes_on_stat(tmp_path):
    path = tmp_path / "cap.json"
    path.write_text(json.dumps(CAP_DOC))
    first = load_capacitance(path)
    assert load_capacitance(path) is first

    path.write_text(json.dumps(
        {"coupling": [[0.0, 1.0], [1.0, 0.0]], "ground": [1.0, 1.0]}
    ))
    os.utime(path, ns=(1, 1))
    second = load_capacitance(path)
    assert second is not first
    assert second.wire_count == 2


def test_load_params_missing_file(tmp_path):
    with pytest.raises(OSError):
        load_params(tmp_path / "nope.json")
