"""Tests for the hardware BIST baseline."""

import pytest

from repro.bist.area import DEMONSTRATOR_SYSTEM_GATES, estimate_bist_area
from repro.bist.controller import BistController
from repro.bist.error_detector import ErrorDetector
from repro.bist.overtest import analyze_overtesting, collect_functional_transitions
from repro.bist.pattern_gen import MAPatternGenerator
from repro.soc.bus import BusDirection


@pytest.fixture(scope="module")
def address_controller(address_setup):
    generator = MAPatternGenerator(12)
    return BistController(
        generator, address_setup.params, address_setup.calibration
    )


def test_pattern_generator_counts():
    unidirectional = MAPatternGenerator(12)
    assert unidirectional.test_count == 48
    bidirectional = MAPatternGenerator(
        8, (BusDirection.CPU_TO_MEM, BusDirection.MEM_TO_CPU)
    )
    assert bidirectional.test_count == 64
    assert unidirectional.state_count() == 2 * 48 + 2


def test_pattern_generator_emits_unique_pairs():
    generator = MAPatternGenerator(12)
    pairs = generator.vectors()
    assert len(pairs) == len(set((p.v1, p.v2) for p in pairs)) == 48


def test_error_detector_latches_and_attributes():
    detector = ErrorDetector(8)
    assert detector.check(0, 0xF0, 0xF0)
    assert not detector.check(1, 0xF0, 0xF1)
    assert detector.failed
    assert detector.failing_tests() == [1]
    assert detector.log[0].error_bits == 0x01
    detector.reset()
    assert not detector.failed


def test_bist_detects_every_library_defect(address_setup, address_controller):
    # The MA pattern set is complete by construction, so hardware BIST
    # detects every Cth-violating defect — the reference coverage.
    assert address_controller.coverage(address_setup.library) == 1.0


def test_bist_attributes_failures_to_victim_tests(
    address_setup, address_controller
):
    defect = address_setup.library[0]
    result = address_controller.run_session(defect)
    assert result.detected
    generator_tests = list(address_controller.generator.tests())
    failing_victims = {
        generator_tests[index].fault.victim for index in result.failing_tests
    }
    assert failing_victims & set(defect.defective_wires)


def test_bist_cycle_count(address_controller):
    assert address_controller.test_cycles == 96  # 2 cycles x 48 tests


def test_area_estimate_scales_with_width():
    narrow = estimate_bist_area(8)
    wide = estimate_bist_area(32)
    assert wide.total > narrow.total
    bidirectional = estimate_bist_area(8, bidirectional=True)
    assert bidirectional.total > narrow.total
    assert narrow.relative_to(DEMONSTRATOR_SYSTEM_GATES) > 0.05
    with pytest.raises(ValueError):
        narrow.relative_to(0)


def test_overtest_analysis_with_sbst_corpus(
    address_setup, address_controller, address_program
):
    # The SBST program applies (most of) the MA patterns in functional
    # mode, so nearly every BIST rejection is functionally justified.
    report = analyze_overtesting(
        address_setup.library,
        address_setup.params,
        address_setup.calibration,
        address_controller,
        corpus=[address_program],
        bus="addr",
    )
    assert report.library_size == len(address_setup.library)
    assert report.bist_detected == len(address_setup.library)
    assert report.over_test_rate <= 0.10


def test_overtest_analysis_with_plain_workload(
    address_setup, address_controller
):
    """A workload that never produces heavy simultaneous switching leaves
    most marginal defects functionally invisible — BIST over-tests."""
    from repro.core.program_builder import SelfTestProgram
    from repro.isa.assembler import assemble

    source = """
        .org 0x10
        cla
        add a
        add b
        sta out
halt:   jmp halt
a:      .byte 3
b:      .byte 4
out:    .byte 0
    """
    program = assemble(source)
    workload = SelfTestProgram(
        image=program.image, entry=program.entry, memory_size=4096
    )
    report = analyze_overtesting(
        address_setup.library,
        address_setup.params,
        address_setup.calibration,
        address_controller,
        corpus=[workload],
        bus="addr",
    )
    assert report.over_test_rate > 0.5
    assert report.unnecessary_yield_loss > 0.5


def test_collect_functional_transitions_requires_halting_corpus():
    from repro.core.program_builder import SelfTestProgram

    looping = SelfTestProgram(
        image={0: 0x80, 1: 0x02, 2: 0xF0, 3: 0x80, 4: 0x00},
        entry=0,
        memory_size=4096,
    )
    with pytest.raises(RuntimeError):
        collect_functional_transitions([looping], "addr")
