"""Unit tests for the MAF model and MA test generation (Fig. 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.maf import (
    FaultType,
    MAFault,
    corrupted_vector,
    enumerate_bus_faults,
    ma_vector_pair,
)
from repro.soc.bus import BusDirection


def test_fault_counts_match_paper():
    # "there are 64 MAFs on the 8-bit bi-directional data bus (8 x 4 x 2)
    # and 48 MAFs on the 12-bit address bus (12 x 4)"
    address = enumerate_bus_faults(12)
    data = enumerate_bus_faults(
        8, (BusDirection.MEM_TO_CPU, BusDirection.CPU_TO_MEM)
    )
    assert len(address) == 48
    assert len(data) == 64


def test_paper_example_vectors():
    # Section 4.1: positive glitch test (00000000, 11110111) targets line 4.
    fault = MAFault(victim=3, fault_type=FaultType.POSITIVE_GLITCH, width=8)
    pair = ma_vector_pair(fault)
    assert pair.v1 == 0b00000000
    assert pair.v2 == 0b11110111
    # Section 4.3: rising delay on line 8 -> (01111111, 10000000).
    fault = MAFault(victim=7, fault_type=FaultType.RISING_DELAY, width=8)
    pair = ma_vector_pair(fault)
    assert (pair.v1, pair.v2) == (0b01111111, 0b10000000)
    # Section 4.2.1: falling delay (0000:00010000, 1111:11101111) = line 5.
    fault = MAFault(victim=4, fault_type=FaultType.FALLING_DELAY, width=12)
    pair = ma_vector_pair(fault)
    assert (pair.v1, pair.v2) == (0x010, 0xFEF)


def test_negative_glitch_vectors():
    fault = MAFault(victim=2, fault_type=FaultType.NEGATIVE_GLITCH, width=8)
    pair = ma_vector_pair(fault)
    assert pair.v1 == 0xFF
    assert pair.v2 == 0b00000100


def test_corrupted_vector_semantics():
    width = 12
    gp = MAFault(victim=4, fault_type=FaultType.POSITIVE_GLITCH, width=width)
    assert corrupted_vector(gp) == 0xFFF  # stable-0 victim glitches high
    gn = MAFault(victim=4, fault_type=FaultType.NEGATIVE_GLITCH, width=width)
    assert corrupted_vector(gn) == 0x000
    dr = MAFault(victim=4, fault_type=FaultType.RISING_DELAY, width=width)
    assert corrupted_vector(dr) == 0x000  # late victim sampled at old 0
    df = MAFault(victim=4, fault_type=FaultType.FALLING_DELAY, width=width)
    assert corrupted_vector(df) == 0xFFF


def test_fault_naming():
    fault = MAFault(
        victim=0,
        fault_type=FaultType.RISING_DELAY,
        width=8,
        direction=BusDirection.MEM_TO_CPU,
    )
    assert fault.line == 1
    assert fault.name == "dr/line1/mem_to_cpu"


def test_victim_bounds():
    with pytest.raises(ValueError):
        MAFault(victim=12, fault_type=FaultType.RISING_DELAY, width=12)


def test_vector_pair_bounds():
    from repro.core.maf import VectorPair

    with pytest.raises(ValueError):
        VectorPair(v1=256, v2=0, width=8)


@given(
    victim=st.integers(0, 11),
    fault_type=st.sampled_from(list(FaultType)),
)
def test_ma_pair_structure(victim, fault_type):
    """Every MA pair sensitizes the victim and switches all aggressors
    the same way — the defining structure of Fig. 1."""
    width = 12
    fault = MAFault(victim=victim, fault_type=fault_type, width=width)
    pair = ma_vector_pair(fault)
    bit = 1 << victim
    changed = pair.v1 ^ pair.v2
    if fault_type.is_glitch:
        assert not changed & bit  # victim stable
        assert changed == ((1 << width) - 1) & ~bit  # all aggressors switch
    else:
        assert changed == (1 << width) - 1  # everything switches
        # Victim switches opposite to all aggressors.
        victim_rises = bool(pair.v2 & bit)
        for aggressor in range(width):
            if aggressor == victim:
                continue
            assert bool(pair.v2 & (1 << aggressor)) != victim_rises
    # The corrupted vector differs from v2 exactly on the victim.
    assert corrupted_vector(fault) ^ pair.v2 == bit
