"""The content-addressed golden-run artifact cache.

Contract under test: a warm cache entry replaces *all* golden
simulation (``coverage.engine.golden_cycles`` stays zero) without
changing a single campaign outcome; corrupt entries are evicted, never
trusted; disabling the cache leaves the filesystem untouched.
"""

from __future__ import annotations

import os

import pytest

from repro.core import cache as golden_cache
from repro.core.cache import CachedCampaign, GoldenRunCache
from repro.core.campaign import CampaignSpec, run_campaign
from repro.core.engine import capture_golden_with_trace
from repro.obs import runtime as obs_runtime
from repro.xtalk.screen import ScreenVerdict


@pytest.fixture()
def small_spec(address_setup, address_program):
    """A small, fast campaign over the first 12 library defects."""
    return CampaignSpec(
        program=address_program,
        params=address_setup.params,
        calibration=address_setup.calibration,
        defects=tuple(address_setup.library)[:12],
        bus="addr",
        engine="screened",
        label="cache-test",
    )


def _counter(snapshot, name):
    metric = snapshot.get(name)
    return int(metric["value"]) if metric else 0


def _cache_counters(snapshot):
    return {
        name: _counter(snapshot, f"coverage.engine.golden_cache.{name}")
        for name in ("hits", "misses", "stores", "corrupt_evicted")
    }


# ---------------------------------------------------------------- store/load


def test_store_load_round_trip(small_spec):
    capture = capture_golden_with_trace(small_spec.program, "addr")
    verdicts = {
        0: ScreenVerdict(defect_index=0, clean=True),
        3: ScreenVerdict(defect_index=3, clean=False, first_index=7,
                         first_cycle=41),
    }
    store = golden_cache.default_cache()
    assert store is not None
    fingerprint = small_spec.fingerprint()
    path = store.store(fingerprint, None, "addr", capture, verdicts)
    assert path.exists()

    entry = store.load(fingerprint)
    assert isinstance(entry, CachedCampaign)
    assert entry.bus == "addr"
    assert entry.capture.golden == capture.golden
    assert entry.capture.trace == capture.trace
    assert entry.capture.checkpoints == capture.checkpoints
    assert entry.verdicts == verdicts


def test_load_miss_and_interval_keying(small_spec):
    store = golden_cache.default_cache()
    fingerprint = small_spec.fingerprint()
    assert store.load(fingerprint) is None
    capture = capture_golden_with_trace(small_spec.program, "addr")
    store.store(fingerprint, None, "addr", capture)
    # the checkpoint interval is part of the key, not the fingerprint
    assert store.load(fingerprint) is not None
    assert store.load(fingerprint, checkpoint_interval=17) is None
    assert store.key_for(fingerprint) != store.key_for(fingerprint, 17)


def test_corrupt_entry_is_evicted(small_spec):
    capture = capture_golden_with_trace(small_spec.program, "addr")
    store = golden_cache.default_cache()
    fingerprint = small_spec.fingerprint()
    path = store.store(fingerprint, None, "addr", capture)

    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF  # flip a body byte -> sha256 mismatch
    path.write_bytes(bytes(data))

    with obs_runtime.session(detail="metrics") as session:
        assert store.load(fingerprint) is None
        counters = _cache_counters(session.registry.snapshot())
    assert counters["corrupt_evicted"] == 1
    assert counters["misses"] == 1
    assert not path.exists()  # evicted, not retried forever


def test_merge_verdicts(small_spec):
    capture = capture_golden_with_trace(small_spec.program, "addr")
    store = golden_cache.default_cache()
    fingerprint = small_spec.fingerprint()
    store.store(fingerprint, None, "addr", capture,
                {0: ScreenVerdict(defect_index=0, clean=True)})
    store.merge_verdicts(
        fingerprint, None, "addr", capture,
        {1: ScreenVerdict(defect_index=1, clean=False, first_index=2,
                          first_cycle=9)},
    )
    entry = store.load(fingerprint)
    assert set(entry.verdicts) == {0, 1}


# ---------------------------------------------------------------- engine


def test_warm_build_engine_skips_golden_simulation(small_spec):
    with obs_runtime.session(detail="metrics") as session:
        small_spec.build_engine()
        cold = _cache_counters(session.registry.snapshot())
    assert cold["misses"] == 1
    assert cold["stores"] >= 1

    with obs_runtime.session(detail="metrics") as session:
        engine = small_spec.build_engine()
        snapshot = session.registry.snapshot()
        warm = _cache_counters(snapshot)
    assert warm["hits"] == 1
    assert warm["misses"] == 0
    assert warm["stores"] == 0
    assert _counter(snapshot, "coverage.engine.golden_cycles") == 0
    assert engine.golden.cycles > 0  # the golden reference is still there


def test_cold_and_warm_campaigns_are_identical(small_spec):
    cold = run_campaign(small_spec)
    with obs_runtime.session(detail="metrics") as session:
        warm = run_campaign(small_spec)
        counters = _cache_counters(session.registry.snapshot())
        golden_cycles = _counter(
            session.registry.snapshot(), "coverage.engine.golden_cycles"
        )
    assert counters["hits"] == 1
    assert golden_cycles == 0
    assert warm.outcomes == cold.outcomes
    assert warm.coverage() == cold.coverage()


def test_warm_worker_campaign(small_spec):
    """Workers each hit the cache; their counters roll up to the parent."""
    cold = run_campaign(small_spec)
    with obs_runtime.session(detail="metrics") as session:
        warm = run_campaign(small_spec, workers=2)
        snapshot = session.registry.snapshot()
    counters = _cache_counters(snapshot)
    assert counters["hits"] >= 2  # one per worker
    assert _counter(snapshot, "coverage.engine.golden_cycles") == 0
    assert warm.outcomes == cold.outcomes


def test_disabled_cache_writes_nothing(small_spec, monkeypatch):
    monkeypatch.setenv("REPRO_GOLDEN_CACHE", "0")
    assert not golden_cache.cache_enabled()
    assert golden_cache.default_cache() is None
    run_campaign(small_spec)
    root = golden_cache.cache_root()
    assert not os.path.isdir(root) or not list(root.iterdir())


def test_use_cache_false_writes_nothing(small_spec):
    spec = CampaignSpec(
        program=small_spec.program,
        params=small_spec.params,
        calibration=small_spec.calibration,
        defects=small_spec.defects,
        bus="addr",
        engine="screened",
        label="no-cache",
        use_cache=False,
    )
    run_campaign(spec)
    root = golden_cache.cache_root()
    assert not os.path.isdir(root) or not list(root.iterdir())


def test_core_and_cache_flags_do_not_change_fingerprint(small_spec):
    """Cores are bit-identical, so entries are shared across cores; the
    cache toggle is an execution knob, not an input."""
    for core in ("micro", "fast"):
        for use_cache in (True, False):
            spec = CampaignSpec(
                program=small_spec.program,
                params=small_spec.params,
                calibration=small_spec.calibration,
                defects=small_spec.defects,
                bus="addr",
                engine="screened",
                label="cache-test",
                core=core,
                use_cache=use_cache,
            )
            assert spec.fingerprint() == small_spec.fingerprint()


# ---------------------------------------------------------------- maintenance


def test_entries_prune_clear(small_spec, address_program):
    store = golden_cache.default_cache()
    capture = capture_golden_with_trace(small_spec.program, "addr")
    store.store(small_spec.fingerprint(), None, "addr", capture)
    store.store(small_spec.fingerprint(), 64, "addr", capture)

    infos = store.entries()
    assert len(infos) == 2
    assert all(info.ok for info in infos)
    assert all(info.cycles == capture.golden.cycles for info in infos)

    removed = store.prune(max_entries=1)
    assert len(removed) == 1
    assert len(store.entries()) == 1

    assert store.clear() == 1
    assert store.entries() == []


def test_prune_removes_corrupt_headers(small_spec):
    store = golden_cache.default_cache()
    capture = capture_golden_with_trace(small_spec.program, "addr")
    path = store.store(small_spec.fingerprint(), None, "addr", capture)
    path.write_bytes(b"not a cache entry")
    infos = store.entries()
    assert len(infos) == 1 and not infos[0].ok
    assert store.prune() == [path]
    assert store.entries() == []


# ---------------------------------------------------------------- cli


def test_cli_cache_ls_and_clear(small_spec, capsys):
    from repro.cli import main

    assert main(["cache"]) == 0
    assert "cache is empty" in capsys.readouterr().out

    store = golden_cache.default_cache()
    capture = capture_golden_with_trace(small_spec.program, "addr")
    store.store(small_spec.fingerprint(), None, "addr", capture)

    assert main(["cache", "ls"]) == 0
    out = capsys.readouterr().out
    assert "golden-run cache" in out
    assert str(capture.golden.cycles) in out

    assert main(["cache", "clear"]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert store.entries() == []
