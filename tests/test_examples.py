"""Smoke tests: every shipped example runs end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "defect coverage: 100.0%" in result.stdout


def test_fig11_example():
    result = run_example("fig11_address_bus.py", "60")
    assert result.returncode == 0, result.stderr
    assert "lines with zero individual coverage: [1, 2, 11, 12]" in result.stdout


def test_bist_vs_sbst_example():
    result = run_example("bist_vs_sbst.py")
    assert result.returncode == 0, result.stderr
    assert "over-test" in result.stdout


def test_mmio_core_example():
    result = run_example("mmio_core_test.py")
    assert result.returncode == 0, result.stderr
    assert "detected by test(s)" in result.stdout


def test_waveform_explorer_example():
    result = run_example("waveform_explorer.py")
    assert result.returncode == 0, result.stderr
    assert "glitch peak" in result.stdout
    assert "50% crossing" in result.stdout


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "fig11_address_bus.py",
        "bist_vs_sbst.py",
        "mmio_core_test.py",
        "waveform_explorer.py",
    ],
)
def test_examples_exist(name):
    assert (EXAMPLES / name).is_file()
