"""Unit tests for control sequencing and permissive decode."""

from hypothesis import given, strategies as st

from repro.cpu.control import (
    ControlState,
    OpClass,
    decode_raw,
    expected_cycles,
    state_after_decode,
    state_after_operand_formed,
)
from repro.isa.instructions import Mnemonic


def test_decode_memref_classes():
    assert decode_raw(0x00).op_class is OpClass.MEMREF_READ  # LDA
    assert decode_raw(0x20).op_class is OpClass.MEMREF_READ  # AND
    assert decode_raw(0x40).op_class is OpClass.MEMREF_READ  # ADD
    assert decode_raw(0x60).op_class is OpClass.MEMREF_READ  # SUB
    assert decode_raw(0x80).op_class is OpClass.JUMP
    assert decode_raw(0xA0).op_class is OpClass.MEMREF_WRITE
    assert decode_raw(0xC0).op_class is OpClass.JSR


def test_decode_page_and_indirect():
    decoded = decode_raw(0b000_1_0111)
    assert decoded.indirect
    assert decoded.page == 7


def test_jsr_ignores_indirect_bit():
    assert not decode_raw(0b110_1_0000).indirect


def test_decode_branch_mask():
    decoded = decode_raw(0b1110_1010)
    assert decoded.op_class is OpClass.BRANCH
    assert decoded.branch_mask == 0b1010


def test_decode_implied_known_and_unknown():
    assert decode_raw(0xF1).mnemonic is Mnemonic.CLA
    # Undefined sub-opcodes fall back to NOP (hardware-like robustness
    # against corrupted opcode fetches).
    assert decode_raw(0xF5).mnemonic is Mnemonic.NOP
    assert decode_raw(0xFF).mnemonic is Mnemonic.NOP


@given(st.integers(0, 255))
def test_every_byte_decodes(byte):
    decoded = decode_raw(byte)
    assert decoded.op_class in OpClass


def test_state_after_decode():
    assert state_after_decode(decode_raw(0xF0)) is ControlState.EXECUTE_IMPLIED
    assert state_after_decode(decode_raw(0x00)) is ControlState.FETCH2_ADDR


def test_state_after_operand_formed():
    assert (
        state_after_operand_formed(decode_raw(0x00))
        is ControlState.OPERAND_ADDR
    )
    assert (
        state_after_operand_formed(decode_raw(0xA0))
        is ControlState.WRITE_ADDR
    )
    assert (
        state_after_operand_formed(decode_raw(0x80))
        is ControlState.EXECUTE_JUMP
    )
    assert (
        state_after_operand_formed(decode_raw(0xE1))
        is ControlState.EXECUTE_BRANCH
    )


def test_expected_cycles_table():
    assert expected_cycles(decode_raw(0xF0)) == 4  # implied
    assert expected_cycles(decode_raw(0x80)) == 6  # jmp
    assert expected_cycles(decode_raw(0x00)) == 8  # lda direct
    assert expected_cycles(decode_raw(0x10)) == 10  # lda indirect
    assert expected_cycles(decode_raw(0xA0)) == 7  # sta
    assert expected_cycles(decode_raw(0xC0)) == 8  # jsr
