"""Property-based tests on cross-cutting system invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.image import ConflictError, MemoryImage
from repro.core.maf import FaultType, MAFault, ma_vector_pair
from repro.soc.bus import Bus, BusDirection, TransactionKind
from repro.xtalk.calibration import calibrate
from repro.xtalk.capacitance import extract_capacitance
from repro.xtalk.error_model import CrosstalkErrorModel
from repro.xtalk.geometry import BusGeometry
from repro.xtalk.params import ElectricalParams


@settings(max_examples=50)
@given(
    values=st.lists(st.integers(0, 0xFFF), min_size=1, max_size=20),
)
def test_bus_settles_to_last_driven_word(values):
    bus = Bus("addr", 12)
    bus.install_corruption_hook(lambda p, n, d: (n + 1) & 0xFFF)
    for cycle, value in enumerate(values):
        bus.transfer(value, BusDirection.CPU_TO_MEM, TransactionKind.FETCH, cycle)
        assert bus.value == value  # corruption never changes settled state


@settings(max_examples=50)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 255), st.integers(0, 255)),
        min_size=1,
        max_size=30,
    )
)
def test_image_placement_is_idempotent_and_conflict_safe(ops):
    image = MemoryImage(256)
    reference = {}
    for address, value in ops:
        try:
            image.place(address, value, "t")
            reference.setdefault(address, value)
            assert reference[address] == value
        except ConflictError:
            assert address in reference and reference[address] != value
    assert image.as_dict() == reference


@settings(max_examples=30, deadline=None)
@given(
    victim=st.integers(0, 11),
    fault_type=st.sampled_from(list(FaultType)),
    factor=st.floats(1.5, 4.0),
)
def test_ma_test_of_victim_detects_victim_defect(victim, fault_type, factor):
    """Sufficiency half of the MAF theorem, across all four fault types:
    a defect concentrated on a victim whose net coupling crosses Cth is
    caught by at least one of that victim's MA tests."""
    caps = extract_capacitance(BusGeometry.edge_relaxed(12))
    params = ElectricalParams()
    calibration = calibrate(caps, params)
    n = caps.wire_count
    factors = [[1.0] * n for _ in range(n)]
    for j, _ in caps.neighbours(victim):
        factors[victim][j] = factors[j][victim] = factor
    perturbed = caps.perturbed(factors)
    if perturbed.net_coupling(victim) <= calibration.cth:
        # The victim itself stayed within budget (its neighbour may have
        # crossed Cth — that neighbour's own MA tests cover that case).
        return
    model = CrosstalkErrorModel(perturbed, params, calibration)
    detected = False
    for ft in FaultType:
        pair = ma_vector_pair(MAFault(victim=victim, fault_type=ft, width=n))
        if model.would_corrupt(pair.v1, pair.v2, BusDirection.CPU_TO_MEM):
            detected = True
    assert detected


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_necessity_nominal_patterns_weaker_than_ma(data):
    """Any non-MA aggressor subset stresses the victim no harder than the
    MA pattern: if the MA pattern passes, every weaker pattern passes."""
    caps = extract_capacitance(BusGeometry.edge_relaxed(8))
    params = ElectricalParams()
    calibration = calibrate(caps, params)
    n = caps.wire_count
    victim = data.draw(st.integers(0, n - 1))
    factor = data.draw(st.floats(0.5, 2.0))
    factors = [[factor] * n for _ in range(n)]
    perturbed = caps.perturbed(factors)
    model = CrosstalkErrorModel(perturbed, params, calibration)
    ones = (1 << n) - 1
    bit = 1 << victim
    ma_fails = model.would_corrupt(ones & ~bit, bit, BusDirection.CPU_TO_MEM)
    if ma_fails:
        return
    # Draw a weaker pattern: only a subset of aggressors opposes.
    subset = data.draw(st.integers(0, ones & ~bit)) & ~bit
    v1 = subset  # opposing aggressors start high
    v2 = bit  # victim rises, subset falls, the rest stays 0
    received = model.corrupt(v1, v2, BusDirection.CPU_TO_MEM)
    assert received & bit == bit  # victim arrives on time


@settings(max_examples=40)
@given(
    v1=st.integers(0, 255),
    v2=st.integers(0, 255),
    seed_factor=st.floats(1.0, 3.0),
)
def test_corruption_is_deterministic(v1, v2, seed_factor):
    caps = extract_capacitance(BusGeometry.uniform(8))
    params = ElectricalParams()
    calibration = calibrate(caps, params)
    n = caps.wire_count
    factors = [[seed_factor] * n for _ in range(n)]
    model = CrosstalkErrorModel(caps.perturbed(factors), params, calibration)
    first = model.corrupt(v1, v2, BusDirection.MEM_TO_CPU)
    second = model.corrupt(v1, v2, BusDirection.MEM_TO_CPU)
    assert first == second
