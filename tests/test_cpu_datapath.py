"""Datapath tests: instruction semantics and cycle-accurate timing."""

from repro.cpu.control import expected_cycles, decode_raw
from repro.isa.assembler import assemble
from repro.soc.system import CpuMemorySystem
from repro.soc.tracer import BusTracer


def run_source(source, max_cycles=10_000):
    system = CpuMemorySystem()
    program = assemble(source)
    system.load_image(program.image)
    result = system.run(entry=program.entry, max_cycles=max_cycles)
    return system, program, result


def test_lda_sta_roundtrip():
    system, program, result = run_source(
        """
        .org 0x10
        lda src
        sta dst
halt:   jmp halt
src:    .byte 0xA7
dst:    .byte 0x00
        """
    )
    assert result.halted
    assert system.memory.read(program.symbols["dst"]) == 0xA7


def test_add_sets_flags_and_accumulates():
    system, program, result = run_source(
        """
        .org 0x10
        cla
        add a
        add b
        sta out
halt:   jmp halt
a:      .byte 0xF0
b:      .byte 0x20
out:    .byte 0
        """
    )
    assert system.memory.read(program.symbols["out"]) == 0x10
    assert system.cpu.registers.flags.c  # 0xF0 + 0x20 carries


def test_sub_and_branch_on_zero():
    system, program, result = run_source(
        """
        .org 0x10
        lda a
        sub a
        bra_z taken
        lda fail
        sta out
        jmp halt
taken:  lda ok
        sta out
halt:   jmp halt
a:      .byte 0x33
ok:     .byte 0x01
fail:   .byte 0xFF
out:    .byte 0
        """
    )
    assert system.memory.read(program.symbols["out"]) == 0x01


def test_branch_not_taken_falls_through():
    system, program, result = run_source(
        """
        .org 0x10
        cla
        bra_n taken
        lda ok
        sta out
        jmp halt
taken:  lda fail
        sta out
halt:   jmp halt
ok:     .byte 0x5A
fail:   .byte 0xFF
out:    .byte 0
        """
    )
    assert system.memory.read(program.symbols["out"]) == 0x5A


def test_indirect_load():
    system, program, result = run_source(
        """
        .org 0x10
        lda@ ptr
        sta out
halt:   jmp halt
        .org 0x40
ptr:    .byte 0x80        ; points to 0:0x80 (same page as ptr)
        .org 0x80
val:    .byte 0x99
        .org 0x90
out:    .byte 0
        """
    )
    assert system.memory.read(program.symbols["out"]) == 0x99


def test_jsr_saves_return_offset_and_jumps():
    system, program, result = run_source(
        """
        .org 0x10
        jsr sub
after:  sta out
halt:   jmp halt
        .org 0x40
sub:    .byte 0           ; return-offset slot
        lda val
        jmp@ sub          ; return via stored offset (same page trick)
val:    .byte 0x23
        .org 0x90
out:    .byte 0
        """,
    )
    # jsr stores offset of "after" (0x12) at sub, then executes sub+1.
    assert system.memory.read(program.symbols["sub"]) == 0x12
    # jmp@ sub jumps to page(sub):M[sub] = 0:0x12 = after.
    assert system.memory.read(program.symbols["out"]) == 0x23


def test_implied_operations():
    system, program, result = run_source(
        """
        .org 0x10
        lda a
        cma
        asl
        sta out
halt:   jmp halt
a:      .byte 0b00001111
out:    .byte 0
        """
    )
    # ~0x0F = 0xF0, <<1 = 0xE0
    assert system.memory.read(program.symbols["out"]) == 0xE0


def test_halt_convention_self_loop():
    system, program, result = run_source("halt: jmp halt")
    assert result.halted
    assert system.cpu.halted


def test_timeout_on_endless_non_self_loop():
    system, program, result = run_source(
        """
a:      nop
        jmp a
        """,
        max_cycles=200,
    )
    assert not result.halted
    assert result.timed_out


def test_cycle_counts_match_control_table():
    source_and_first_bytes = [
        ("nop\nhalt: jmp halt", 0xF0),
        ("lda 0:0x80\nhalt: jmp halt", 0x00),
        ("sta 0:0x80\nhalt: jmp halt", 0xA0),
    ]
    for source, first in source_and_first_bytes:
        system, program, result = run_source(".org 0x10\n" + source)
        jmp_cycles = expected_cycles(decode_raw(0x80))
        expected = expected_cycles(decode_raw(first)) + jmp_cycles
        assert result.cycles == expected, source


def test_every_memory_access_is_addr_then_data_transaction():
    system = CpuMemorySystem()
    program = assemble(".org 0x10\nlda 0:0x80\nhalt: jmp halt")
    system.load_image(program.image)
    tracer = BusTracer([system.address_bus, system.data_bus])
    system.run(entry=0x10)
    addr = [t for t in tracer.transactions if t.bus == "addr"]
    data = [t for t in tracer.transactions if t.bus == "data"]
    # lda: fetch1, fetch2, operand = 3 accesses; jmp: fetch1, fetch2 = 2.
    assert len(addr) == 5
    assert len(data) == 5
    for a, d in zip(addr, data):
        assert d.cycle == a.cycle + 1


def test_reset_restores_clean_state():
    system, program, result = run_source("halt: jmp halt")
    system.cpu.reset(0x123)
    assert system.cpu.registers.pc == 0x123
    assert not system.cpu.halted
    assert system.cpu.instruction_count == 0
