"""Cross-module integration tests: the full paper pipeline end to end."""

from repro.core.coverage import DefectSimulator
from repro.core.maf import FaultType
from repro.core.sessions import build_sessions
from repro.xtalk.error_model import CrosstalkErrorModel


def test_sbst_detects_known_injected_defect(address_setup, address_program):
    """Inject one severe defect and confirm the self-test program flags it
    through the response mechanism (Fig. 9 flow)."""
    simulator = DefectSimulator(
        address_program,
        address_setup.params,
        address_setup.calibration,
        bus="addr",
    )
    severe = max(address_setup.library, key=lambda d: d.severity)
    outcome = simulator.simulate(severe)
    assert outcome.detected


def test_fault_free_run_passes(address_setup, address_program):
    """A defect-free capacitance set must not trigger any response change
    (no false rejects / no over-testing by SBST)."""
    simulator = DefectSimulator(
        address_program,
        address_setup.params,
        address_setup.calibration,
        bus="addr",
    )
    from repro.core.signature import check_response, make_system

    system = make_system(address_program)
    model = CrosstalkErrorModel(
        address_setup.caps, address_setup.params, address_setup.calibration
    )
    system.address_bus.install_corruption_hook(model.corrupt)
    result = system.run(
        entry=address_program.entry, max_cycles=simulator.golden.max_cycles
    )
    check = check_response(simulator.golden, system, result.halted)
    assert check.passed


def test_sessions_cover_defects_that_session1_misses(address_setup, builder):
    """Tests deferred to later sessions still contribute coverage: running
    every session must detect at least as much as session 1 alone."""
    plan = build_sessions(builder, data_faults=())
    detected_by_session1 = DefectSimulator(
        plan.programs[0],
        address_setup.params,
        address_setup.calibration,
        bus="addr",
    ).detected_set(address_setup.library)
    union = set(detected_by_session1)
    for program in plan.programs[1:]:
        union |= DefectSimulator(
            program, address_setup.params, address_setup.calibration, bus="addr"
        ).detected_set(address_setup.library)
    assert union >= detected_by_session1
    assert len(union) == len(address_setup.library)  # 100 % cumulative


def test_data_bus_direction_asymmetry(data_setup, builder):
    """With an asymmetric driver, a defect can be detectable in only one
    driving direction — the reason the paper tests the data bus both
    ways (Section 3.1)."""
    from repro import ElectricalParams, calibrate
    from repro.core.maf import enumerate_bus_faults
    from repro.soc.bus import BusDirection

    params = ElectricalParams(r_driver_cpu=1000.0, r_driver_mem=1800.0)
    calibration = calibrate(data_setup.caps, params)
    model_caps = data_setup.caps
    n = model_caps.wire_count
    factors = [[1.0] * n for _ in range(n)]
    factors[3][4] = factors[4][3] = 1.6
    perturbed = model_caps.perturbed(factors)
    model = CrosstalkErrorModel(perturbed, params, calibration)
    pair_v1, pair_v2 = 0b11110111, 0b00001000  # rising delay on wire 3
    slow = model.would_corrupt(pair_v1, pair_v2, BusDirection.MEM_TO_CPU)
    fast = model.would_corrupt(pair_v1, pair_v2, BusDirection.CPU_TO_MEM)
    # Same calibration-consistent thresholds per direction make the MA
    # verdicts agree; the *margins* differ.  Verify via explain().
    assert slow == fast


def test_weak_tests_do_not_break_programs(builder):
    program = builder.build_address_bus_program()
    # Weak tests (markers resolved equal) are rare but legal; the program
    # must still run to completion.
    from repro.core.signature import capture_golden

    golden = capture_golden(program)
    assert golden.cycles > 0


def test_glitch_and_delay_families_both_contribute(address_setup, builder):
    """Per-family programs each achieve non-trivial coverage."""
    for family in (FaultType.RISING_DELAY, FaultType.NEGATIVE_GLITCH):
        faults = [
            f for f in builder.address_faults() if f.fault_type is family
        ]
        program = builder.build_address_bus_program(faults)
        if not program.applied:
            continue
        simulator = DefectSimulator(
            program, address_setup.params, address_setup.calibration, bus="addr"
        )
        assert simulator.coverage(address_setup.library) > 0.5
