"""The static analyzer end to end (repro.static.analyzer / coverage)."""

import dataclasses

import pytest

from repro.core.maf import FaultType, MAFault
from repro.core.program_builder import AppliedTest, SelfTestProgram
from repro.core.sessions import build_sessions
from repro.cpu.control import OpClass
from repro.isa.assembler import assemble
from repro.soc.bus import BusDirection
from repro.static import Code, Severity, analyze_program, crosscheck
from repro.static.coverage import predict_coverage


def _program(source: str, entry: int, applied=(), responses=()) -> SelfTestProgram:
    return SelfTestProgram(
        image=assemble(source).image,
        entry=entry,
        memory_size=4096,
        applied=list(applied),
        response_addresses=list(responses),
    )


def _copy(program: SelfTestProgram) -> SelfTestProgram:
    return dataclasses.replace(program, image=dict(program.image))


# -- the seed programs lint clean and agree with the dynamic validator ------


@pytest.mark.parametrize(
    "fixture", ["address_program", "data_program", "combined_program"]
)
def test_seed_programs_have_no_findings(fixture, request):
    program = request.getfixturevalue(fixture)
    report = analyze_program(program)
    assert report.lint.diagnostics == [], report.lint.render()
    assert report.run.exact and report.run.all_paths_halt
    assert report.coverage.all_confirmed


@pytest.mark.parametrize(
    "fixture", ["address_program", "data_program", "combined_program"]
)
def test_crosscheck_agrees_on_seed_programs(fixture, request):
    program = request.getfixturevalue(fixture)
    result = crosscheck(program)
    assert result.agreed, (result.static_only, result.dynamic_only)
    assert result.address_diff == set() and result.data_diff == set()
    assert {f.name for f in result.static.confirmed} == {
        f.name for f in result.dynamic.confirmed
    }


def test_crosscheck_covers_both_data_directions(data_program):
    result = crosscheck(data_program)
    confirmed_directions = {f.direction for f in result.static.confirmed}
    assert confirmed_directions == {
        BusDirection.MEM_TO_CPU,
        BusDirection.CPU_TO_MEM,
    }
    assert result.agreed


def test_builder_lint_hook_and_sessions(builder):
    plan = build_sessions(builder, data_faults=(), lint=True)
    assert plan.programs
    assert all(p.lint_report is not None for p in plan.programs)
    assert plan.all_clean
    builder.lint = False  # restore the shared fixture


# -- corrupting a placed byte must surface a finding ------------------------


def test_corrupted_jump_operand_is_caught(address_program):
    program = _copy(address_program)
    report = analyze_program(program)
    jumps = [
        node
        for node in report.cfg.nodes.values()
        if node.op_class is OpClass.JUMP
        and not node.is_halt
        and not node.indirect
        and node.address in report.run.executed
    ]
    assert jumps
    victim = jumps[0]
    operand_at = (victim.address + 1) % program.memory_size
    program.image[operand_at] ^= 0x80
    findings = analyze_program(program).lint
    assert findings.diagnostics, "corrupted jump target went unnoticed"
    assert findings.errors


def test_corrupted_opcode_byte_is_caught(address_program):
    program = _copy(address_program)
    # Turn the first applied fragment's LDA-class opcode into a STA: the
    # store lands where the read went, clobbering placed bytes.
    entry = program.applied[0].entry
    report = analyze_program(program)
    node = report.cfg.nodes[entry]
    program.image[entry] = (program.image[entry] & 0x1F) | (0b101 << 5)
    findings = analyze_program(program).lint
    assert findings.diagnostics, (
        f"corrupting {node.text} at {entry:#05x} went unnoticed"
    )


# -- each diagnostic code fires on a crafted program ------------------------


def _fault(victim=0, width=12, fault_type=FaultType.POSITIVE_GLITCH,
           direction=None):
    return MAFault(victim=victim, fault_type=fault_type, width=width,
                   direction=direction)


def test_sbst001_unreachable_fragment():
    program = _program(
        """
        .org 0x010
halt:   jmp halt
        .org 0x020
        cla
stuck:  jmp stuck
        """,
        0x010,
        applied=[AppliedTest(_fault(), "pinned", 0x020, ())],
    )
    lint = analyze_program(program).lint
    codes = {d.code for d in lint.errors}
    assert Code.UNREACHABLE_FRAGMENT in codes


def test_sbst002_store_clobbers_code():
    program = _program(
        """
        .org 0x010
        sta 0:0x40
halt:   jmp halt
        .org 0x040
        .byte 0x55         ; a placed byte the store tramples
        """,
        0x010,
    )
    lint = analyze_program(program).lint
    assert [d.code for d in lint.errors] == [Code.STORE_CLOBBERS_CODE]
    # Declaring the cell a response region silences it.
    program.response_addresses = [0x040]
    relinted = analyze_program(program).lint
    assert all(d.code is not Code.STORE_CLOBBERS_CODE for d in relinted.errors)


def test_sbst003_response_hazards():
    program = _program(
        """
        .org 0x010
halt:   jmp halt
        """,
        0x010,
        responses=[0x040, 0x040, 0x010],
    )
    lint = analyze_program(program).lint
    findings = lint.by_code(Code.RESPONSE_HAZARD)
    assert len(findings) == 2
    assert {d.address for d in findings} == {0x040, 0x010}


def test_sbst004_strict_decode_divergence():
    # 0xE3 carries branch mask 0b0011 — the hardware takes it (Z|N), the
    # strict ISA rejects it; executing it is an error-level finding.
    program = _program(
        """
        .org 0x010
        .byte 0xE3
        .byte 0x20
halt:   jmp halt
        """,
        0x010,
    )
    lint = analyze_program(program).lint
    errors = [
        d for d in lint.by_code(Code.SEMANTICS_CHANGED)
        if d.severity is Severity.ERROR
    ]
    assert errors and errors[0].address == 0x010


def test_sbst004_adopted_implied_byte_is_informational():
    # 0xF3 is an undefined implied sub-opcode: a NOP on the hardware,
    # which the builder exploits for value adoption — INFO, not an error.
    program = _program(
        """
        .org 0x010
        .byte 0xF3
halt:   jmp halt
        """,
        0x010,
    )
    lint = analyze_program(program).lint
    findings = lint.by_code(Code.SEMANTICS_CHANGED)
    assert findings and findings[0].severity is Severity.INFO
    assert lint.clean


def test_sbst005_missing_ma_transition():
    program = _program(
        """
        .org 0x010
halt:   jmp halt
        """,
        0x010,
        applied=[AppliedTest(_fault(victim=3), "pinned", 0x010, ())],
    )
    lint = analyze_program(program).lint
    assert [d.code for d in lint.errors] == [Code.MA_TRANSITION]
    assert lint.errors[0].subject == "gp/line4"


def test_sbst006_non_termination():
    program = _program(
        """
        .org 0x010
        nop
        jmp 0:0x010
        """,
        0x010,
    )
    lint = analyze_program(program).lint
    codes = [d.code for d in lint.errors]
    assert codes.count(Code.NON_TERMINATION) >= 1


# -- static coverage mirrors the dynamic report -----------------------------


def test_predict_coverage_counts(address_program):
    coverage = predict_coverage(address_program)
    assert coverage.exact
    assert len(coverage.confirmed) == len(address_program.applied)
    assert coverage.missing == []


def test_check_cli_exit_codes(capsys):
    from repro.cli import main

    assert main(["check", "--bus", "addr", "--crosscheck"]) == 0
    out = capsys.readouterr().out
    assert "MA transitions predicted" in out
    assert "agrees" in out
