"""Unit tests for the metric primitives and the no-op mode."""

import tracemalloc

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import runtime as obs_runtime
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    NULL_REGISTRY,
    Timer,
)


def test_counter_semantics():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert counter.snapshot() == {"type": "counter", "value": 5}


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("c").inc(-1)


def test_gauge_holds_last_value():
    gauge = Gauge("g")
    gauge.set(0.25)
    gauge.set(0.75)
    assert gauge.value == 0.75
    assert gauge.snapshot()["value"] == 0.75


def test_timer_aggregates():
    timer = Timer("t")
    for sample in (100, 300, 200):
        timer.observe(sample)
    assert timer.count == 3
    assert timer.total_ns == 600
    assert timer.min_ns == 100
    assert timer.max_ns == 300
    assert timer.mean_ns == pytest.approx(200.0)
    snap = timer.snapshot()
    assert snap["type"] == "timer"
    assert snap["p50_ns"] in (100, 200, 300)


def test_timer_clamps_negative_and_bounds_reservoir():
    timer = Timer("t", reservoir_size=4)
    timer.observe(-5)
    assert timer.min_ns == 0
    for sample in range(10):
        timer.observe(sample)
    # Aggregates see everything; the reservoir keeps the newest window.
    assert timer.count == 11
    assert len(timer._reservoir) == 4
    assert timer.percentile(1.0) == 9


def test_empty_timer_percentile_is_none():
    assert Timer("t").percentile(0.5) is None


def test_registry_get_or_create_and_kind_mismatch():
    registry = MetricsRegistry()
    counter = registry.counter("cpu.cycles")
    assert registry.counter("cpu.cycles") is counter
    with pytest.raises(TypeError):
        registry.gauge("cpu.cycles")
    registry.gauge("coverage.progress")
    registry.timer("coverage.defect.replay")
    assert len(registry) == 3
    assert sorted(name for name, _ in registry) == [
        "coverage.defect.replay",
        "coverage.progress",
        "cpu.cycles",
    ]


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("a").inc(2)
    registry.gauge("b").set(1.5)
    snap = registry.snapshot()
    assert snap == {
        "a": {"type": "counter", "value": 2},
        "b": {"type": "gauge", "value": 1.5},
    }


def test_null_registry_returns_shared_singletons():
    first = NULL_REGISTRY.counter("x")
    second = NULL_REGISTRY.counter("y")
    assert first is second
    first.inc(100)
    assert first.value == 0
    NULL_REGISTRY.gauge("g").set(3.0)
    NULL_REGISTRY.timer("t").observe(123)
    assert NULL_REGISTRY.snapshot() == {}


@settings(max_examples=20, deadline=None)
@given(
    names=st.lists(
        st.text(alphabet="abc.", min_size=1, max_size=12),
        min_size=1,
        max_size=8,
    ),
    amounts=st.lists(st.integers(0, 1000), min_size=1, max_size=8),
)
def test_noop_hot_path_allocates_nothing(names, amounts):
    """With observability disabled, the instrumentation idiom
    ``registry().counter(name).inc(n)`` must not allocate."""
    assert obs_runtime.active() is None
    registry = obs_runtime.registry()
    pairs = list(zip(names, amounts))

    def exercise():
        for name, amount in pairs:
            registry.counter(name).inc(amount)
            registry.gauge(name).set(0.5)
            registry.timer(name).observe(amount)

    # Untraced dry run: warms bytecode specialization, string interning
    # and any other one-time retained state before measuring.
    exercise()
    tracemalloc.start()
    try:
        before = tracemalloc.get_traced_memory()[0]
        exercise()
        after = tracemalloc.get_traced_memory()[0]
    finally:
        tracemalloc.stop()
    assert after == before
