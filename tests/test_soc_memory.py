"""Unit tests for the memory core."""

import pytest

from repro.soc.memory import Memory


def test_read_write():
    memory = Memory(64)
    memory.write(10, 0xAB)
    assert memory.read(10) == 0xAB


def test_bounds_checking():
    memory = Memory(64)
    with pytest.raises(IndexError):
        memory.read(64)
    with pytest.raises(IndexError):
        memory.write(-1, 0)
    with pytest.raises(ValueError):
        memory.write(0, 256)


def test_load_image_and_snapshot():
    memory = Memory(16)
    memory.load_image({0: 1, 5: 2, 15: 3})
    snapshot = memory.snapshot()
    assert snapshot[0] == 1 and snapshot[5] == 2 and snapshot[15] == 3
    assert len(snapshot) == 16


def test_diff():
    memory = Memory(8)
    before = memory.snapshot()
    memory.write(3, 9)
    diff = memory.diff(before)
    assert diff == {3: (0, 9)}


def test_diff_size_mismatch():
    memory = Memory(8)
    with pytest.raises(ValueError):
        memory.diff(bytes(4))


def test_region():
    memory = Memory(16)
    memory.load_image({4: 1, 5: 2})
    assert memory.region(4, 3) == bytes([1, 2, 0])
    with pytest.raises(IndexError):
        memory.region(14, 4)


def test_fill_and_addresses_with():
    memory = Memory(8)
    memory.fill(7)
    assert list(memory.addresses_with(7)) == list(range(8))
    memory.write(2, 1)
    assert list(memory.addresses_with(1)) == [2]


def test_default_size_is_4k():
    assert Memory().size == 4096
