"""Unit tests for tracing and timing-diagram rendering."""

import io

import pytest

from repro.isa.assembler import assemble
from repro.obs import runtime as obs_runtime
from repro.soc.bus import TransactionKind
from repro.soc.system import CpuMemorySystem
from repro.soc.tracer import (
    BusTracer,
    load_jsonl,
    render_timing_diagram,
    transaction_from_dict,
    transaction_to_dict,
)


def traced_run(source, entry=0x10):
    system = CpuMemorySystem()
    program = assemble(source)
    system.load_image(program.image)
    tracer = BusTracer([system.address_bus, system.data_bus])
    system.run(entry=entry)
    return system, tracer


def test_transitions_on_capture_vector_pairs():
    system, tracer = traced_run(
        """
        .org 0x10
        lda 0:0x80
halt:   jmp halt
        """
    )
    transitions = tracer.transitions_on("addr")
    # Fig. 5 sequence: Ai, Ai+1, Ax, then the jmp fetches.
    assert (0x10, 0x11) in transitions
    assert (0x11, 0x80) in transitions


def test_filters():
    system, tracer = traced_run(
        """
        .org 0x10
        lda 0:0x80
        sta 0:0x81
halt:   jmp halt
        """
    )
    assert tracer.of_kind(TransactionKind.OPERAND_WRITE)
    assert tracer.on_bus("data")
    assert tracer.corrupted() == []
    tracer.clear()
    assert tracer.transactions == []


def test_timing_diagram_renders():
    system, tracer = traced_run(
        """
        .org 0x10
        lda 0:0x80
halt:   jmp halt
        """
    )
    text = render_timing_diagram(tracer.transactions[:8])
    assert "addr" in text and "data" in text
    assert "cycle" in text


def test_timing_diagram_empty():
    assert "no bus activity" in render_timing_diagram([])


def test_ring_buffer_keeps_newest_and_counts_dropped():
    system = CpuMemorySystem()
    program = assemble(".org 0x10\nlda 0:0x80\nhalt: jmp halt")
    system.load_image(program.image)
    reference = BusTracer([system.address_bus, system.data_bus])
    bounded = BusTracer([system.address_bus, system.data_bus],
                        max_transactions=5)
    system.run(entry=0x10, max_cycles=40)
    total = len(reference.transactions)
    assert total > 5
    assert bounded.captured == 5
    assert bounded.dropped == total - 5
    # The ring holds exactly the newest window of the full stream.
    assert list(bounded.transactions) == reference.transactions[-5:]
    bounded.clear()
    assert bounded.captured == 0 and bounded.dropped == 0


def test_ring_buffer_rejects_nonpositive_limit():
    with pytest.raises(ValueError):
        BusTracer(max_transactions=0)


def test_ring_buffer_drops_feed_the_dropped_metric():
    system = CpuMemorySystem()
    program = assemble(".org 0x10\nlda 0:0x80\nhalt: jmp halt")
    system.load_image(program.image)
    tracer = BusTracer([system.address_bus, system.data_bus],
                       max_transactions=3)
    with obs_runtime.session() as session:
        system.run(entry=0x10, max_cycles=40)
    counted = session.registry.snapshot()["bus.trace.dropped"]["value"]
    assert counted == tracer.dropped > 0


def test_jsonl_round_trip():
    system, tracer = traced_run(
        """
        .org 0x10
        lda 0:0x80
        sta 0:0x81
halt:   jmp halt
        """
    )
    stream = io.StringIO()
    written = tracer.export_jsonl(stream)
    assert written == len(tracer.transactions)
    restored = load_jsonl(io.StringIO(stream.getvalue()))
    assert restored == tracer.transactions


def test_jsonl_round_trip_via_file(tmp_path):
    system, tracer = traced_run(".org 0x10\nlda 0:0x80\nhalt: jmp halt")
    path = tmp_path / "trace.jsonl"
    tracer.export_jsonl(path)
    assert load_jsonl(path) == tracer.transactions


def test_transaction_dict_preserves_enums():
    system, tracer = traced_run(".org 0x10\nlda 0:0x80\nhalt: jmp halt")
    original = tracer.transactions[0]
    restored = transaction_from_dict(transaction_to_dict(original))
    assert restored == original
    assert isinstance(restored.kind, TransactionKind)


def test_timing_diagram_marks_corruption():
    system = CpuMemorySystem()
    program = assemble(".org 0x10\nlda 0:0x80\nhalt: jmp halt")
    system.load_image(program.image)
    system.data_bus.install_corruption_hook(lambda p, n, d: n ^ 0x01)
    tracer = BusTracer([system.data_bus])
    system.run(entry=0x10, max_cycles=100)
    text = render_timing_diagram(tracer.transactions[:4])
    assert "*" in text
