"""Unit tests for tracing and timing-diagram rendering."""

from repro.isa.assembler import assemble
from repro.soc.bus import TransactionKind
from repro.soc.system import CpuMemorySystem
from repro.soc.tracer import BusTracer, render_timing_diagram


def traced_run(source, entry=0x10):
    system = CpuMemorySystem()
    program = assemble(source)
    system.load_image(program.image)
    tracer = BusTracer([system.address_bus, system.data_bus])
    system.run(entry=entry)
    return system, tracer


def test_transitions_on_capture_vector_pairs():
    system, tracer = traced_run(
        """
        .org 0x10
        lda 0:0x80
halt:   jmp halt
        """
    )
    transitions = tracer.transitions_on("addr")
    # Fig. 5 sequence: Ai, Ai+1, Ax, then the jmp fetches.
    assert (0x10, 0x11) in transitions
    assert (0x11, 0x80) in transitions


def test_filters():
    system, tracer = traced_run(
        """
        .org 0x10
        lda 0:0x80
        sta 0:0x81
halt:   jmp halt
        """
    )
    assert tracer.of_kind(TransactionKind.OPERAND_WRITE)
    assert tracer.on_bus("data")
    assert tracer.corrupted() == []
    tracer.clear()
    assert tracer.transactions == []


def test_timing_diagram_renders():
    system, tracer = traced_run(
        """
        .org 0x10
        lda 0:0x80
halt:   jmp halt
        """
    )
    text = render_timing_diagram(tracer.transactions[:8])
    assert "addr" in text and "data" in text
    assert "cycle" in text


def test_timing_diagram_empty():
    assert "no bus activity" in render_timing_diagram([])


def test_timing_diagram_marks_corruption():
    system = CpuMemorySystem()
    program = assemble(".org 0x10\nlda 0:0x80\nhalt: jmp halt")
    system.load_image(program.image)
    system.data_bus.install_corruption_hook(lambda p, n, d: n ^ 0x01)
    tracer = BusTracer([system.data_bus])
    system.run(entry=0x10, max_cycles=100)
    text = render_timing_diagram(tracer.transactions[:4])
    assert "*" in text
