"""Tests for multi-session scheduling of conflicting tests."""

import pytest

from repro.core.maf import FaultType
from repro.core.sessions import build_sessions
from repro.core.validate import validate_applied_tests


@pytest.fixture(scope="module")
def address_plan(builder):
    return build_sessions(builder, data_faults=())


def test_sessions_recover_skipped_tests(address_plan):
    # Paper: "This problem can be solved by separating conflicting tests
    # into multiple test programs, which can be executed in different
    # sessions."
    assert address_plan.session_count >= 2
    assert address_plan.applied_total >= 46


def test_no_fault_applied_twice(address_plan):
    seen = set()
    for program in address_plan.programs:
        for fault in program.applied_faults:
            assert fault not in seen
            seen.add(fault)


def test_unapplicable_faults_are_structural(address_plan):
    # The handful of leftovers cannot be placed even alone (their
    # corrupted target collides with their own instruction bytes).
    for fault in address_plan.unapplicable:
        assert fault.fault_type in (
            FaultType.POSITIVE_GLITCH,
            FaultType.NEGATIVE_GLITCH,
        )
    assert len(address_plan.unapplicable) <= 3


def test_every_session_is_valid(address_plan):
    for program in address_plan.programs:
        report = validate_applied_tests(program)
        assert report.all_confirmed


def test_data_bus_needs_single_session(builder):
    plan = build_sessions(builder, address_faults=())
    assert plan.session_count == 1
    assert plan.applied_total == 64
    assert plan.unapplicable == []


def test_max_sessions_bound(builder):
    plan = build_sessions(builder, data_faults=(), max_sessions=1)
    assert plan.session_count == 1
    # Leftovers are reported as unapplicable-within-budget.
    assert len(plan.unapplicable) == 48 - plan.applied_total
