"""System-level tests: bus wiring, corrupted-address routing, run control."""

from repro.isa.assembler import assemble
from repro.soc.bus import BusDirection
from repro.soc.system import CpuMemorySystem
from repro.soc.tracer import BusTracer


def test_corrupted_address_routes_read_to_wrong_cell():
    # Force bit 0 of every address-bus word high: the paper's Fig. 3
    # scenario (the CPU receives data from a wrong address).
    system = CpuMemorySystem()
    program = assemble(
        """
        .org 0x10
        lda 0:0x80
        sta 0:0x91
halt:   jmp halt
        .org 0x80
        .byte 0x01
        .org 0x81
        .byte 0x02
        """
    )
    system.load_image(program.image)

    def redirect_80_to_81(prev, new, direction):
        return 0x081 if new == 0x080 else new

    system.address_bus.install_corruption_hook(redirect_80_to_81)
    system.run(entry=0x10)
    # The operand read of 0x080 arrives at memory as 0x081 -> loads 0x02.
    assert system.memory.read(0x091) == 0x02


def test_corrupted_write_data():
    system = CpuMemorySystem()
    program = assemble(
        """
        .org 0x10
        lda val
        sta out
halt:   jmp halt
val:    .byte 0x0F
out:    .byte 0
        """
    )
    system.load_image(program.image)

    def corrupt_cpu_writes(prev, new, direction):
        if direction is BusDirection.CPU_TO_MEM:
            return new ^ 0x80
        return new

    system.data_bus.install_corruption_hook(corrupt_cpu_writes)
    system.run(entry=0x10)
    assert system.memory.read(program.symbols["out"]) == 0x8F


def test_run_resets_buses_and_clock():
    system = CpuMemorySystem()
    program = assemble("halt: jmp halt")
    system.load_image(program.image)
    first = system.run(entry=0)
    second = system.run(entry=0)
    assert first.cycles == second.cycles


def test_resume_continues_without_reset():
    system = CpuMemorySystem()
    program = assemble(".org 0x10\nnop\nnop\nhalt: jmp halt")
    system.load_image(program.image)
    system.reset(0x10)
    for _ in range(4):  # one NOP
        system.step()
    result = system.resume()
    assert result.halted
    assert result.instructions == 3


def test_transaction_kinds_recorded():
    system = CpuMemorySystem()
    program = assemble(
        """
        .org 0x10
        lda@ ptr
        sta out
halt:   jmp halt
        .org 0x40
ptr:    .byte 0x80
        .org 0x90
out:    .byte 0
        """
    )
    system.load_image(program.image)
    tracer = BusTracer([system.address_bus])
    system.run(entry=0x10)
    kinds = [t.kind.value for t in tracer.transactions]
    assert "pointer_read" in kinds
    assert "operand_read" in kinds
    assert "operand_write" in kinds
    assert kinds.count("fetch") >= 4
