"""System-level tests: bus wiring, corrupted-address routing, run control."""

from repro.isa.assembler import assemble
from repro.soc.bus import BusDirection
from repro.soc.system import CpuMemorySystem
from repro.soc.tracer import BusTracer


def test_corrupted_address_routes_read_to_wrong_cell():
    # Force bit 0 of every address-bus word high: the paper's Fig. 3
    # scenario (the CPU receives data from a wrong address).
    system = CpuMemorySystem()
    program = assemble(
        """
        .org 0x10
        lda 0:0x80
        sta 0:0x91
halt:   jmp halt
        .org 0x80
        .byte 0x01
        .org 0x81
        .byte 0x02
        """
    )
    system.load_image(program.image)

    def redirect_80_to_81(prev, new, direction):
        return 0x081 if new == 0x080 else new

    system.address_bus.install_corruption_hook(redirect_80_to_81)
    system.run(entry=0x10)
    # The operand read of 0x080 arrives at memory as 0x081 -> loads 0x02.
    assert system.memory.read(0x091) == 0x02


def test_corrupted_write_data():
    system = CpuMemorySystem()
    program = assemble(
        """
        .org 0x10
        lda val
        sta out
halt:   jmp halt
val:    .byte 0x0F
out:    .byte 0
        """
    )
    system.load_image(program.image)

    def corrupt_cpu_writes(prev, new, direction):
        if direction is BusDirection.CPU_TO_MEM:
            return new ^ 0x80
        return new

    system.data_bus.install_corruption_hook(corrupt_cpu_writes)
    system.run(entry=0x10)
    assert system.memory.read(program.symbols["out"]) == 0x8F


def test_run_resets_buses_and_clock():
    system = CpuMemorySystem()
    program = assemble("halt: jmp halt")
    system.load_image(program.image)
    first = system.run(entry=0)
    second = system.run(entry=0)
    assert first.cycles == second.cycles


def test_resume_continues_without_reset():
    system = CpuMemorySystem()
    program = assemble(".org 0x10\nnop\nnop\nhalt: jmp halt")
    system.load_image(program.image)
    system.reset(0x10)
    for _ in range(4):  # one NOP
        system.step()
    result = system.resume()
    assert result.halted
    assert result.instructions == 3


def test_snapshot_restore_replays_identically():
    """run k, snapshot, run on, restore, run on again -> identical trace."""
    system = CpuMemorySystem()
    program = assemble(
        """
        .org 0x10
        lda val
        add val
        sta out
        lda@ ptr
        sta out2
halt:   jmp halt
val:    .byte 0x21
out:    .byte 0
out2:   .byte 0
        .org 0x60
ptr:    .byte 0x80
        .org 0x80
        .byte 0x5A
        """
    )
    system.load_image(program.image)
    system.reset(0x10)
    for _ in range(13):  # deliberately mid-instruction
        system.step()
    snap = system.snapshot()
    recorded = []
    system.address_bus.add_observer(recorded.append)
    system.data_bus.add_observer(recorded.append)
    first = system.resume(max_cycles=10_000)
    split = len(recorded)
    system.restore(snap)
    second = system.resume(max_cycles=10_000)
    assert first.halted
    assert first == second
    assert recorded[split:] == recorded[:split]


def test_snapshot_restores_bus_counters_and_clock():
    system = CpuMemorySystem()
    program = assemble(".org 0x10\nnop\nnop\nhalt: jmp halt")
    system.load_image(program.image)
    system.reset(0x10)
    for _ in range(5):
        system.step()
    snap = system.snapshot()
    stats_then = system.address_bus.stats()
    system.resume()
    system.restore(snap)
    assert system.cycle == 5
    assert system.address_bus.stats() == stats_then
    assert not system.cpu.halted


def test_restore_overwrites_memory():
    system = CpuMemorySystem()
    program = assemble(".org 0x10\nhalt: jmp halt")
    system.load_image(program.image)
    system.reset(0x10)
    snap = system.snapshot()
    system.memory.write(0x200, 0xEE)
    system.restore(snap)
    assert system.memory.read(0x200) == 0x00


def test_snapshot_refused_with_mmio_regions():
    import pytest

    from repro.soc.mmio import MMIORegion, RegisterCore

    system = CpuMemorySystem(
        mmio_regions=[MMIORegion(base=0xF00, size=8,
                                 core=RegisterCore(register_count=8))]
    )
    with pytest.raises(ValueError):
        system.snapshot()


def test_observed_resume_counts_deltas():
    from repro.obs import runtime as obs_runtime

    system = CpuMemorySystem()
    program = assemble(".org 0x10\nnop\nnop\nhalt: jmp halt")
    system.load_image(program.image)
    system.reset(0x10)
    for _ in range(4):  # one NOP executed outside the session
        system.step()
    with obs_runtime.session() as obs:
        result = system.resume()
    assert result.halted
    snapshot = obs.registry.snapshot()
    assert snapshot["cpu.resumes"]["value"] == 1
    assert "cpu.runs" not in snapshot
    # Only the cycles of the resumed suffix are attributed to the session.
    assert snapshot["cpu.cycles"]["value"] == result.cycles - 4
    system = CpuMemorySystem()
    program = assemble(
        """
        .org 0x10
        lda@ ptr
        sta out
halt:   jmp halt
        .org 0x40
ptr:    .byte 0x80
        .org 0x90
out:    .byte 0
        """
    )
    system.load_image(program.image)
    tracer = BusTracer([system.address_bus])
    system.run(entry=0x10)
    kinds = [t.kind.value for t in tracer.transactions]
    assert "pointer_read" in kinds
    assert "operand_read" in kinds
    assert "operand_write" in kinds
    assert kinds.count("fetch") >= 4
