"""Shared fixtures.

Expensive artifacts (defect libraries, built programs, golden runs) are
session-scoped: they are deterministic, and dozens of tests read them.
"""

from __future__ import annotations

import os

import pytest

from repro import (
    SelfTestProgramBuilder,
    default_address_bus_setup,
    default_data_bus_setup,
)


@pytest.fixture(autouse=True)
def isolated_golden_cache(tmp_path, monkeypatch):
    """Point the golden-run artifact cache at a per-test directory.

    Keeps tests hermetic: no test sees entries (or cache-counter
    effects) created by another test or by a developer's ambient
    ``.repro-cache``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "golden-cache"))


@pytest.fixture(scope="session")
def campaign_engine():
    """Engine the campaign-layer tests run on.

    Defaults to ``exact``; CI sets ``REPRO_BENCH_ENGINE=screened`` for
    one extra pass so the whole suite also exercises the screened
    engine through the campaign layer (engines are outcome-identical,
    so no expectation changes).
    """
    engine = os.environ.get("REPRO_BENCH_ENGINE", "exact")
    if engine not in ("exact", "screened"):
        raise RuntimeError(f"invalid REPRO_BENCH_ENGINE: {engine!r}")
    return engine


@pytest.fixture(scope="session")
def address_setup():
    """Address-bus setup with a small (fast) defect library."""
    return default_address_bus_setup(defect_count=60, seed=7)


@pytest.fixture(scope="session")
def data_setup():
    """Data-bus setup with a small (fast) defect library."""
    return default_data_bus_setup(defect_count=60, seed=7)


@pytest.fixture(scope="session")
def builder():
    """A default program builder for the demonstrator system."""
    return SelfTestProgramBuilder()


@pytest.fixture(scope="session")
def address_program(builder):
    """The single-session address-bus self-test program."""
    return builder.build_address_bus_program()


@pytest.fixture(scope="session")
def data_program(builder):
    """The single-session data-bus self-test program."""
    return builder.build_data_bus_program()


@pytest.fixture(scope="session")
def combined_program(builder):
    """One program covering both buses."""
    return builder.build()
