"""TraceScreen: backend agreement, first-corruption exactness, dedup."""

from dataclasses import dataclass

import pytest

from repro.soc.bus import BusDirection
from repro.xtalk.calibration import calibrate
from repro.xtalk.capacitance import extract_capacitance
from repro.xtalk.defects import Defect, generate_defect_library
from repro.xtalk.error_model import CrosstalkErrorModel
from repro.xtalk.geometry import BusGeometry
from repro.xtalk.params import ElectricalParams
from repro.xtalk.kernel import TransitionKernel
from repro.xtalk.screen import DecisionEvaluator, TraceScreen, have_numpy
from repro.xtalk import screen as screen_module

WIDTH = 8
ONES = (1 << WIDTH) - 1


@dataclass(frozen=True)
class FakeTransaction:
    previous: int
    driven: int
    direction: BusDirection
    cycle: int


@pytest.fixture(scope="module")
def setup():
    caps = extract_capacitance(BusGeometry.edge_relaxed(WIDTH))
    params = ElectricalParams()
    calibration = calibrate(caps, params)
    library = generate_defect_library(caps, calibration, count=60, seed=7)
    return caps, params, calibration, library


@pytest.fixture(scope="module")
def trace():
    import random

    rng = random.Random(42)
    transactions = []
    value = 0
    for cycle in range(1, 120):
        new = rng.randrange(0, ONES + 1)
        direction = rng.choice(list(BusDirection))
        transactions.append(FakeTransaction(value, new, direction, cycle))
        value = new
    # A few repeats and no-transition entries to exercise deduplication.
    transactions.append(FakeTransaction(value, value, BusDirection.CPU_TO_MEM, 120))
    transactions.extend(
        FakeTransaction(t.previous, t.driven, t.direction, 121 + i)
        for i, t in enumerate(transactions[:10])
    )
    return transactions


def naive_first_corruption(trace, defect, params, calibration):
    model = CrosstalkErrorModel(defect.caps, params, calibration)
    for index, t in enumerate(trace):
        if t.previous == t.driven:
            continue
        if model.corrupt(t.previous, t.driven, t.direction) != t.driven:
            return index
    return None


def test_backends_agree(setup, trace):
    _, params, calibration, library = setup
    pytest.importorskip("numpy")
    v_np = TraceScreen(trace, params, calibration, backend="numpy").screen(
        library.defects
    )
    v_py = TraceScreen(trace, params, calibration, backend="python").screen(
        library.defects
    )
    assert v_np == v_py


@pytest.mark.parametrize("backend", ["python", "auto"])
def test_first_corruption_matches_error_model(setup, trace, backend):
    _, params, calibration, library = setup
    screen = TraceScreen(trace, params, calibration, backend=backend)
    for defect, verdict in zip(library, screen.screen(library.defects)):
        expected = naive_first_corruption(trace, defect, params, calibration)
        assert verdict.defect_index == defect.index
        if expected is None:
            assert verdict.clean
            assert verdict.first_index is None
        else:
            assert not verdict.clean
            assert verdict.first_index == expected
            assert verdict.first_cycle == trace[expected].cycle


def test_nominal_caps_screen_clean(setup, trace):
    caps, params, calibration, _ = setup
    nominal_defect = Defect(
        index=0, caps=caps, defective_wires=(), severity=1.0
    )
    screen = TraceScreen(trace, params, calibration)
    verdict = screen.screen_one(nominal_defect)
    assert verdict.clean
    assert screen.screen([nominal_defect]) == [verdict]


def test_screen_one_matches_batch(setup, trace):
    _, params, calibration, library = setup
    screen = TraceScreen(trace, params, calibration)
    batch = screen.screen(library.defects)
    for defect, verdict in zip(library, batch):
        assert screen.screen_one(defect) == verdict


def test_deduplication_counts(setup, trace):
    _, params, calibration, _ = setup
    screen = TraceScreen(trace, params, calibration)
    real_transitions = [t for t in trace if t.previous != t.driven]
    distinct = {
        (t.previous, t.driven, t.direction) for t in real_transitions
    }
    assert screen.trace_length == len(trace)
    assert screen.unique_transitions == len(distinct)
    assert screen.unique_transitions < len(real_transitions)


def test_empty_trace_is_all_clean(setup):
    _, params, calibration, library = setup
    screen = TraceScreen([], params, calibration)
    assert all(v.clean for v in screen.screen(library.defects))


def test_bad_backend_rejected(setup):
    _, params, calibration, _ = setup
    with pytest.raises(ValueError):
        TraceScreen([], params, calibration, backend="cuda")


def recorded_decisions(trace, defect, params, calibration):
    """What a recorded replay would store: transition -> received word."""
    kernel = TransitionKernel(defect.caps, params, calibration)
    decisions = {}
    for t in trace:
        if t.previous == t.driven:
            continue
        received, _, _ = kernel.decide(t.previous, t.driven, t.direction)
        decisions[(t.previous, t.driven, t.direction)] = received
    return tuple(decisions.items())


def test_decision_evaluator_matches_scalar_kernel(setup, trace):
    """agreement() must reproduce per-entry scalar kernel comparisons."""
    pytest.importorskip("numpy")
    assert have_numpy()
    _, params, calibration, library = setup
    recorder = library.defects[0]
    decisions = recorded_decisions(trace, recorder, params, calibration)
    assert decisions, "trace must produce recordable transitions"
    evaluator = DecisionEvaluator(decisions, params, calibration, WIDTH)
    assert len(evaluator) == len(decisions)
    for defect in library:
        kernel = TransitionKernel(defect.caps, params, calibration)
        scalar = [
            kernel.decide(prev, driven, direction)[0] == received
            for (prev, driven, direction), received in decisions
        ]
        agreement = evaluator.agreement(defect.caps)
        if agreement is None:
            continue  # borderline band: the engine falls back to scalar
        assert list(agreement) == scalar
    # The recording defect must agree with its own recorded decisions.
    self_agreement = evaluator.agreement(recorder.caps)
    assert self_agreement is None or bool(self_agreement.all())


def test_decision_evaluator_requires_numpy(setup, trace, monkeypatch):
    _, params, calibration, library = setup
    decisions = recorded_decisions(
        trace, library.defects[0], params, calibration
    )
    monkeypatch.setattr(screen_module, "_np", None)
    assert not have_numpy()
    with pytest.raises(RuntimeError):
        DecisionEvaluator(decisions, params, calibration, WIDTH)


def test_python_fallback_when_numpy_missing(setup, trace, monkeypatch):
    _, params, calibration, library = setup
    monkeypatch.setattr(screen_module, "_np", None)
    screen = TraceScreen(trace, params, calibration, backend="auto")
    assert screen.backend == "python"
    with pytest.raises(RuntimeError):
        TraceScreen(trace, params, calibration, backend="numpy")
    assert screen.screen(library.defects[:5]) == [
        screen.screen_one(d) for d in library.defects[:5]
    ]
