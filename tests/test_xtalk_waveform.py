"""Tests for the ODE waveform simulator and its agreement with the
lumped estimators (experiment E10's foundation)."""

import pytest

from repro.soc.bus import BusDirection
from repro.xtalk.capacitance import extract_capacitance
from repro.xtalk.geometry import BusGeometry
from repro.xtalk.params import ElectricalParams
from repro.xtalk.rc_model import worst_case_delay
from repro.xtalk.waveform import simulate_transition

WIDTH = 8
ONES = (1 << WIDTH) - 1


@pytest.fixture(scope="module")
def setup():
    caps = extract_capacitance(BusGeometry.uniform(WIDTH))
    return caps, ElectricalParams()


def test_quiet_bus_stays_quiet(setup):
    caps, params = setup
    result = simulate_transition(caps, params, 0x55, 0x55)
    for wire in range(WIDTH):
        assert abs(result.glitch_peak(wire)) < 1e-9


def test_switching_wires_settle_to_targets(setup):
    caps, params = setup
    result = simulate_transition(caps, params, 0x00, 0xFF)
    for wire in range(WIDTH):
        assert result.voltages[wire, -1] == pytest.approx(params.vdd, rel=1e-3)


def test_ma_glitch_polarity(setup):
    caps, params = setup
    victim = 4
    result = simulate_transition(caps, params, 0, ONES & ~(1 << victim))
    assert result.glitch_peak(victim) > 0.1  # visible upward glitch
    down = simulate_transition(caps, params, ONES, 1 << victim)
    assert down.glitch_peak(victim) < -0.1


def test_delay_monotone_in_aggressor_opposition(setup):
    caps, params = setup
    victim = 4
    bit = 1 << victim
    quiet = simulate_transition(caps, params, 0, bit)
    opposed = simulate_transition(caps, params, ONES & ~bit, bit)
    assert opposed.delay_to_half(victim) > quiet.delay_to_half(victim)


def test_lumped_delay_matches_ode_within_tolerance(setup):
    # The Miller-factor Elmore estimate should track the network solution
    # for the MA pattern (this is what justifies the lumped error model).
    caps, params = setup
    victim = 3
    bit = 1 << victim
    result = simulate_transition(caps, params, ONES & ~bit, bit)
    ode_delay = result.delay_to_half(victim)
    lumped = worst_case_delay(caps, params, victim, BusDirection.CPU_TO_MEM)
    assert ode_delay == pytest.approx(lumped, rel=0.25)


def test_delay_zero_for_stable_and_inf_for_unsettled(setup):
    caps, params = setup
    victim = 4
    result = simulate_transition(caps, params, 0, ONES & ~(1 << victim))
    assert result.delay_to_half(victim) == 0.0
    # A ridiculously short window leaves switching wires unsettled.
    short = simulate_transition(
        caps, params, ONES & ~(1 << victim), 1 << victim, t_end=1e-15, points=8
    )
    assert short.delay_to_half(victim) == float("inf")
