"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_parser


def test_build_addr(capsys):
    assert main(["build", "--bus", "addr"]) == 0
    out = capsys.readouterr().out
    assert "tests applied" in out
    assert "/48" in out


def test_build_with_listing(capsys):
    assert main(["build", "--bus", "data", "--listing"]) == 0
    out = capsys.readouterr().out
    assert "lda" in out or "add" in out


def test_simulate_small(capsys):
    assert main(["simulate", "--bus", "data", "--defects", "20"]) == 0
    out = capsys.readouterr().out
    assert "detected" in out
    assert "100.0%" in out


def test_fig11_small(capsys):
    assert main(["fig11", "--defects", "30"]) == 0
    out = capsys.readouterr().out
    assert "cumulative" in out


def test_timing(capsys):
    assert main(["timing"]) == 0
    out = capsys.readouterr().out
    assert "addr" in out and "data" in out


def test_build_hex_export(tmp_path, capsys):
    out = tmp_path / "program.hex"
    assert main(["build", "--bus", "addr", "--hex", str(out)]) == 0
    from repro.soc.hexfile import load_image

    image = load_image(out.read_text())
    assert image  # non-empty, checksum-valid


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        make_parser().parse_args([])


def test_profile_examples_emits_valid_run_report(tmp_path, capsys):
    from repro.obs import RunReport

    out = tmp_path / "run_report.json"
    assert main([
        "profile", "examples", "--defects", "25", "--out", str(out),
    ]) == 0
    report = RunReport.load(out)  # validates on load
    assert report.kind == "profile"
    assert report.config["defects"] == 25
    assert {p["name"] for p in report.phases} >= {
        "setup", "build", "golden", "campaign",
    }
    assert len(report.metrics) >= 10
    assert report.metrics["coverage.defects.simulated"]["value"] == 25
    assert report.results["coverage"]["defects"] == 25
    assert report.spans  # default detail=full keeps the span tree
    assert "run report written" in capsys.readouterr().out


def test_profile_metrics_detail_omits_spans(tmp_path, capsys):
    from repro.obs import RunReport

    out = tmp_path / "run_report.json"
    assert main([
        "profile", "examples", "--defects", "10", "--bus", "data",
        "--detail", "metrics", "--out", str(out),
    ]) == 0
    report = RunReport.load(out)
    assert report.spans == []
    assert report.metrics["bus.data.corrupted"]["value"] > 0


def test_profile_trace_export(tmp_path, capsys):
    from repro.obs import RunReport
    from repro.soc.tracer import load_jsonl

    out = tmp_path / "run_report.json"
    trace = tmp_path / "trace.jsonl"
    assert main([
        "profile", "examples", "--defects", "5", "--out", str(out),
        "--trace", str(trace), "--max-trace", "64",
    ]) == 0
    report = RunReport.load(out)
    assert report.results["trace"]["transactions"] == 64
    assert report.results["trace"]["dropped"] > 0
    assert len(load_jsonl(trace)) == 64
