"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_parser


def test_build_addr(capsys):
    assert main(["build", "--bus", "addr"]) == 0
    out = capsys.readouterr().out
    assert "tests applied" in out
    assert "/48" in out


def test_build_with_listing(capsys):
    assert main(["build", "--bus", "data", "--listing"]) == 0
    out = capsys.readouterr().out
    assert "lda" in out or "add" in out


def test_simulate_small(capsys):
    assert main(["simulate", "--bus", "data", "--defects", "20"]) == 0
    out = capsys.readouterr().out
    assert "detected" in out
    assert "100.0%" in out


def test_fig11_small(capsys):
    assert main(["fig11", "--defects", "30"]) == 0
    out = capsys.readouterr().out
    assert "cumulative" in out


def test_timing(capsys):
    assert main(["timing"]) == 0
    out = capsys.readouterr().out
    assert "addr" in out and "data" in out


def test_build_hex_export(tmp_path, capsys):
    out = tmp_path / "program.hex"
    assert main(["build", "--bus", "addr", "--hex", str(out)]) == 0
    from repro.soc.hexfile import load_image

    image = load_image(out.read_text())
    assert image  # non-empty, checksum-valid


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        make_parser().parse_args([])
