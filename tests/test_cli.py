"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, make_parser


def test_build_addr(capsys):
    assert main(["build", "--bus", "addr"]) == 0
    out = capsys.readouterr().out
    assert "tests applied" in out
    assert "/48" in out


def test_build_with_listing(capsys):
    assert main(["build", "--bus", "data", "--listing"]) == 0
    out = capsys.readouterr().out
    assert "lda" in out or "add" in out


def test_simulate_small(capsys):
    assert main(["simulate", "--bus", "data", "--defects", "20"]) == 0
    out = capsys.readouterr().out
    assert "detected" in out
    assert "100.0%" in out


def test_simulate_json_stdout_is_machine_parseable(capsys):
    """--json emits exactly one JSON object on stdout; progress and
    logs stay on stderr even under a parallel run."""
    assert main([
        "simulate", "--bus", "data", "--defects", "20",
        "--workers", "2", "--json",
    ]) == 0
    captured = capsys.readouterr()
    payload = json.loads(captured.out)  # whole stdout must parse
    assert payload["defects"] == 20
    assert payload["detected"] == 20
    assert payload["backend"] == "process"
    assert payload["workers"] == 2
    assert "defects" in captured.err  # progress went to stderr


def test_simulate_workers_match_serial(capsys):
    """simulate --workers N is byte-identical to the serial output."""
    outputs = {}
    for workers in ("1", "2"):
        assert main([
            "simulate", "--bus", "data", "--defects", "15",
            "--workers", workers, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        # Backend/worker and cache-telemetry fields legitimately differ
        # (the second run is warm); everything the campaign *computed*
        # must not.
        outputs[workers] = {
            key: value for key, value in payload.items()
            if key not in ("backend", "workers", "golden_cache",
                           "golden_cycles")
        }
    assert outputs["1"] == outputs["2"]


def test_simulate_journal_resume(tmp_path, capsys):
    journal = tmp_path / "campaign.jsonl"
    assert main([
        "simulate", "--bus", "data", "--defects", "12",
        "--journal", str(journal), "--json",
    ]) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["executed"] == 12
    # Chop the tail off the journal: simulate an interrupted campaign.
    lines = journal.read_text().splitlines(keepends=True)
    journal.write_text("".join(lines[:7]))
    assert main([
        "simulate", "--bus", "data", "--defects", "12",
        "--journal", str(journal), "--resume", "--json",
    ]) == 0
    resumed = json.loads(capsys.readouterr().out)
    assert resumed["resumed"] == 6  # header + 6 records survived
    assert resumed["executed"] == 6
    for key in ("defects", "detected", "timeouts", "coverage"):
        assert resumed[key] == first[key]


def test_simulate_resume_requires_journal(capsys):
    assert main(["simulate", "--resume"]) == 2
    assert "--journal" in capsys.readouterr().err


def test_fig11_small(capsys):
    assert main(["fig11", "--defects", "30"]) == 0
    out = capsys.readouterr().out
    assert "cumulative" in out


def test_fig11_parallel_matches_serial(capsys):
    assert main(["fig11", "--defects", "25"]) == 0
    serial = capsys.readouterr().out
    assert main(["fig11", "--defects", "25", "--workers", "2"]) == 0
    assert capsys.readouterr().out == serial


def test_timing(capsys):
    assert main(["timing"]) == 0
    out = capsys.readouterr().out
    assert "addr" in out and "data" in out


def test_build_hex_export(tmp_path, capsys):
    out = tmp_path / "program.hex"
    assert main(["build", "--bus", "addr", "--hex", str(out)]) == 0
    from repro.soc.hexfile import load_image

    image = load_image(out.read_text())
    assert image  # non-empty, checksum-valid


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        make_parser().parse_args([])


def test_profile_examples_emits_valid_run_report(tmp_path, capsys):
    from repro.obs import RunReport

    out = tmp_path / "run_report.json"
    assert main([
        "profile", "examples", "--defects", "25", "--out", str(out),
    ]) == 0
    report = RunReport.load(out)  # validates on load
    assert report.kind == "profile"
    assert report.config["defects"] == 25
    assert {p["name"] for p in report.phases} >= {
        "setup", "build", "golden", "campaign",
    }
    assert len(report.metrics) >= 10
    assert report.metrics["coverage.defects.simulated"]["value"] == 25
    assert report.results["coverage"]["defects"] == 25
    assert report.spans  # default detail=full keeps the span tree
    assert "run report written" in capsys.readouterr().out


def test_profile_metrics_detail_omits_spans(tmp_path, capsys):
    from repro.obs import RunReport

    out = tmp_path / "run_report.json"
    assert main([
        "profile", "examples", "--defects", "10", "--bus", "data",
        "--detail", "metrics", "--out", str(out),
    ]) == 0
    report = RunReport.load(out)
    assert report.spans == []
    assert report.metrics["bus.data.corrupted"]["value"] > 0


def test_profile_parallel_rolls_up_worker_metrics(tmp_path, capsys):
    """One RunReport describes the whole parallel campaign: worker
    shard snapshots are merged into the parent registry."""
    from repro.obs import RunReport

    out = tmp_path / "run_report.json"
    assert main([
        "profile", "examples", "--defects", "16", "--bus", "data",
        "--workers", "2", "--detail", "metrics", "--out", str(out),
    ]) == 0
    report = RunReport.load(out)
    assert report.config["workers"] == 2
    assert report.metrics["coverage.defects.simulated"]["value"] == 16
    assert report.metrics["campaign.workers"]["value"] == 2
    assert report.metrics["coverage.defect.replay"]["count"] == 16
    assert report.results["coverage"]["defects"] == 16


def test_profile_trace_export(tmp_path, capsys):
    from repro.obs import RunReport
    from repro.soc.tracer import load_jsonl

    out = tmp_path / "run_report.json"
    trace = tmp_path / "trace.jsonl"
    assert main([
        "profile", "examples", "--defects", "5", "--out", str(out),
        "--trace", str(trace), "--max-trace", "64",
    ]) == 0
    report = RunReport.load(out)
    assert report.results["trace"]["transactions"] == 64
    assert report.results["trace"]["dropped"] > 0
    assert len(load_jsonl(trace)) == 64
