"""Tests for golden references and response checking."""

import pytest

from repro.core.program_builder import SelfTestProgram
from repro.core.signature import (
    capture_golden,
    check_response,
    diff_cells,
    make_system,
)


def tiny_program():
    # entry: lda 0:0x80 ; sta 0:0x90 ; halt
    image = {
        0x10: 0x00,
        0x11: 0x80,
        0x12: 0xA0,
        0x13: 0x90,
        0x14: 0x80,
        0x15: 0x14,
        0x80: 0x5A,
    }
    return SelfTestProgram(image=image, entry=0x10, memory_size=4096)


def test_capture_golden_basic():
    golden = capture_golden(tiny_program())
    assert golden.cycles > 0
    assert golden.snapshot[0x90] == 0x5A
    assert golden.max_cycles > golden.cycles


def test_capture_golden_raises_on_nonhalting():
    # jmp 0x002 at 0, nop at 2, jmp 0x000 at 3: ping-pongs forever.
    program = SelfTestProgram(
        image={0: 0x80, 1: 0x02, 2: 0xF0, 3: 0x80, 4: 0x00},
        entry=0,
        memory_size=4096,
    )
    with pytest.raises(RuntimeError):
        capture_golden(program)


def test_check_response_pass():
    program = tiny_program()
    golden = capture_golden(program)
    system = make_system(program)
    result = system.run(entry=program.entry)
    check = check_response(golden, system, result.halted)
    assert check.passed and not check.detected
    assert check.mismatches == 0


def test_check_response_detects_divergence():
    program = tiny_program()
    golden = capture_golden(program)
    system = make_system(program)
    system.data_bus.install_corruption_hook(lambda p, n, d: n ^ 0x01)
    result = system.run(entry=program.entry, max_cycles=golden.max_cycles)
    check = check_response(golden, system, result.halted)
    assert check.detected
    if result.halted:
        assert check.mismatches > 0
        assert diff_cells(golden, system)


def test_check_response_timeout_counts_as_detected():
    program = tiny_program()
    golden = capture_golden(program)
    system = make_system(program)
    check = check_response(golden, system, halted=False)
    assert check.detected and check.timed_out
