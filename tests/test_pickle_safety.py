"""Pickle safety of everything a campaign worker receives — or must not.

The process backend ships exactly one object to each worker: the
:class:`CampaignSpec`.  These tests pin down that every component of a
spec round-trips through pickle with equality intact and rebuilds
byte-identical behavior (the :class:`TransitionKernel` check), and —
just as important — that objects owning live handles or bus hooks
(journals, engines with installed corruption hooks, tracers wired into
buses) are *not* part of what crosses the process boundary.
"""

from __future__ import annotations

import pickle

from repro.core.campaign import CampaignSpec
from repro.core.maf import FaultType, MAFault, enumerate_bus_faults
from repro.soc.bus import BusDirection
from repro.xtalk.kernel import TransitionKernel


def round_trip(value):
    return pickle.loads(pickle.dumps(value))


class TestFaultModelPickles:
    def test_ma_fault_round_trip(self):
        for fault in enumerate_bus_faults(4):
            clone = round_trip(fault)
            assert clone == fault
            assert hash(clone) == hash(fault)

    def test_fault_type_identity(self):
        for fault_type in FaultType:
            assert round_trip(fault_type) is fault_type

    def test_ma_fault_survives_in_containers(self):
        faults = {fault: fault.victim for fault in enumerate_bus_faults(3)}
        assert round_trip(faults) == faults


class TestKernelInputsPickle:
    """The kernel itself stays in-process; its *inputs* ride the spec."""

    def test_inputs_round_trip_with_equality(self, address_setup):
        assert round_trip(address_setup.caps) == address_setup.caps
        assert round_trip(address_setup.params) == address_setup.params
        assert (
            round_trip(address_setup.calibration)
            == address_setup.calibration
        )

    def test_rebuilt_kernel_decides_identically(self, address_setup):
        """A worker's kernel (rebuilt from unpickled inputs) must agree
        transition for transition with the parent's."""
        original = TransitionKernel(
            address_setup.caps, address_setup.params,
            address_setup.calibration,
        )
        rebuilt = TransitionKernel(
            round_trip(address_setup.caps),
            round_trip(address_setup.params),
            round_trip(address_setup.calibration),
        )
        width_mask = (1 << original.width) - 1
        samples = [
            (0x000, 0xFFF), (0xFFF, 0x000), (0x555, 0xAAA),
            (0xAAA, 0x555), (0x001, 0xFFE), (0x123, 0x456),
        ]
        for previous, driven in samples:
            previous &= width_mask
            driven &= width_mask
            for direction in BusDirection:
                assert rebuilt.decide(previous, driven, direction) == (
                    original.decide(previous, driven, direction)
                )
                assert rebuilt.corrupts(previous, driven, direction) == (
                    original.corrupts(previous, driven, direction)
                )


class TestCampaignComponentsPickle:
    def test_defect_library_round_trip(self, address_setup):
        library = address_setup.library
        clone = round_trip(library)
        assert clone == library
        assert list(clone) == list(library)
        assert clone[0].caps == library[0].caps

    def test_program_round_trip(self, address_program):
        clone = round_trip(address_program)
        assert clone == address_program
        assert clone.image == address_program.image
        assert clone.entry == address_program.entry

    def test_spec_round_trip_rebuilds_equivalent_engine(
        self, address_setup, address_program, campaign_engine
    ):
        spec = CampaignSpec(
            program=address_program,
            params=address_setup.params,
            calibration=address_setup.calibration,
            defects=tuple(address_setup.library)[:5],
            bus="addr",
            engine=campaign_engine,
        )
        clone = round_trip(spec)
        assert clone == spec
        engine = spec.build_engine()
        rebuilt = clone.build_engine()
        assert rebuilt.golden.snapshot == engine.golden.snapshot
        assert rebuilt.golden.cycles == engine.golden.cycles
        for defect in spec.defects:
            assert rebuilt.check(defect) == engine.check(defect)


class TestLiveHandlesStayHome:
    """Audit: nothing with an open file or installed hook is shipped."""

    def test_spec_carries_no_live_system_state(
        self, address_setup, address_program
    ):
        spec = CampaignSpec(
            program=address_program,
            params=address_setup.params,
            calibration=address_setup.calibration,
            defects=tuple(address_setup.library)[:3],
        )
        engine = spec.build_engine()  # installs hooks on live buses
        blob = pickle.dumps(spec)
        # The engine's live substrate must not be reachable from the
        # spec: pickling it again after engine construction yields the
        # same bytes as pickling the untouched clone.
        assert pickle.dumps(round_trip(spec)) == blob
        assert engine.golden.cycles > 0

    def test_tracer_export_does_not_hold_the_file_open(
        self, tmp_path, address_program
    ):
        from repro.core.signature import make_system
        from repro.soc.tracer import BusTracer

        system = make_system(address_program)
        tracer = BusTracer([system.address_bus, system.data_bus])
        system.run(entry=address_program.entry, max_cycles=500)
        path = tmp_path / "trace.jsonl"
        written = tracer.export_jsonl(path)
        assert written > 0
        # The handle is closed after export: an exclusive rewrite of the
        # path must see all bytes flushed rather than a partial file.
        first = path.read_bytes()
        tracer.export_jsonl(path)
        assert path.read_bytes() == first
