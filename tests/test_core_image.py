"""Unit tests for the conflict-checked memory image."""

import pytest

from repro.core.image import ConflictError, MemoryImage


def test_place_and_share():
    image = MemoryImage(256)
    image.place(10, 0x42, "a")
    image.place(10, 0x42, "b")  # same value shares
    assert image.value_at(10) == 0x42
    assert image.owner_at(10) == "a"
    assert 10 in image


def test_conflicting_value_raises():
    image = MemoryImage(256)
    image.place(10, 0x42, "a", role="data")
    with pytest.raises(ConflictError) as info:
        image.place(10, 0x43, "b")
    assert info.value.address == 10
    assert "a" in str(info.value)


def test_exclusive_bytes_never_share():
    image = MemoryImage(256)
    image.place(5, 0x00, "resp", exclusive=True)
    with pytest.raises(ConflictError):
        image.place(5, 0x00, "other")
    image.place(6, 0x00, "other")
    with pytest.raises(ConflictError):
        image.place(6, 0x00, "resp2", exclusive=True)


def test_reserve_and_patch():
    image = MemoryImage(256)
    image.reserve(20, "jmp")
    with pytest.raises(ConflictError):
        image.place(20, 0x80, "other")
    with pytest.raises(ValueError):
        image.as_dict()  # unpatched
    image.patch(20, 0x85, "jmp")
    assert image.as_dict()[20] == 0x85


def test_patch_ownership_and_state():
    image = MemoryImage(256)
    image.reserve(20, "jmp")
    with pytest.raises(ValueError):
        image.patch(20, 1, "stranger")
    image.patch(20, 1, "jmp")
    with pytest.raises(ValueError):
        image.patch(20, 2, "jmp")  # no longer pending


def test_place_flexible_adopts_existing():
    image = MemoryImage(256)
    image.place(30, 0x77, "a")
    value = image.place_flexible(30, "b", preferred=0x01)
    assert value == 0x77


def test_place_flexible_respects_avoid_and_allowed():
    image = MemoryImage(256)
    value = image.place_flexible(31, "a", preferred=0x01, avoid=(0x01, 0x02))
    assert value == 0x03
    value = image.place_flexible(
        32, "a", preferred=0x05, allowed=(0xF0, 0xF1), avoid=(0xF0,)
    )
    assert value == 0xF1
    image.place(33, 0x50, "x")
    with pytest.raises(ConflictError):
        image.place_flexible(33, "b", avoid=(0x50,))
    with pytest.raises(ConflictError):
        image.place_flexible(33, "b", allowed=(0x10,))


def test_wrapping_addresses():
    image = MemoryImage(256)
    image.place(256 + 5, 1, "a")
    assert image.value_at(5) == 1


def test_snapshot_restore_roundtrip():
    image = MemoryImage(256)
    image.place(1, 0x11, "a")
    state = image.snapshot_state()
    image.place(2, 0x22, "b")
    image.reserve(3, "c")
    image.restore_state(state)
    assert image.value_at(2) is None
    assert image.is_free(3)
    assert image.value_at(1) == 0x11


def test_provenance_roles():
    image = MemoryImage(256)
    image.place(9, 0x01, "t1", role="marker")
    assert image.provenance()[9].role == "marker"
