"""Unit and property tests for instruction encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import (
    EncodingError,
    Instruction,
    decode,
    encode,
    first_byte,
    instruction_length_from_first_byte,
    make_address,
    offset_of,
    page_of,
)
from repro.isa.instructions import Format, Mnemonic, spec_for


def test_address_helpers():
    assert make_address(0xF, 0xEF) == 0xFEF
    assert page_of(0xFEF) == 0xF
    assert offset_of(0xFEF) == 0xEF


def test_address_helpers_reject_out_of_range():
    with pytest.raises(EncodingError):
        make_address(16, 0)
    with pytest.raises(EncodingError):
        make_address(0, 256)


def test_lda_encoding_matches_paper_layout():
    # Fig. 4: byte 1 = opcode + page, byte 2 = offset.
    byte1, byte2 = encode(Instruction(Mnemonic.LDA, operand=make_address(0xE, 0x00)))
    assert byte1 == 0b000_0_1110
    assert byte2 == 0x00


def test_indirect_bit():
    direct = encode(Instruction(Mnemonic.STA, operand=0x123))
    indirect = encode(Instruction(Mnemonic.STA, indirect=True, operand=0x123))
    assert indirect[0] == direct[0] | 0x10
    assert indirect[1] == direct[1]


def test_implied_encoding_single_byte():
    (byte,) = encode(Instruction(Mnemonic.NOP))
    assert byte == 0xF0
    (byte,) = encode(Instruction(Mnemonic.CLA))
    assert byte == 0xF1


def test_branch_encoding():
    byte1, byte2 = encode(Instruction(Mnemonic.BRA_Z, operand=0x42))
    assert byte1 == 0b1110_0010
    assert byte2 == 0x42


def test_encode_rejects_bad_operands():
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.NOP, operand=1))
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.LDA))
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.LDA, operand=0x1000))
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.BRA_N, operand=0x100))
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.JSR, indirect=True, operand=0))


def test_decode_requires_second_byte_for_two_byte_forms():
    with pytest.raises(EncodingError):
        decode(0x00)  # LDA needs byte 2


def test_first_byte_helper():
    assert first_byte(Instruction(Mnemonic.LDA, operand=0x200)) == 0x02


def test_length_from_first_byte():
    assert instruction_length_from_first_byte(0xF0) == 1
    assert instruction_length_from_first_byte(0x00) == 2
    assert instruction_length_from_first_byte(0xE1) == 2


@st.composite
def instructions(draw):
    mnemonic = draw(st.sampled_from(list(Mnemonic)))
    indirect = False
    spec = None
    try:
        spec = spec_for(mnemonic)
    except KeyError:  # pragma: no cover - all base specs exist
        pass
    if spec.format is Format.MEMREF and mnemonic is not Mnemonic.JSR:
        indirect = draw(st.booleans())
    if spec.format is Format.IMPLIED:
        operand = None
    elif spec.format is Format.BRANCH:
        operand = draw(st.integers(0, 255))
    else:
        operand = draw(st.integers(0, 0xFFF))
    return Instruction(mnemonic, indirect=indirect, operand=operand)


@given(instructions())
def test_encode_decode_roundtrip(instruction):
    encoded = encode(instruction)
    decoded = decode(*encoded)
    assert decoded == instruction


@given(st.integers(0, 255), st.integers(0, 255))
def test_decode_never_returns_wrong_width(byte1, byte2):
    try:
        instruction = decode(byte1, byte2)
    except EncodingError:
        return
    assert encode(instruction)[0] == byte1
