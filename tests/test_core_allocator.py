"""Unit tests for the glue allocator."""

import pytest

from repro.core.allocator import AllocationError, GlueAllocator
from repro.core.image import MemoryImage


def make(avoid=(), start=0x20, size=4096):
    image = MemoryImage(size)
    return image, GlueAllocator(image, start=start, avoid=avoid)


def test_alloc_run_skips_used_and_avoid():
    image, allocator = make(avoid=[0x22])
    image.place(0x20, 1, "x")
    start = allocator.alloc_run(2)
    # 0x20 used, 0x22 avoided -> first clean pair is 0x23.
    assert start == 0x23


def test_alloc_run_is_monotonic():
    image, allocator = make()
    a = allocator.alloc_run(4)
    b = allocator.alloc_run(4)
    assert b == a + 4


def test_alloc_run_wraps_below_start():
    image, allocator = make(start=4090, size=4096)
    for address in range(4090, 4096):
        image.place(address, 0, "x")
    start = allocator.alloc_run(3)
    assert start < 4090


def test_alloc_run_exhaustion():
    image, allocator = make(size=256, start=0)
    for address in range(256):
        image.place(address, 0, "x")
    with pytest.raises(AllocationError):
        allocator.alloc_byte()


def test_alloc_run_never_wraps_through_end():
    image, allocator = make(size=256, start=0xF0)
    for address in range(0xF8, 0x100):
        image.place(address, 0, "x")
    start = allocator.alloc_run(16)
    assert start + 16 <= 256
    assert start < 0xF0


def test_find_operand_page_prefers_free_nonavoided():
    image, allocator = make(avoid=[0x0FF])
    page = allocator.find_operand_page(0xFF, 0x42)
    assert page == 1  # page 0's cell is avoided


def test_find_operand_page_shares_equal_value():
    image, allocator = make()
    for page in range(16):
        image.place((page << 8) | 0x10, page, "x")
    page = allocator.find_operand_page(0x10, 0x07)
    assert page == 7  # only page 7 already holds the needed content


def test_find_operand_page_exhaustion():
    image, allocator = make(size=512)  # pages 0 and 1 only
    image.place(0x010, 1, "x")
    image.place(0x110, 2, "x")
    with pytest.raises(AllocationError):
        allocator.find_operand_page(0x10, 0x99)


def test_find_writable_page_requires_free_cell():
    image, allocator = make(size=512)
    image.place(0x020, 0x42, "x")
    assert allocator.find_writable_page(0x20) == 1
    image.place(0x120, 0x42, "x")
    with pytest.raises(AllocationError):
        allocator.find_writable_page(0x20)


def test_alloc_run_constrained_page_and_offset():
    image, allocator = make()
    start = allocator.alloc_run_constrained(4, page=2, offset=0x80)
    assert start == 0x280
    start = allocator.alloc_run_constrained(4, page=None, offset=0x90)
    assert start & 0xFF == 0x90
    start = allocator.alloc_run_constrained(4, page=3, offset=None)
    assert start >> 8 == 3


def test_alloc_run_constrained_failure():
    image, allocator = make(size=512)
    image.place(0x080, 1, "x")
    image.place(0x180, 1, "x")
    with pytest.raises(AllocationError):
        allocator.alloc_run_constrained(2, page=None, offset=0x80)
