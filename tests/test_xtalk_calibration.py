"""Unit and property tests for the calibration invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.soc.bus import BusDirection
from repro.xtalk.calibration import calibrate
from repro.xtalk.capacitance import extract_capacitance
from repro.xtalk.error_model import CrosstalkErrorModel
from repro.xtalk.geometry import BusGeometry
from repro.xtalk.params import ElectricalParams


@pytest.fixture
def setup():
    caps = extract_capacitance(BusGeometry.edge_relaxed(8))
    params = ElectricalParams()
    return caps, params, calibrate(caps, params)


def test_cth_above_all_nominal_nets(setup):
    caps, params, calibration = setup
    assert all(net < calibration.cth for net in caps.net_couplings())


def test_nominal_bus_passes_every_ma_pattern(setup):
    caps, params, calibration = setup
    model = CrosstalkErrorModel(caps, params, calibration)
    width = caps.wire_count
    ones = (1 << width) - 1
    for victim in range(width):
        bit = 1 << victim
        for v1, v2 in [
            (0, ones & ~bit),
            (ones, bit),
            (ones & ~bit, bit),
            (bit, ones & ~bit),
        ]:
            for direction in BusDirection:
                assert not model.would_corrupt(v1, v2, direction)


def test_safety_factor_must_exceed_one():
    caps = extract_capacitance(BusGeometry.uniform(4))
    with pytest.raises(ValueError):
        calibrate(caps, ElectricalParams(), safety_factor=1.0)


def test_nonuniform_ground_rejected():
    caps = extract_capacitance(BusGeometry.uniform(4))
    lopsided = type(caps)(
        coupling=caps.coupling, ground=(80.0, 80.0, 80.0, 81.0)
    )
    with pytest.raises(ValueError):
        calibrate(lopsided, ElectricalParams())


def test_defective_wires_criterion(setup):
    caps, params, calibration = setup
    assert calibration.defective_wires(caps) == ()
    n = caps.wire_count
    factors = [[1.0] * n for _ in range(n)]
    factors[3][4] = factors[4][3] = 3.0
    bumped = caps.perturbed(factors)
    assert calibration.is_defective(bumped)
    defective = calibration.defective_wires(bumped)
    assert 3 in defective or 4 in defective


@settings(max_examples=40)
@given(
    victim=st.integers(0, 7),
    factor=st.floats(0.1, 6.0),
)
def test_ma_test_fails_iff_net_coupling_exceeds_cth(victim, factor):
    """The in-model ICCAD'99 theorem: under consistent calibration, the MA
    pattern for a wire produces an error exactly when that wire's net
    coupling exceeds Cth."""
    caps = extract_capacitance(BusGeometry.edge_relaxed(8))
    params = ElectricalParams()
    calibration = calibrate(caps, params)
    n = caps.wire_count
    factors = [[1.0] * n for _ in range(n)]
    for j, _ in caps.neighbours(victim):
        factors[victim][j] = factors[j][victim] = factor
    perturbed = caps.perturbed(factors)
    model = CrosstalkErrorModel(perturbed, params, calibration)
    exceeds = perturbed.net_coupling(victim) > calibration.cth

    ones = (1 << n) - 1
    bit = 1 << victim
    direction = BusDirection.CPU_TO_MEM
    # Rising-delay MA pattern.
    delay_fails = (
        model.corrupt(ones & ~bit, bit, direction) & bit
    ) != bit
    # Positive-glitch MA pattern.
    glitch_fails = (
        model.corrupt(0, ones & ~bit, direction) & bit
    ) != 0
    assert delay_fails == exceeds
    assert glitch_fails == exceeds
