"""Unit tests for defect library generation."""

import pytest

from repro.xtalk.calibration import calibrate
from repro.xtalk.capacitance import extract_capacitance
from repro.xtalk.defects import generate_defect_library
from repro.xtalk.geometry import BusGeometry
from repro.xtalk.params import ElectricalParams


@pytest.fixture(scope="module")
def setup():
    caps = extract_capacitance(BusGeometry.edge_relaxed(12))
    params = ElectricalParams()
    return caps, calibrate(caps, params)


def test_requested_count(setup):
    caps, calibration = setup
    library = generate_defect_library(caps, calibration, count=50, seed=1)
    assert len(library) == 50
    assert library.attempts >= 50


def test_every_defect_violates_cth(setup):
    caps, calibration = setup
    library = generate_defect_library(caps, calibration, count=40, seed=2)
    for defect in library:
        assert defect.defective_wires
        assert calibration.is_defective(defect.caps)
        assert defect.severity > 1.0


def test_determinism(setup):
    caps, calibration = setup
    a = generate_defect_library(caps, calibration, count=20, seed=42)
    b = generate_defect_library(caps, calibration, count=20, seed=42)
    assert [d.defective_wires for d in a] == [d.defective_wires for d in b]
    assert [d.severity for d in a] == [d.severity for d in b]


def test_side_wires_rarely_defective(setup):
    # The paper: "no perturbation is large enough to cause Lines 1, 2,
    # 11, and 12 to be defective" in their 1000-defect library.
    caps, calibration = setup
    library = generate_defect_library(caps, calibration, count=300, seed=3)
    incidence = library.per_wire_incidence()
    assert incidence[0] == 0
    assert incidence[1] == 0
    assert incidence[10] == 0
    assert incidence[11] == 0
    center_total = sum(incidence[w] for w in range(3, 9))
    assert center_total > 0.8 * sum(incidence.values())


def test_acceptance_rate_and_histogram(setup):
    caps, calibration = setup
    library = generate_defect_library(caps, calibration, count=60, seed=4)
    assert 0.0 < library.acceptance_rate <= 1.0
    histogram = library.severity_histogram(bins=5)
    assert sum(count for _, count in histogram) == 60


def test_attempt_budget_enforced(setup):
    caps, _ = setup
    params = ElectricalParams()
    # An absurd safety factor makes defects (nearly) impossible.
    strict = calibrate(caps, params, safety_factor=50.0)
    with pytest.raises(RuntimeError):
        generate_defect_library(
            caps, strict, count=5, seed=5, max_attempts=200
        )


def test_bad_arguments(setup):
    caps, calibration = setup
    with pytest.raises(ValueError):
        generate_defect_library(caps, calibration, count=0)
    with pytest.raises(ValueError):
        generate_defect_library(caps, calibration, count=5, sigma=0.0)
