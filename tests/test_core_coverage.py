"""Tests for the defect simulation campaign (Fig. 9 / Fig. 11)."""

import pytest

from repro.core.coverage import DefectSimulator, address_bus_line_coverage


@pytest.fixture(scope="module")
def address_simulator(address_setup, address_program):
    return DefectSimulator(
        address_program,
        address_setup.params,
        address_setup.calibration,
        bus="addr",
    )


def test_bus_argument_validated(address_setup, address_program):
    with pytest.raises(ValueError):
        DefectSimulator(
            address_program,
            address_setup.params,
            address_setup.calibration,
            bus="ctrl",
        )


def test_single_defect_outcomes(address_setup, address_simulator):
    outcome = address_simulator.simulate(address_setup.library[0])
    assert outcome.defect_index == 0
    assert isinstance(outcome.detected, bool)


def test_full_program_coverage_high(address_setup, address_simulator):
    # Paper: "the defect coverage of the test program is 100% on both
    # address and data busses."
    coverage = address_simulator.coverage(address_setup.library)
    assert coverage >= 0.95


def test_data_bus_coverage_full(data_setup, data_program):
    simulator = DefectSimulator(
        data_program, data_setup.params, data_setup.calibration, bus="data"
    )
    assert simulator.coverage(data_setup.library) == 1.0


def test_fig11_shape(address_setup, builder, address_program):
    report = address_bus_line_coverage(
        address_setup.library,
        address_setup.params,
        address_setup.calibration,
        builder=builder,
        full_program=address_program,
    )
    lines = {line.line: line for line in report.lines}
    # Side lines have no individual coverage (paper: lines 1, 2, 11, 12).
    assert lines[1].individual == 0.0
    assert lines[2].individual == 0.0
    assert lines[11].individual == 0.0
    assert lines[12].individual == 0.0
    # Center lines dominate.
    assert lines[6].individual > 0.3
    # Cumulative coverage is monotone and reaches ~100 %.
    values = [line.cumulative for line in report.lines]
    assert values == sorted(values)
    assert report.cumulative_coverage >= 0.95
    assert report.full_program_coverage >= 0.95
    assert report.as_rows()[0]["line"] == 1


def test_detected_set_is_subset_of_library(address_setup, address_simulator):
    detected = address_simulator.detected_set(address_setup.library)
    assert detected <= {d.index for d in address_setup.library}
