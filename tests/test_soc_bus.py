"""Unit tests for the tri-state bus model."""

import pytest

from repro.soc.bus import Bus, BusDirection, BusTransaction, TransactionKind


def make_bus(width=8):
    return Bus("data", width)


def test_initial_value_and_width_checks():
    bus = Bus("addr", 12, initial=0xABC)
    assert bus.value == 0xABC
    with pytest.raises(ValueError):
        Bus("x", 0)
    with pytest.raises(ValueError):
        Bus("x", 4, initial=16)


def test_hold_last_value_semantics():
    bus = make_bus()
    bus.transfer(0x55, BusDirection.CPU_TO_MEM, TransactionKind.FETCH, 1)
    assert bus.value == 0x55
    # The next transfer's transition starts from the held word.
    seen = []
    bus.install_corruption_hook(lambda prev, new, d: seen.append((prev, new)) or new)
    bus.transfer(0xAA, BusDirection.MEM_TO_CPU, TransactionKind.FETCH, 2)
    assert seen == [(0x55, 0xAA)]


def test_corruption_hook_changes_received_not_settled():
    bus = make_bus()
    bus.install_corruption_hook(lambda prev, new, d: new ^ 0x01)
    received = bus.transfer(0x10, BusDirection.CPU_TO_MEM, TransactionKind.FETCH, 1)
    assert received == 0x11
    # Glitches/delays are transient: the line settles to the driven word.
    assert bus.value == 0x10


def test_observers_see_transactions():
    bus = make_bus()
    log = []
    bus.add_observer(log.append)
    bus.transfer(0x01, BusDirection.CPU_TO_MEM, TransactionKind.OPERAND_WRITE, 7)
    assert len(log) == 1
    transaction = log[0]
    assert isinstance(transaction, BusTransaction)
    assert transaction.cycle == 7
    assert transaction.kind is TransactionKind.OPERAND_WRITE
    assert not transaction.corrupted


def test_corrupted_flag():
    bus = make_bus()
    bus.install_corruption_hook(lambda prev, new, d: new | 0x80)
    log = []
    bus.add_observer(log.append)
    bus.transfer(0x01, BusDirection.MEM_TO_CPU, TransactionKind.FETCH, 1)
    assert log[0].corrupted
    bus.transfer(0x81, BusDirection.MEM_TO_CPU, TransactionKind.FETCH, 2)
    assert not log[1].corrupted


def test_transfer_rejects_oversized_value():
    bus = make_bus()
    with pytest.raises(ValueError):
        bus.transfer(0x100, BusDirection.CPU_TO_MEM, TransactionKind.FETCH, 1)


def test_reset_keeps_hook_and_observers():
    bus = make_bus()
    log = []
    bus.add_observer(log.append)
    bus.install_corruption_hook(lambda p, n, d: n)
    bus.transfer(0x33, BusDirection.CPU_TO_MEM, TransactionKind.FETCH, 1)
    bus.reset()
    assert bus.value == 0
    bus.transfer(0x44, BusDirection.CPU_TO_MEM, TransactionKind.FETCH, 2)
    assert len(log) == 2


def test_hook_result_masked_to_width():
    bus = Bus("addr", 4)
    bus.install_corruption_hook(lambda p, n, d: 0x1FF)
    received = bus.transfer(0x5, BusDirection.CPU_TO_MEM, TransactionKind.FETCH, 1)
    assert received == 0xF
