"""Control-flow-graph recovery (repro.static.cfg)."""

from repro.cpu.control import OpClass
from repro.isa.assembler import assemble
from repro.static.cfg import recover_cfg


def _cfg(source: str, entry: int):
    program = assemble(source)
    return recover_cfg(program.image, entry)


def test_straight_line_with_halt():
    cfg = _cfg(
        """
        .org 0x010
        cla
        lda 0:0x40
halt:   jmp halt
        .org 0x040
        .byte 0x55
        """,
        0x010,
    )
    assert sorted(cfg.nodes) == [0x010, 0x011, 0x013]
    assert cfg.halt_nodes == {0x013}
    assert cfg.nodes[0x013].is_halt
    assert cfg.nodes[0x010].op_class is OpClass.IMPLIED
    assert cfg.nodes[0x011].op_class is OpClass.MEMREF_READ
    # The loaded data byte is not code.
    assert 0x040 not in cfg.nodes
    assert 0x040 not in cfg.code_bytes()


def test_branch_covers_both_arms():
    cfg = _cfg(
        """
        .org 0x010
        bra_z 0x20
        nop
halt:   jmp halt
        .org 0x020
other:  jmp other
        """,
        0x010,
    )
    node = cfg.nodes[0x010]
    assert set(node.successors) == {0x012, 0x020}
    # Both arms reach their own halt self-loop.
    assert cfg.halt_nodes == {0x013, 0x020}


def test_jsr_enters_after_the_return_slot():
    cfg = _cfg(
        """
        .org 0x010
        jsr 0:0x30
halt:   jmp halt
        .org 0x031
        cla
back:   jmp back
        """,
        0x010,
    )
    assert cfg.nodes[0x010].successors == (0x031,)
    assert 0x031 in cfg.nodes  # the subroutine body
    assert 0x030 not in cfg.nodes  # the return-byte slot is data


def test_indirect_jump_resolves_through_initial_pointer():
    cfg = _cfg(
        """
        .org 0x010
        jmp@ 0:0x30
        .org 0x030
        .byte 0x40
        .org 0x040
halt:   jmp halt
        """,
        0x010,
    )
    assert cfg.nodes[0x010].successors == (0x040,)
    assert cfg.nodes[0x010].indirect
    assert 0x010 not in cfg.unresolved_nodes


def test_indirect_jump_with_rewritten_pointer_is_unresolved():
    cfg = _cfg(
        """
        .org 0x010
        sta 0:0x30
        jmp@ 0:0x30
        .org 0x030
        .byte 0x40
        .org 0x040
halt:   jmp halt
        """,
        0x010,
    )
    assert 0x012 in cfg.unresolved_nodes


def test_fallthrough_into_unplaced_memory_is_marked():
    # A lone CLA falls through into a hole; the fill byte 0x00 decodes
    # permissively (LDA 0:0x00), so the walk continues but marks it.
    cfg = _cfg(".org 0x010\ncla", 0x010)
    assert cfg.nodes[0x011].from_hole
    assert cfg.nodes[0x011].strict_mismatch is False  # fill decodes strictly


def test_effective_address_and_text():
    cfg = _cfg(
        """
        .org 0x010
        sta 3:0x7F
halt:   jmp halt
        """,
        0x010,
    )
    node = cfg.nodes[0x010]
    assert node.effective_address() == 0x37F
    assert node.text == "a3 7f"


def test_basic_blocks_split_at_branch_targets():
    cfg = _cfg(
        """
        .org 0x010
        cla
        bra_z 0x20
        nop
halt:   jmp halt
        .org 0x020
target: jmp target
        """,
        0x010,
    )
    blocks = {block[0]: block for block in cfg.basic_blocks()}
    assert blocks[0x010] == (0x010, 0x011)  # cla + branch
    assert 0x013 in blocks  # fall-through arm
    assert 0x020 in blocks  # taken arm


def test_unreachable_fragment_is_absent(address_program):
    cfg = recover_cfg(
        address_program.image, address_program.entry,
        address_program.memory_size,
    )
    for test in address_program.applied:
        assert cfg.is_reachable(test.entry), test.fault.name
    assert cfg.halt_nodes
