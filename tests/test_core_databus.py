"""Unit tests for the data-bus fragment builders (Sections 4.1/4.3)."""

import pytest

from repro.core.assembly import ProgramAssembly
from repro.core.databus import (
    build_read_group_compacted,
    build_read_test,
    build_write_test,
)
from repro.core.maf import FaultType, MAFault, ma_vector_pair
from repro.core.program_builder import SelfTestProgramBuilder
from repro.core.signature import capture_golden, make_system
from repro.core.validate import validate_applied_tests
from repro.soc.bus import BusDirection
from repro.soc.tracer import BusTracer


def fresh_assembly():
    assembly = ProgramAssembly()
    assembly.build_halt()
    return assembly


def read_fault(victim=7, fault_type=FaultType.RISING_DELAY):
    return MAFault(
        victim=victim,
        fault_type=fault_type,
        width=8,
        direction=BusDirection.MEM_TO_CPU,
    )


def write_fault(victim=7, fault_type=FaultType.RISING_DELAY):
    return MAFault(
        victim=victim,
        fault_type=fault_type,
        width=8,
        direction=BusDirection.CPU_TO_MEM,
    )


def run_fragment(assembly, entry):
    from repro.core.program_builder import SelfTestProgram

    program = SelfTestProgram(
        image=assembly.image.as_dict(), entry=entry, memory_size=4096
    )
    system = make_system(program)
    tracer = BusTracer([system.data_bus])
    result = system.run(entry=entry)
    assert result.halted
    return system, tracer


def test_read_test_applies_pair_on_data_bus():
    assembly = fresh_assembly()
    fault = read_fault()
    info = build_read_test(assembly, fault)
    system, tracer = run_fragment(assembly, info.entry)
    pair = ma_vector_pair(fault)
    transitions = [
        (t.previous, t.driven)
        for t in tracer.transactions
        if t.direction is BusDirection.MEM_TO_CPU
    ]
    assert (pair.v1, pair.v2) in transitions
    # The loaded second vector lands in the response byte.
    assert system.memory.read(info.responses[0]) == pair.v2


def test_write_test_drives_v2_from_cpu():
    assembly = fresh_assembly()
    fault = write_fault(victim=0, fault_type=FaultType.POSITIVE_GLITCH)
    info = build_write_test(assembly, fault)
    system, tracer = run_fragment(assembly, info.entry)
    pair = ma_vector_pair(fault)
    cpu_transitions = [
        (t.previous, t.driven)
        for t in tracer.transactions
        if t.direction is BusDirection.CPU_TO_MEM
    ]
    assert (pair.v1, pair.v2) in cpu_transitions
    # Self-storing response: v2 sits at the written cell.
    assert system.memory.read(info.responses[0]) == pair.v2


def test_compacted_group_signature_is_sum():
    assembly = fresh_assembly()
    faults = [read_fault(victim=v) for v in range(8)]
    info = build_read_group_compacted(assembly, faults)
    system, tracer = run_fragment(assembly, info.entry)
    # Fig. 8: rising-delay contributions are one-hot, pass signature 0xFF.
    assert system.memory.read(info.responses[0]) == 0xFF


def test_compacted_group_applies_every_pair():
    assembly = fresh_assembly()
    faults = [read_fault(victim=v) for v in range(8)]
    info = build_read_group_compacted(assembly, faults)
    system, tracer = run_fragment(assembly, info.entry)
    transitions = {
        (t.previous, t.driven)
        for t in tracer.transactions
        if t.direction is BusDirection.MEM_TO_CPU
    }
    for fault in faults:
        pair = ma_vector_pair(fault)
        assert (pair.v1, pair.v2) in transitions


def test_group_rejects_empty_and_wrong_direction():
    assembly = fresh_assembly()
    with pytest.raises(ValueError):
        build_read_group_compacted(assembly, [])
    with pytest.raises(ValueError):
        build_read_test(assembly, write_fault())
    with pytest.raises(ValueError):
        build_write_test(assembly, read_fault())


def test_full_data_program_matches_paper_counts(data_program):
    # "we were able to apply 64 out of 64 MA tests for the databus"
    assert len(data_program.applied) == 64
    assert data_program.skipped == []
    report = validate_applied_tests(data_program)
    assert report.all_confirmed


def test_data_program_without_compaction():
    builder = SelfTestProgramBuilder(compact_data_bus=False)
    program = builder.build_data_bus_program()
    assert len(program.applied) == 64
    golden = capture_golden(program)
    assert golden.cycles > 0
    report = validate_applied_tests(program)
    assert report.all_confirmed


def test_compaction_shrinks_program(data_program):
    builder = SelfTestProgramBuilder(compact_data_bus=False)
    uncompacted = builder.build_data_bus_program()
    assert data_program.program_size < uncompacted.program_size
