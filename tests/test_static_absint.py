"""Abstract interpretation and bus-word prediction (repro.static.absint)."""

from repro.isa.assembler import assemble
from repro.soc.bus import BusDirection
from repro.soc.system import CpuMemorySystem
from repro.soc.tracer import BusTracer
from repro.static.absint import predict_run


def _trace(image, entry, max_cycles=100_000):
    """Dynamic reference: run the image and collect bus activity."""
    system = CpuMemorySystem()
    system.load_image(image)
    tracer = BusTracer([system.address_bus, system.data_bus])
    result = system.run(entry=entry, max_cycles=max_cycles)
    return tracer, result


def _assert_exact_match(source: str, entry: int):
    """The abstract trace must equal the dynamic one word for word."""
    image = assemble(source).image
    run = predict_run(image, entry)
    tracer, result = _trace(image, entry)
    assert run.exact and run.all_paths_halt
    assert result.halted
    predicted = [
        (t.cycle, t.kind, t.direction, t.value)
        for t in run.transactions
    ]
    observed = [
        (t.cycle, t.kind, t.direction, t.driven)
        for t in tracer.transactions
    ]
    assert predicted == observed
    assert run.address_transitions == {
        (t.previous, t.driven) for t in tracer.on_bus("addr")
    }
    assert run.data_transitions == {
        (t.previous, t.driven, t.direction) for t in tracer.on_bus("data")
    }
    return run


def test_exact_prediction_every_instruction_class():
    _assert_exact_match(
        """
        .org 0x010
        cla
        cma
        asl
        asr
        cmc
        nop
        lda 0:0x60
        and 0:0x61
        add 0:0x62
        sub 0:0x63
        lda@ 0:0x64
        sta 0:0x70
        jsr 0:0x50
halt:   jmp halt

        .org 0x051
        jmp 0:0x024        ; return to the halt after the JSR

        .org 0x060
        .byte 0xC3
        .byte 0x0F
        .byte 0x11
        .byte 0x02
        .byte 0x66         ; pointer for lda@
        .org 0x066
        .byte 0x99
        """,
        0x010,
    )


def test_exact_prediction_branch_taken_and_not_taken():
    _assert_exact_match(
        """
        .org 0x010
        cla                ; Z is set by nothing yet; AC known 0
        lda 0:0x40         ; loads 0x00 -> Z set
        bra_z 0x20         ; taken
        nop
        .org 0x020
        lda 0:0x41         ; loads 0x01 -> Z clear
        bra_z 0x30         ; not taken
halt:   jmp halt
        .org 0x040
        .byte 0x00
        .byte 0x01
        """,
        0x010,
    )


def test_exact_prediction_terminating_store_loop():
    # Decrement a counter cell until zero: exercises stores, flags and
    # the loop detector's tolerance for productive (state-changing) loops.
    _assert_exact_match(
        """
        .org 0x010
loop:   lda 0:0x40
        sub 0:0x41
        sta 0:0x40
        bra_z 0x1a
        jmp 0:0x010
halt:   jmp halt
        .org 0x040
        .byte 0x03
        .byte 0x01
        """,
        0x010,
    )


def test_store_updates_are_read_back():
    # JSR plants the return byte; the subroutine loads it back: the
    # abstract memory must show the stored value, not the initial fill.
    run = _assert_exact_match(
        """
        .org 0x010
        jsr 0:0x30
halt:   jmp halt
        .org 0x031
        lda 0:0x30         ; reads the just-written return offset (0x12)
        jmp 0:0x012
        """,
        0x010,
    )
    assert any(
        store.target == 0x030 and store.value == 0x12 for store in run.stores
    )


def test_constant_state_loop_is_detected():
    image = assemble(
        """
        .org 0x010
        nop
        jmp 0:0x010
        """
    ).image
    run = predict_run(image, 0x010)
    assert not run.all_paths_halt
    assert any(note.kind == "state-loop" for note in run.notes)


def test_idempotent_store_loop_reaches_fixed_point():
    # STA rewrites the same value each iteration: memory stops changing,
    # so the state-loop detector must catch it without a step budget.
    image = assemble(
        """
        .org 0x010
        cla
loop:   sta 0:0x40
        jmp 0:0x011
        """
    ).image
    run = predict_run(image, 0x010, max_steps=10_000)
    assert any(note.kind == "state-loop" for note in run.notes)
    assert run.steps < 100


def test_cycle_numbering_matches_the_system(address_program):
    run = predict_run(
        address_program.image,
        address_program.entry,
        address_program.memory_size,
    )
    tracer, result = _trace(address_program.image, address_program.entry)
    assert run.exact
    assert run.transactions[-1].cycle <= result.cycles
    assert [
        (t.cycle, t.value) for t in run.transactions if t.bus == "addr"
    ] == [(t.cycle, t.driven) for t in tracer.on_bus("addr")]


def test_directions_follow_the_datapath():
    image = assemble(
        """
        .org 0x010
        sta 0:0x40
halt:   jmp halt
        """
    ).image
    run = predict_run(image, 0x010)
    writes = [
        t for t in run.transactions
        if t.bus == "data" and t.direction is BusDirection.CPU_TO_MEM
    ]
    assert len(writes) == 1 and writes[0].value == 0  # AC resets to 0
