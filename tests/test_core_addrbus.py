"""Unit tests for the address-bus fragment builders (Section 4.2)."""

import pytest

from repro.core.addrbus import (
    address_footprint,
    build_delay_fragment,
    build_two_instruction_fragment,
    delay_footprint,
    glitch_footprint,
)
from repro.core.allocator import AllocationError
from repro.core.assembly import ProgramAssembly
from repro.core.maf import FaultType, MAFault, corrupted_vector, ma_vector_pair
from repro.core.program_builder import SelfTestProgram
from repro.core.signature import make_system
from repro.soc.tracer import BusTracer


def fresh_assembly():
    assembly = ProgramAssembly()
    assembly.build_halt()
    return assembly


def fault_of(fault_type, victim=4):
    return MAFault(victim=victim, fault_type=fault_type, width=12)


def run_fragment(assembly, entry):
    program = SelfTestProgram(
        image=assembly.image.as_dict(), entry=entry, memory_size=4096
    )
    system = make_system(program)
    tracer = BusTracer([system.address_bus])
    result = system.run(entry=entry)
    assert result.halted
    return system, tracer


def addr_transitions(tracer):
    return {(t.previous, t.driven) for t in tracer.transactions}


def test_delay_fragment_layout_and_transition():
    assembly = fresh_assembly()
    fault = fault_of(FaultType.FALLING_DELAY)  # the paper's example (df/5)
    info = build_delay_fragment(assembly, fault)
    assembly.finish_fragment(info.entry)
    assembly.resolve_deferred_markers()
    pair = ma_vector_pair(fault)
    assert info.entry == pair.v1 - 1
    system, tracer = run_fragment(assembly, info.entry)
    assert (pair.v1, pair.v2) in addr_transitions(tracer)
    # Pass marker value reaches the response byte.
    pass_value = system.memory.read(pair.v2)
    assert system.memory.read(info.responses[0]) == pass_value


def test_delay_fragment_rejects_glitch_fault():
    assembly = fresh_assembly()
    with pytest.raises(ValueError):
        build_delay_fragment(assembly, fault_of(FaultType.POSITIVE_GLITCH))


def test_delay_fragment_hot_jump_window_fails_over():
    assembly = fresh_assembly()
    # dr line 1: v1 = 0xFFE, jump window would cover 0xFFF and 0x000.
    with pytest.raises(AllocationError):
        build_delay_fragment(assembly, fault_of(FaultType.RISING_DELAY, 0))


def test_two_instruction_fragment_glitch():
    assembly = fresh_assembly()
    fault = fault_of(FaultType.POSITIVE_GLITCH)
    info = build_two_instruction_fragment(assembly, fault)
    assembly.finish_fragment(info.entry)
    assembly.resolve_deferred_markers()
    pair = ma_vector_pair(fault)
    assert info.entry == (pair.v2 - 2) % 4096
    system, tracer = run_fragment(assembly, info.entry)
    assert (pair.v1, pair.v2) in addr_transitions(tracer)


def test_two_instruction_detects_its_own_fault():
    """End-to-end single-fragment check of the Fig. 7 response scheme:
    redirecting the corrupted fetch makes the response differ."""
    assembly = fresh_assembly()
    fault = fault_of(FaultType.NEGATIVE_GLITCH, victim=6)
    info = build_two_instruction_fragment(assembly, fault)
    assembly.finish_fragment(info.entry)
    assembly.resolve_deferred_markers()
    pair = ma_vector_pair(fault)
    corrupted = corrupted_vector(fault)

    system, _ = run_fragment(assembly, info.entry)
    golden_response = system.memory.read(info.responses[0])

    program = SelfTestProgram(
        image=assembly.image.as_dict(), entry=info.entry, memory_size=4096
    )
    faulty = make_system(program)

    def glitch_hook(prev, new, direction):
        return corrupted if (prev, new) == (pair.v1, pair.v2) else new

    faulty.address_bus.install_corruption_hook(glitch_hook)
    result = faulty.run(entry=info.entry)
    assert result.halted
    assert faulty.memory.read(info.responses[0]) != golden_response


def test_delay_fragment_detects_its_own_fault():
    assembly = fresh_assembly()
    fault = fault_of(FaultType.FALLING_DELAY, victim=9)
    info = build_delay_fragment(assembly, fault)
    assembly.finish_fragment(info.entry)
    assembly.resolve_deferred_markers()
    pair = ma_vector_pair(fault)
    corrupted = corrupted_vector(fault)

    system, _ = run_fragment(assembly, info.entry)
    golden_response = system.memory.read(info.responses[0])

    program = SelfTestProgram(
        image=assembly.image.as_dict(), entry=info.entry, memory_size=4096
    )
    faulty = make_system(program)
    faulty.address_bus.install_corruption_hook(
        lambda p, n, d: corrupted if (p, n) == (pair.v1, pair.v2) else n
    )
    result = faulty.run(entry=info.entry)
    assert result.halted
    assert faulty.memory.read(info.responses[0]) != golden_response


def test_footprints_cover_pinned_bytes():
    fault = fault_of(FaultType.RISING_DELAY, victim=5)
    pair = ma_vector_pair(fault)
    footprint = delay_footprint(fault)
    for offset in (-1, 0, 1, 2):
        assert (pair.v1 + offset) % 4096 in footprint
    assert pair.v2 in footprint
    assert corrupted_vector(fault) in footprint

    glitch = fault_of(FaultType.NEGATIVE_GLITCH, victim=5)
    gpair = ma_vector_pair(glitch)
    gfoot = glitch_footprint(glitch)
    for offset in range(-2, 4):
        assert (gpair.v2 + offset) % 4096 in gfoot
    # Delay faults reserve both technique windows.
    combined = address_footprint(fault)
    assert delay_footprint(fault) <= combined
    assert glitch_footprint(fault) <= combined
