"""Unit tests for hierarchical spans and the runtime switch."""

from repro.obs import runtime as obs_runtime
from repro.obs.spans import NULL_SPAN, SpanRecorder


def test_span_nesting_builds_a_forest():
    recorder = SpanRecorder()
    with recorder.span("setup"):
        pass
    with recorder.span("campaign", bus="addr"):
        with recorder.span("defect", index=0):
            pass
        with recorder.span("defect", index=1):
            pass
    assert [root.name for root in recorder.roots] == ["setup", "campaign"]
    campaign = recorder.roots[1]
    assert campaign.attrs == {"bus": "addr"}
    assert [child.name for child in campaign.children] == ["defect", "defect"]
    assert campaign.children[1].attrs == {"index": 1}


def test_span_timing_is_monotone_and_nested():
    recorder = SpanRecorder()
    with recorder.span("outer") as outer:
        with recorder.span("inner") as inner:
            pass
    assert outer.start_ns is not None and outer.end_ns is not None
    assert outer.end_ns >= outer.start_ns
    # The child is fully contained in the parent's window.
    assert inner.start_ns >= outer.start_ns
    assert inner.end_ns <= outer.end_ns
    assert outer.duration_ns >= inner.duration_ns


def test_open_span_has_zero_duration():
    recorder = SpanRecorder()
    span = recorder.span("open")
    assert span.duration_ns == 0


def test_phases_are_root_spans_only():
    recorder = SpanRecorder()
    with recorder.span("build"):
        with recorder.span("allocate"):
            pass
    with recorder.span("golden"):
        pass
    phases = recorder.phases()
    assert [p["name"] for p in phases] == ["build", "golden"]
    assert all(p["duration_ns"] >= 0 for p in phases)
    assert all(set(p) == {"name", "start_ns", "duration_ns"} for p in phases)


def test_as_dicts_includes_children_and_attrs():
    recorder = SpanRecorder()
    with recorder.span("campaign", defects=2):
        with recorder.span("defect", index=0):
            pass
    (tree,) = recorder.as_dicts()
    assert tree["name"] == "campaign"
    assert tree["attrs"] == {"defects": 2}
    assert tree["children"][0]["name"] == "defect"


def test_recorder_caps_retained_spans():
    recorder = SpanRecorder(max_spans=2)
    for index in range(5):
        with recorder.span("s", index=index):
            pass
    assert len(recorder.roots) == 2
    assert recorder.dropped == 3


def test_runtime_session_nesting_restores_previous():
    assert obs_runtime.active() is None
    with obs_runtime.session(detail="metrics") as outer:
        assert obs_runtime.active() is outer
        with obs_runtime.session(detail="full") as inner:
            assert obs_runtime.active() is inner
            assert inner.full_detail
        assert obs_runtime.active() is outer
    assert obs_runtime.active() is None


def test_runtime_suspended_disables_collection():
    with obs_runtime.session() as session:
        with obs_runtime.span("kept"):
            pass
        with obs_runtime.suspended():
            assert obs_runtime.active() is None
            assert obs_runtime.span("lost") is NULL_SPAN
        assert obs_runtime.active() is session
    assert [p["name"] for p in session.spans.phases()] == ["kept"]


def test_runtime_span_is_null_when_disabled():
    assert obs_runtime.active() is None
    assert obs_runtime.span("anything") is NULL_SPAN
    with obs_runtime.span("anything"):
        pass  # usable as a context manager all the same
