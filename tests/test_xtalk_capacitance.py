"""Unit and property tests for capacitance extraction and perturbation."""

import pytest
from hypothesis import given, strategies as st

from repro.xtalk.capacitance import CapacitanceSet, extract_capacitance
from repro.xtalk.geometry import BusGeometry


def test_extraction_shape():
    caps = extract_capacitance(BusGeometry.uniform(4))
    assert caps.wire_count == 4
    # Nearest-neighbour only.
    assert caps.coupling[0][2] == 0.0
    assert caps.coupling[0][1] > 0.0


def test_coupling_inverse_with_spacing():
    near = extract_capacitance(BusGeometry.uniform(2, spacing_um=0.5))
    far = extract_capacitance(BusGeometry.uniform(2, spacing_um=1.0))
    assert near.coupling[0][1] == pytest.approx(2.0 * far.coupling[0][1])


def test_net_coupling_profile_edge_relaxed():
    caps = extract_capacitance(BusGeometry.edge_relaxed(12))
    nets = caps.net_couplings()
    # Side wires have markedly less net coupling (the paper's Fig. 11
    # observation about lines 1, 2, 11, 12).
    assert nets[0] < nets[1] < nets[2] < nets[3]
    assert nets[3] == pytest.approx(max(nets))
    assert nets == pytest.approx(list(reversed(nets)))


def test_validation_rejects_asymmetry():
    with pytest.raises(ValueError):
        CapacitanceSet(
            coupling=((0.0, 1.0), (2.0, 0.0)),
            ground=(1.0, 1.0),
        )


def test_validation_rejects_nonzero_diagonal():
    with pytest.raises(ValueError):
        CapacitanceSet(coupling=((1.0,),), ground=(1.0,))


def test_perturbed_scales_symmetrically():
    caps = extract_capacitance(BusGeometry.uniform(3))
    factors = [[1.0, 2.0, 1.0], [2.0, 1.0, 0.5], [1.0, 0.5, 1.0]]
    perturbed = caps.perturbed(factors)
    assert perturbed.coupling[0][1] == pytest.approx(2.0 * caps.coupling[0][1])
    assert perturbed.coupling[1][2] == pytest.approx(0.5 * caps.coupling[1][2])
    assert perturbed.ground == caps.ground


def test_perturbed_rejects_asymmetric_factors():
    caps = extract_capacitance(BusGeometry.uniform(2))
    with pytest.raises(ValueError):
        caps.perturbed([[1.0, 2.0], [3.0, 1.0]])


@given(st.floats(0.1, 10.0))
def test_perturbation_scales_net_coupling(factor):
    caps = extract_capacitance(BusGeometry.uniform(2))
    n = caps.wire_count
    factors = [[factor] * n for _ in range(n)]
    perturbed = caps.perturbed(factors)
    assert perturbed.net_coupling(0) == pytest.approx(
        factor * caps.net_coupling(0)
    )


def test_neighbours():
    caps = extract_capacitance(BusGeometry.uniform(3))
    assert [j for j, _ in caps.neighbours(1)] == [0, 2]
    assert [j for j, _ in caps.neighbours(0)] == [1]
