"""Tests for post-build transition validation."""

import pytest

from repro.core.maf import FaultType, MAFault
from repro.core.program_builder import AppliedTest, SelfTestProgram
from repro.core.validate import (
    observed_transitions,
    transition_direction_of,
    validate_applied_tests,
)
from repro.soc.bus import BusDirection


def test_observed_transitions_of_trivial_program():
    program = SelfTestProgram(
        image={0x10: 0x80, 0x11: 0x10}, entry=0x10, memory_size=4096
    )
    address_t, data_t, halted, cycles = observed_transitions(program)
    assert halted
    assert (0x10, 0x11) in address_t


def test_validation_flags_fabricated_claim():
    # A program that claims to apply a test it never does.
    program = SelfTestProgram(
        image={0x10: 0x80, 0x11: 0x10}, entry=0x10, memory_size=4096
    )
    fault = MAFault(victim=5, fault_type=FaultType.RISING_DELAY, width=12)
    program.applied.append(AppliedTest(fault, "addr/delay", 0, ()))
    report = validate_applied_tests(program)
    assert not report.all_confirmed
    assert report.missing == [fault]


def test_direction_helper():
    data_fault = MAFault(
        victim=0,
        fault_type=FaultType.RISING_DELAY,
        width=8,
        direction=BusDirection.CPU_TO_MEM,
    )
    assert transition_direction_of(data_fault) is BusDirection.CPU_TO_MEM
    addr_fault = MAFault(victim=0, fault_type=FaultType.RISING_DELAY, width=12)
    with pytest.raises(ValueError):
        transition_direction_of(addr_fault)


def test_validation_of_real_programs(address_program, data_program):
    assert validate_applied_tests(address_program).all_confirmed
    assert validate_applied_tests(data_program).all_confirmed
