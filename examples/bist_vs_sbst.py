"""Compare software-based self-test against hardware BIST.

Quantifies the paper's Section 1 positioning: the hardware approach
costs silicon and may reject chips whose defects never disturb real
operation ("over-testing ... causes unnecessary yield loss"), while the
software approach is free of overhead and only exercises functional-mode
patterns.

Run:  python examples/bist_vs_sbst.py
"""

from repro import (
    DefectSimulator,
    SelfTestProgramBuilder,
    default_address_bus_setup,
)
from repro.analysis.tables import format_table
from repro.bist import (
    BistController,
    MAPatternGenerator,
    analyze_overtesting,
    estimate_bist_area,
)
from repro.bist.area import DEMONSTRATOR_SYSTEM_GATES
from repro.core.program_builder import SelfTestProgram
from repro.core.signature import capture_golden
from repro.isa.assembler import assemble

PLAIN_WORKLOAD = """
        .org 0x10
        cla
loop:   add step
        sta acc
        lda count
        sub one
        sta count
        bra_z done
        jmp loop
done:   lda acc
        sta out
halt:   jmp halt
step:   .byte 11
one:    .byte 1
count:  .byte 8
acc:    .byte 0
out:    .byte 0
"""


def main():
    setup = default_address_bus_setup(defect_count=300)
    builder = SelfTestProgramBuilder()
    sbst_program = builder.build_address_bus_program()
    golden = capture_golden(sbst_program)

    generator = MAPatternGenerator(12)
    controller = BistController(generator, setup.params, setup.calibration)
    area = estimate_bist_area(12)

    sbst = DefectSimulator(sbst_program, setup.params, setup.calibration, "addr")
    rows = [
        ("defect coverage",
         f"{100 * controller.coverage(setup.library):.1f}%",
         f"{100 * sbst.coverage(setup.library):.1f}%"),
        ("area overhead",
         f"{area.total:.0f} GE "
         f"({100 * area.total / DEMONSTRATOR_SYSTEM_GATES:.0f}% of CPU logic)",
         "0 GE"),
        ("test application", f"{controller.test_cycles} bus cycles "
         "(dedicated test mode)",
         f"{golden.cycles} CPU cycles (normal mode)"),
    ]
    print(format_table(
        ("quantity", "hardware BIST", "software self-test"), rows,
        title="Address-bus crosstalk test: BIST vs SBST",
    ))

    workload_src = assemble(PLAIN_WORKLOAD)
    workload = SelfTestProgram(
        image=workload_src.image, entry=workload_src.entry, memory_size=4096
    )
    report = analyze_overtesting(
        setup.library, setup.params, setup.calibration,
        controller, [workload], bus="addr",
    )
    print(f"\nOver-testing against a plain arithmetic workload "
          f"({report.functional_transition_count} functional transitions):")
    print(f"  BIST rejects {report.bist_detected}/{report.library_size} "
          f"defective chips")
    print(f"  functionally relevant defects: {report.functionally_relevant}")
    print(f"  unnecessary rejections (over-test): {report.over_tested} "
          f"({100 * report.over_test_rate:.1f}% of the library)")


if __name__ == "__main__":
    main()
