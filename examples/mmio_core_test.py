"""Extension scenario: testing the bus to a memory-mapped peripheral.

The paper (Sections 3 and 6): "since the cores in a SoC are often
addressable by the CPU via memory-mapped I/O, the same test strategy can
be extended to test address/data busses between any CPU-core pair."

This example maps a register-file core at page 0xF and applies data-bus
MA vector pairs to the CPU-core data path with LDA/STA sequences against
the core's registers, demonstrating the extension end to end (with a
defect injected on the data bus to show detection).

Run:  python examples/mmio_core_test.py
"""

from repro import (
    CrosstalkErrorModel,
    ElectricalParams,
    calibrate,
    enumerate_bus_faults,
    extract_capacitance,
    ma_vector_pair,
    BusGeometry,
)
from repro.isa.assembler import assemble
from repro.soc import CpuMemorySystem, MMIORegion, RegisterCore
from repro.soc.bus import BusDirection

CORE_BASE = 0xF00


def build_core_test_program(faults):
    """LDA/STA sequences applying (v1, v2) to the CPU-core data bus.

    For each memory-to-CPU pair the core register at offset ``v1`` holds
    ``v2`` (the same offset-equals-v1 trick as Section 4.1, with the
    core's register file in place of memory); responses are stored back
    to ordinary memory.
    """
    lines = ["        .org 0x010"]
    registers = {}
    responses = []
    for index, fault in enumerate(faults):
        pair = ma_vector_pair(fault)
        registers[pair.v1] = pair.v2
        lines.append(f"        lda 0xF:{pair.v1:#04x}")
        lines.append(f"        sta resp{index}")
        responses.append(f"resp{index}")
    lines.append("halt:   jmp halt")
    for name in responses:
        lines.append(f"{name}: .byte 0")
    return "\n".join(lines), registers, responses


def main():
    # Pick the rising-delay family, memory(core)-to-CPU direction.
    faults = [
        fault
        for fault in enumerate_bus_faults(8, (BusDirection.MEM_TO_CPU,))
        if fault.fault_type.value == "dr"
    ]
    source, registers, responses = build_core_test_program(faults)
    program = assemble(source)

    core = RegisterCore(256)
    for offset, value in registers.items():
        core.write(offset, value)
    system = CpuMemorySystem(
        mmio_regions=[MMIORegion(base=CORE_BASE, size=256, core=core)]
    )
    system.load_image(program.image)
    result = system.run(entry=program.entry)
    golden = [system.memory.read(program.symbols[r]) for r in responses]
    print(f"fault-free run: {result.cycles} cycles, responses = "
          f"{[hex(g) for g in golden]}")

    # Inject a data-bus defect and rerun.
    caps = extract_capacitance(BusGeometry.edge_relaxed(8))
    params = ElectricalParams()
    calibration = calibrate(caps, params)
    n = caps.wire_count
    factors = [[1.0] * n for _ in range(n)]
    for j, _ in caps.neighbours(4):
        factors[4][j] = factors[j][4] = 2.2
    model = CrosstalkErrorModel(caps.perturbed(factors), params, calibration)

    core.load(bytes(256))
    for offset, value in registers.items():
        core.write(offset, value)
    system2 = CpuMemorySystem(
        mmio_regions=[MMIORegion(base=CORE_BASE, size=256, core=core)]
    )
    system2.load_image(program.image)
    system2.data_bus.install_corruption_hook(model.corrupt)
    system2.run(entry=program.entry)
    faulty = [system2.memory.read(program.symbols[r]) for r in responses]
    print(f"defective run responses        = {[hex(f) for f in faulty]}")
    differing = [i + 1 for i, (g, f) in enumerate(zip(golden, faulty)) if g != f]
    print(f"defect on CPU-core data bus detected by test(s) for line(s) "
          f"{differing}")
    assert differing, "defect should be visible in the responses"


if __name__ == "__main__":
    main()
