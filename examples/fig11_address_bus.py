"""Reproduce the paper's Fig. 11: per-interconnect defect coverage.

Builds one MA test program per address-bus line, evaluates each against
the defect library, and renders the individual/cumulative coverage chart
(side lines show zero coverage; the cumulative curve reaches 100 %).

Run:  python examples/fig11_address_bus.py [defect_count]
"""

import sys

from repro import (
    SelfTestProgramBuilder,
    address_bus_line_coverage,
    default_address_bus_setup,
)
from repro.analysis.charts import coverage_chart


def main(defect_count: int = 400):
    setup = default_address_bus_setup(defect_count=defect_count)
    builder = SelfTestProgramBuilder()
    full_program = builder.build_address_bus_program()
    report = address_bus_line_coverage(
        setup.library,
        setup.params,
        setup.calibration,
        builder=builder,
        full_program=full_program,
    )
    print(f"Fig. 11 — defect coverage per interconnect "
          f"({report.library_size} defects)\n")
    print(coverage_chart(
        [(line.line, line.individual, line.cumulative)
         for line in report.lines]
    ))
    print(f"\ncumulative coverage: {100 * report.cumulative_coverage:.1f}%")
    print(f"full-program coverage: {100 * report.full_program_coverage:.1f}%")
    zero_lines = [line.line for line in report.lines if line.individual == 0]
    print(f"lines with zero individual coverage: {zero_lines} "
          f"(paper: [1, 2, 11, 12])")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
