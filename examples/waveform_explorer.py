"""Explore crosstalk waveforms behind the error model.

Solves the coupled-RC network for the maximum-aggressor patterns on a
nominal and a defective bus and prints ASCII waveforms of the victim
line — the physics the high-level error model abstracts into pass/fail
decisions.

Run:  python examples/waveform_explorer.py
"""

from repro import (
    BusGeometry,
    ElectricalParams,
    calibrate,
    extract_capacitance,
)
from repro.core.maf import FaultType, MAFault, ma_vector_pair
from repro.xtalk.waveform import simulate_transition

WIDTH = 8
VICTIM = 4


def ascii_waveform(result, wire, columns=64, rows=12):
    voltages = result.voltages[wire]
    vdd = result.vdd
    step = max(1, len(voltages) // columns)
    samples = voltages[::step][:columns]
    lines = []
    for row in range(rows, -1, -1):
        level = vdd * row / rows
        line = "".join(
            "*" if abs(v - level) <= vdd / (2 * rows) else " "
            for v in samples
        )
        label = f"{level:4.2f}V |"
        lines.append(label + line)
    lines.append("       +" + "-" * columns +
                 f"  (0 .. {result.times[-1] * 1e9:.2f} ns)")
    return "\n".join(lines)


def show(title, caps, params, fault):
    pair = ma_vector_pair(fault)
    result = simulate_transition(caps, params, pair.v1, pair.v2)
    print(f"\n--- {title}: {fault.name}  "
          f"(v1={pair.v1:08b}, v2={pair.v2:08b}) ---")
    print(ascii_waveform(result, VICTIM))
    if fault.fault_type.is_glitch:
        print(f"victim glitch peak: {result.glitch_peak(VICTIM):+.3f} V")
    else:
        delay = result.delay_to_half(VICTIM)
        print(f"victim 50% crossing: {delay * 1e9:.3f} ns")


def main():
    params = ElectricalParams()
    nominal = extract_capacitance(BusGeometry.edge_relaxed(WIDTH))
    calibration = calibrate(nominal, params)
    n = nominal.wire_count
    factors = [[1.0] * n for _ in range(n)]
    for j, _ in nominal.neighbours(VICTIM):
        factors[VICTIM][j] = factors[j][VICTIM] = 2.0
    defective = nominal.perturbed(factors)

    glitch = MAFault(victim=VICTIM, fault_type=FaultType.POSITIVE_GLITCH,
                     width=WIDTH)
    delay = MAFault(victim=VICTIM, fault_type=FaultType.RISING_DELAY,
                    width=WIDTH)
    print(f"glitch threshold: {calibration.v_th:.3f} V; settling margin: "
          f"{calibration.margin_for(list(calibration.t_margin)[0]) * 1e9:.3f} ns")
    show("nominal bus", nominal, params, glitch)
    show("defective bus", defective, params, glitch)
    show("nominal bus", nominal, params, delay)
    show("defective bus", defective, params, delay)


if __name__ == "__main__":
    main()
