"""Quickstart: build a crosstalk self-test program and measure coverage.

Walks the paper's whole flow on the demonstrator CPU-memory system:

1. model the 12-bit address bus (geometry -> capacitances -> thresholds);
2. generate a defect library (Gaussian perturbations beyond Cth);
3. build the software self-test program (MA tests via LDA/STA sequences);
4. simulate every defect and report coverage.

Run:  python examples/quickstart.py
"""

from repro import (
    DefectSimulator,
    SelfTestProgramBuilder,
    default_address_bus_setup,
)
from repro.core.signature import capture_golden
from repro.core.validate import validate_applied_tests


def main():
    print("== 1. bus model and defect library ==")
    setup = default_address_bus_setup(defect_count=200)
    print(f"nominal net couplings (fF): "
          f"{[round(n) for n in setup.caps.net_couplings()]}")
    print(f"defect threshold Cth = {setup.calibration.cth:.0f} fF, "
          f"library = {len(setup.library)} defects")

    print("\n== 2. self-test program ==")
    builder = SelfTestProgramBuilder()
    program = builder.build_address_bus_program()
    print(f"tests applied: {len(program.applied)}/48 "
          f"({len(program.skipped)} deferred by address conflicts)")
    golden = capture_golden(program)
    print(f"program size: {program.program_size} bytes, "
          f"fault-free run: {golden.cycles} cycles")
    validation = validate_applied_tests(program)
    print(f"MA transitions observed on the bus: "
          f"{len(validation.confirmed)}/{len(program.applied)}")

    print("\n== 3. defect simulation ==")
    simulator = DefectSimulator(
        program, setup.params, setup.calibration, bus="addr"
    )
    coverage = simulator.coverage(setup.library)
    print(f"defect coverage: {100 * coverage:.1f}%")


if __name__ == "__main__":
    main()
