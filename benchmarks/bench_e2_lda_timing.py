"""E2 — Fig. 5: bus timing of the load instruction.

Regenerates the load-instruction timing diagram the methodology builds
on: address bus Ai, Ai+1, Ax; data bus M[Ai], M[Ai+1], M[Ax]; the bus
holds the last value while floating.
"""

from conftest import emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.isa.assembler import assemble
from repro.soc.system import CpuMemorySystem
from repro.soc.tracer import BusTracer, render_timing_diagram


def trace_lda():
    system = CpuMemorySystem()
    program = assemble(
        """
        .org 0x010
        lda 3:0x7F       ; Ai = 0x010, Ax = 0x37F
halt:   jmp halt
        .org 0x37F
        .byte 0xC3       ; M[Ax]
        """
    )
    system.load_image(program.image)
    tracer = BusTracer([system.address_bus, system.data_bus])
    system.run(entry=0x010, max_cycles=64)
    return tracer


def test_e2_lda_timing(benchmark):
    tracer = benchmark.pedantic(trace_lda, rounds=3, iterations=1)
    lda_window = [t for t in tracer.transactions if t.cycle <= 8]
    emit(
        "E2 / Fig. 5 — load instruction bus timing",
        render_timing_diagram(lda_window),
    )
    addr = tracer.transitions_on("addr")
    data = tracer.transitions_on("data")
    records = [
        ExperimentRecord(
            "E2",
            "address sequence",
            "Ai, Ai+1, Ax",
            "0x010, 0x011, 0x37f",
        ),
        ExperimentRecord(
            "E2",
            "data-bus test transition",
            "M[Ai+1] -> M[Ax]",
            f"{data[2][0]:#04x} -> {data[2][1]:#04x}",
        ),
    ]
    emit_records("E2 — record", records)
    assert (0x010, 0x011) in addr and (0x011, 0x37F) in addr
    assert (0x7F, 0xC3) in data  # offset byte then loaded data
