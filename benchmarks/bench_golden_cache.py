"""Golden-run artifact cache — cold vs warm campaign setup.

Runs the same screened address-bus campaign three times against one
cache directory: cold (serial), warm (serial), warm (2-worker process
pool).  Asserts the cache contract the issue specifies: the warm runs
report ``golden_cache.hits >= 1`` with **zero** golden-simulation
cycles (``coverage.engine.golden_cycles`` stays flat) and bit-identical
outcomes; the worker run proves the per-process counters roll up.
"""

import time

from conftest import BENCH_ENGINE, DEFECT_COUNT, emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.core.campaign import CampaignSpec, run_campaign
from repro.obs import runtime as obs_runtime

#: Campaign size for the cache benchmark — setup cost dominates, so a
#: modest slice keeps the three runs quick without changing the contract.
CACHE_DEFECTS = min(DEFECT_COUNT, 200)


def _counter(name):
    snapshot = obs_runtime.registry().snapshot()
    metric = snapshot.get(name)
    return int(metric["value"]) if metric else 0


def _cache_counter(name):
    return _counter(f"coverage.engine.golden_cache.{name}")


def _timed_run(spec, workers=1):
    before = {
        "hits": _cache_counter("hits"),
        "misses": _cache_counter("misses"),
        "golden_cycles": _counter("coverage.engine.golden_cycles"),
    }
    start = time.perf_counter()
    result = run_campaign(spec, workers=workers)
    elapsed = time.perf_counter() - start
    delta = {
        "hits": _cache_counter("hits") - before["hits"],
        "misses": _cache_counter("misses") - before["misses"],
        "golden_cycles": (
            _counter("coverage.engine.golden_cycles")
            - before["golden_cycles"]
        ),
    }
    return result, elapsed, delta


def test_golden_cache_warm_runs(benchmark, address_setup, address_program):
    spec = CampaignSpec(
        program=address_program,
        params=address_setup.params,
        calibration=address_setup.calibration,
        defects=tuple(address_setup.library)[:CACHE_DEFECTS],
        bus="addr",
        engine="screened",
        label="bench:golden-cache",
    )

    cold, cold_time, cold_delta = _timed_run(spec)
    warm, warm_time, warm_delta = _timed_run(spec)
    pool, pool_time, pool_delta = _timed_run(spec, workers=2)

    # The issue's acceptance contract, as counter deltas per run.
    assert cold_delta["misses"] >= 1 and cold_delta["golden_cycles"] > 0
    assert warm_delta["hits"] >= 1 and warm_delta["misses"] == 0
    assert warm_delta["golden_cycles"] == 0
    assert pool_delta["hits"] >= 2  # one per worker, rolled up
    assert pool_delta["golden_cycles"] == 0

    # Bit-identical outcomes, cold or warm, serial or pooled.
    assert warm.outcomes == cold.outcomes
    assert pool.outcomes == cold.outcomes
    assert warm.coverage() == cold.coverage() == pool.coverage()

    emit(
        f"golden-run cache — screened campaign, {CACHE_DEFECTS} defects "
        f"(engine default: {BENCH_ENGINE})",
        format_table(
            ("run", "wall clock", "cache hits", "golden cycles"),
            [
                ("cold (serial)", f"{cold_time:.2f}s",
                 str(cold_delta["hits"]), str(cold_delta["golden_cycles"])),
                ("warm (serial)", f"{warm_time:.2f}s",
                 str(warm_delta["hits"]), str(warm_delta["golden_cycles"])),
                ("warm (2 workers)", f"{pool_time:.2f}s",
                 str(pool_delta["hits"]), str(pool_delta["golden_cycles"])),
            ],
        ),
    )
    emit_records("golden-run cache — record", [
        ExperimentRecord(
            "cache", "warm outcomes vs cold", "identical", "identical"
        ),
        ExperimentRecord(
            "cache", "warm golden simulation", "0 cycles",
            f"{warm_delta['golden_cycles']} cycles "
            f"({warm_delta['hits']} hits)",
        ),
        ExperimentRecord(
            "cache", "worker cache hits (2 workers)", ">= 2",
            str(pool_delta["hits"]),
        ),
    ])

    # Time the warm engine build alone (what the cache accelerates).
    benchmark.pedantic(spec.build_engine, rounds=3, iterations=1)
