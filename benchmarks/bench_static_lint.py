"""S1 — static lint versus dynamic validation of the combined program.

The static analyzer answers the validator's question (does every applied
MA test hit its bus transition?) without simulating a cycle.  This
benchmark times both on the same program and records that they reach
identical conclusions — the cross-check that keeps the two models honest.
"""

import time

from conftest import emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.core.validate import validate_applied_tests
from repro.static import analyze_program, crosscheck


def test_s1_static_lint(benchmark, builder):
    program = builder.build()
    report = benchmark.pedantic(
        lambda: analyze_program(program), rounds=5, iterations=1
    )

    started = time.perf_counter()
    dynamic = validate_applied_tests(program)
    dynamic_seconds = time.perf_counter() - started
    result = crosscheck(program, report.run)

    records = [
        ExperimentRecord(
            "S1",
            "applied tests confirmed (static vs dynamic)",
            f"{len(dynamic.confirmed)}/{len(program.applied)}",
            f"{len(report.coverage.confirmed)}/{len(program.applied)}",
        ),
        ExperimentRecord(
            "S1",
            "static/dynamic cross-check",
            "agree",
            "agree" if result.agreed else "DISAGREE",
        ),
        ExperimentRecord(
            "S1",
            "error-level findings on the seed program",
            "0",
            str(len(report.lint.errors)),
        ),
        ExperimentRecord(
            "S1",
            "dynamic validation wall time",
            "n/a",
            f"{dynamic_seconds * 1e3:.1f} ms",
            "static lint time is the benchmark statistic",
        ),
    ]
    emit_records("S1 — static lint vs dynamic validation", records)
    emit("S1 — findings", report.lint.render())

    assert result.agreed
    assert report.lint.errors == []
    assert report.run.exact and report.run.all_paths_halt
