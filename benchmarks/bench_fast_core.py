"""Fast-core speedup — microprogram interpreter vs reference FSM.

Times the E4 address-bus golden run (the fault-free reference every
campaign replays against) on both CPU cores, after proving with the
lockstep differential harness that they are **bit-identical**: same bus
transaction stream, same architectural state, same cycle count.  The
``>= 2x`` floor is unconditional — the golden run is pure interpreter
work, so the ratio does not depend on the library size.
"""

import time

from conftest import emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.core.signature import make_system
from repro.cpu.lockstep import run_lockstep

#: Minimum fast/micro wall-clock ratio on the golden run (the issue's
#: acceptance floor; measured ~2.5-2.7x on CPython 3.12).
SPEEDUP_FLOOR = 2.0
#: Best-of-N timing loops per core (interpreter timing is jittery).
LOOPS = 5


def _time_golden(program, core):
    """Best-of-``LOOPS`` wall clock of the fault-free run on ``core``."""
    best = float("inf")
    cycles = 0
    for _ in range(LOOPS):
        system = make_system(program, core=core)
        start = time.perf_counter()
        system.run(entry=program.entry, max_cycles=1_000_000)
        best = min(best, time.perf_counter() - start)
        cycles = system.cycle
    return best, cycles


def test_fast_core_speedup(benchmark, address_program):
    # Contract first: the cores are bit-identical on this very program.
    report = run_lockstep(
        address_program.image,
        entry=address_program.entry,
        memory_size=address_program.memory_size,
    )
    assert report.halted

    micro_time, micro_cycles = _time_golden(address_program, "micro")
    fast_time, fast_cycles = _time_golden(address_program, "fast")
    assert fast_cycles == micro_cycles == report.cycles
    speedup = micro_time / fast_time

    emit(
        f"fast-core speedup — E4 golden run, {micro_cycles} cycles",
        format_table(
            ("core", "wall clock", "speedup"),
            [
                ("micro (FSM reference)", f"{micro_time * 1e3:.3f}ms", "1.00x"),
                ("fast (microprogram)", f"{fast_time * 1e3:.3f}ms",
                 f"{speedup:.2f}x"),
            ],
        ),
    )
    emit_records("fast-core speedup — record", [
        ExperimentRecord(
            "core", "fast == micro bus stream", "bit-identical",
            f"bit-identical ({report.transactions} transactions)",
        ),
        ExperimentRecord(
            "core", "fast-core golden-run speedup",
            f">= {SPEEDUP_FLOOR}x", f"{speedup:.2f}x",
        ),
    ])

    assert speedup >= SPEEDUP_FLOOR, (
        f"fast core only {speedup:.2f}x faster than the FSM core "
        f"(floor {SPEEDUP_FLOOR}x)"
    )

    def golden_run():
        system = make_system(address_program, core="fast")
        system.run(entry=address_program.entry, max_cycles=1_000_000)
        return system.cycle

    benchmark.pedantic(golden_run, rounds=3, iterations=1)
