"""E8 — Section 4.3 scaling claim.

"For a CPU-memory system with N interconnects, the number of MA faults
is 4N.  Thus, the size of the test program is proportional to N" — and
with it memory footprint, tester load time and at-speed application
time.  We sweep the data-bus width and fit the growth.
"""

from conftest import emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.core.maf import enumerate_bus_faults
from repro.core.program_builder import SelfTestProgramBuilder
from repro.core.signature import capture_golden
from repro.soc.bus import BusDirection

WIDTHS = (2, 4, 6, 8)


def sweep():
    rows = []
    for width in WIDTHS:
        builder = SelfTestProgramBuilder(data_width=width)
        faults = enumerate_bus_faults(
            width, (BusDirection.MEM_TO_CPU, BusDirection.CPU_TO_MEM)
        )
        program = builder.build_data_bus_program(faults)
        golden = capture_golden(program)
        rows.append(
            (width, len(faults), len(program.applied), program.program_size,
             golden.cycles)
        )
    return rows


def test_e8_scaling(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E8 — data-bus self-test scaling with bus width N",
        format_table(("N", "MAFs (8N)", "applied", "bytes", "cycles"), rows),
    )
    # Linearity check: bytes/N and cycles/N stay within a narrow band.
    bytes_per_n = [row[3] / row[0] for row in rows]
    cycles_per_n = [row[4] / row[0] for row in rows]
    records = [
        ExperimentRecord(
            "E8",
            "program size growth",
            "proportional to N",
            f"bytes/N in [{min(bytes_per_n):.1f}, {max(bytes_per_n):.1f}]",
        ),
        ExperimentRecord(
            "E8",
            "test time growth",
            "proportional to N",
            f"cycles/N in [{min(cycles_per_n):.1f}, {max(cycles_per_n):.1f}]",
        ),
    ]
    emit_records("E8 — record", records)
    for row in rows:
        assert row[2] == row[1]  # every fault applied at every width
    assert max(bytes_per_n) < 2.2 * min(bytes_per_n)
    assert max(cycles_per_n) < 2.2 * min(cycles_per_n)
