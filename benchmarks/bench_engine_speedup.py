"""Engine speedup — exact replay vs screen-then-replay.

Times the E4 address-bus campaign (the per-line Fig. 11 sweep, the
workload the screened engine was built for: side-line programs corrupt
under almost no defect, so screening eliminates most replays outright
and checkpoints shorten the rest) with every engine/backend combination,
and — always, whatever the library size — asserts that the engines
produce **identical** per-line detected sets.  The coverage-equality
assertion is what the CI smoke job (50 defects) is for; the speedup
floors only apply at representative library sizes.
"""

import time

from conftest import DEFECT_COUNT, emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.core.coverage import address_bus_line_coverage

try:
    import numpy  # noqa: F401 - availability probe only
    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

#: Below this library size, fixed per-program costs (building programs,
#: golden capture, screening setup) dominate and wall-clock ratios are
#: noise — the speedup floors are only enforced at representative sizes.
SPEEDUP_MIN_DEFECTS = 500
SPEEDUP_NUMPY = 3.0
SPEEDUP_PYTHON = 1.5


def _series(report):
    """The engine-independent content of a coverage report."""
    return [
        (line.line, line.individual, line.cumulative, frozenset(line.detected))
        for line in report.lines
    ]


def test_engine_speedup(benchmark, address_setup, builder):
    configs = [("exact", "auto")]
    if HAVE_NUMPY:
        configs.append(("screened", "numpy"))
    configs.append(("screened", "python"))

    timings = {}
    reports = {}
    for engine, backend in configs:
        start = time.perf_counter()
        report = address_bus_line_coverage(
            address_setup.library, address_setup.params,
            address_setup.calibration, builder=builder,
            engine=engine, screen_backend=backend,
        )
        timings[(engine, backend)] = time.perf_counter() - start
        reports[(engine, backend)] = report

    # Hard contract, enforced at every library size: identical results.
    exact_series = _series(reports[("exact", "auto")])
    for key, report in reports.items():
        assert _series(report) == exact_series, (
            f"engine {key} disagrees with exact coverage"
        )

    exact_time = timings[("exact", "auto")]
    rows = [
        (f"{engine} ({backend})", f"{seconds:.2f}s",
         f"{exact_time / seconds:.2f}x")
        for (engine, backend), seconds in timings.items()
    ]
    emit(
        f"engine speedup — E4 per-line campaign, {DEFECT_COUNT} defects",
        format_table(("engine", "wall clock", "speedup vs exact"), rows),
    )

    # Time the winning configuration for the pytest-benchmark record.
    best_engine, best_backend = min(timings, key=timings.get)
    benchmark.pedantic(
        address_bus_line_coverage,
        args=(address_setup.library, address_setup.params,
              address_setup.calibration),
        kwargs={"builder": builder, "engine": best_engine,
                "screen_backend": best_backend},
        rounds=1,
        iterations=1,
    )

    records = [
        ExperimentRecord(
            "engine", "screened == exact coverage", "identical", "identical"
        )
    ]
    if HAVE_NUMPY:
        numpy_speedup = exact_time / timings[("screened", "numpy")]
        records.append(ExperimentRecord(
            "engine", "screened (numpy) speedup",
            f">= {SPEEDUP_NUMPY}x at {SPEEDUP_MIN_DEFECTS}+ defects",
            f"{numpy_speedup:.2f}x",
        ))
    python_speedup = exact_time / timings[("screened", "python")]
    records.append(ExperimentRecord(
        "engine", "screened (python) speedup",
        f">= {SPEEDUP_PYTHON}x at {SPEEDUP_MIN_DEFECTS}+ defects",
        f"{python_speedup:.2f}x",
    ))
    emit_records("engine speedup — record", records)

    if DEFECT_COUNT >= SPEEDUP_MIN_DEFECTS:
        if HAVE_NUMPY:
            assert numpy_speedup >= SPEEDUP_NUMPY, (
                f"screened/numpy only {numpy_speedup:.2f}x faster"
            )
        assert python_speedup >= SPEEDUP_PYTHON, (
            f"screened/python only {python_speedup:.2f}x faster"
        )
