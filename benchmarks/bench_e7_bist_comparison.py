"""E7 — SBST versus hardware BIST (the paper's Section 1 comparison).

Quantifies the claims the paper makes qualitatively against the DAC'00
hardware self-test: area overhead (SBST: none), test time, coverage, and
over-testing (BIST rejections with no functionally excitable error).
"""

from conftest import emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.bist.area import DEMONSTRATOR_SYSTEM_GATES, estimate_bist_area
from repro.bist.controller import BistController
from repro.bist.overtest import analyze_overtesting
from repro.bist.pattern_gen import MAPatternGenerator
from repro.core.coverage import DefectSimulator
from repro.core.signature import capture_golden
from repro.core.program_builder import SelfTestProgram
from repro.isa.assembler import assemble


WORKLOAD = """
        .org 0x10
        cla
loop:   add a
        sta acc
        lda counter
        sub one
        sta counter
        bra_z done
        lda acc
        jmp loop
done:   lda acc
        sta out
halt:   jmp halt
a:      .byte 7
one:    .byte 1
counter:.byte 5
acc:    .byte 0
out:    .byte 0
"""


def run_comparison(address_setup, address_program):
    generator = MAPatternGenerator(12)
    controller = BistController(
        generator, address_setup.params, address_setup.calibration
    )
    bist_coverage = controller.coverage(address_setup.library)
    sbst = DefectSimulator(
        address_program, address_setup.params, address_setup.calibration, "addr"
    )
    sbst_coverage = sbst.coverage(address_setup.library)
    return controller, bist_coverage, sbst_coverage


def test_e7_bist_comparison(benchmark, address_setup, address_program):
    controller, bist_coverage, sbst_coverage = benchmark.pedantic(
        run_comparison,
        args=(address_setup, address_program),
        rounds=1,
        iterations=1,
    )
    golden = capture_golden(address_program)
    area_addr = estimate_bist_area(12)
    area_data = estimate_bist_area(8, bidirectional=True)
    total_area = area_addr.total + area_data.total

    rows = [
        ("coverage (addr bus)", f"{100 * bist_coverage:.1f}%",
         f"{100 * sbst_coverage:.1f}%"),
        ("area overhead", f"{total_area:.0f} GE "
         f"({100 * total_area / DEMONSTRATOR_SYSTEM_GATES:.0f}% of CPU logic)",
         "0"),
        ("test cycles (addr bus)", str(controller.test_cycles),
         str(golden.cycles)),
        ("applies functionally invalid patterns", "yes (test mode)",
         "no (normal mode only)"),
    ]
    emit(
        "E7 — hardware BIST vs software-based self-test",
        format_table(("quantity", "hardware BIST", "SBST"), rows),
    )

    # Over-testing: against a plain workload corpus, marginal defects are
    # functionally invisible yet rejected by BIST.
    workload_src = assemble(WORKLOAD)
    workload = SelfTestProgram(
        image=workload_src.image, entry=workload_src.entry, memory_size=4096
    )
    over_sbst = analyze_overtesting(
        address_setup.library, address_setup.params,
        address_setup.calibration, controller, [address_program], "addr"
    )
    over_workload = analyze_overtesting(
        address_setup.library, address_setup.params,
        address_setup.calibration, controller, [workload], "addr"
    )
    records = [
        ExperimentRecord("E7", "SBST area/delay overhead", "none", "none"),
        ExperimentRecord(
            "E7",
            "BIST over-test rate vs SBST-exercisable errors",
            "~0 (SBST patterns are functional)",
            f"{100 * over_sbst.over_test_rate:.1f}%",
        ),
        ExperimentRecord(
            "E7",
            "BIST over-test rate vs plain workload",
            "(qualitative: 'may cause over-testing')",
            f"{100 * over_workload.over_test_rate:.1f}%",
            note=f"{over_workload.over_tested} of "
            f"{over_workload.bist_detected} rejections unnecessary",
        ),
    ]
    emit_records("E7 — record", records)
    assert bist_coverage == 1.0
    assert over_workload.over_test_rate > over_sbst.over_test_rate
