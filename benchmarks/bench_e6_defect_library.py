"""E6 — Fig. 10 / Section 5: defect library generation statistics.

Gaussian perturbation of the coupling capacitances (3-sigma point of
150 %), keeping perturbations whose net coupling exceeds Cth; 1000
defects per bus.  The per-wire incidence profile explains Fig. 11's
shape: side wires (smaller nominal net coupling) essentially never
become defective.
"""

from conftest import emit, emit_records

from repro.analysis.charts import bar_chart
from repro.analysis.records import ExperimentRecord
from repro.xtalk.defects import generate_defect_library


def test_e6_defect_library(benchmark, address_setup, defect_count):
    library = benchmark.pedantic(
        generate_defect_library,
        args=(address_setup.caps, address_setup.calibration),
        kwargs={"count": defect_count, "seed": 2001},
        rounds=1,
        iterations=1,
    )
    incidence = library.per_wire_incidence()
    emit(
        "E6 — per-line defect incidence "
        f"(library of {len(library)}, sigma={library.sigma})",
        bar_chart(
            [f"line {w + 1:2d}" for w in sorted(incidence)],
            [incidence[w] / len(library) for w in sorted(incidence)],
            max_value=max(0.001, max(incidence.values()) / len(library)),
        ),
    )
    side = [incidence[w] for w in (0, 1, 10, 11)]
    records = [
        ExperimentRecord("E6", "defects per bus", "1000", str(len(library))),
        ExperimentRecord("E6", "Gaussian 3-sigma variation", "150%",
                         f"{300 * library.sigma:.0f}%"),
        ExperimentRecord("E6", "defects on lines 1/2/11/12", "0",
                         "/".join(str(s) for s in side)),
        ExperimentRecord("E6", "acceptance rate", "(not reported)",
                         f"{100 * library.acceptance_rate:.1f}%"),
    ]
    emit_records("E6 — record", records)
    assert len(library) == defect_count
    assert sum(side) == 0
