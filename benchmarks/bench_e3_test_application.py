"""E3 — Section 5 test-application statistics.

The paper's in-text table: MAF counts, tests applied per bus, address
conflicts, total execution cycles (1720), program size proportional to
bus width.
"""

from conftest import emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.core.sessions import build_sessions
from repro.core.signature import capture_golden
from repro.core.validate import validate_applied_tests


def build_and_measure(builder):
    address_program = builder.build_address_bus_program()
    data_program = builder.build_data_bus_program()
    golden_address = capture_golden(address_program)
    golden_data = capture_golden(data_program)
    return address_program, data_program, golden_address, golden_data


def test_e3_test_application(benchmark, builder):
    address_program, data_program, golden_address, golden_data = (
        benchmark.pedantic(
            build_and_measure, args=(builder,), rounds=1, iterations=1
        )
    )
    plan = build_sessions(builder, data_faults=())
    total_cycles = golden_address.cycles + golden_data.cycles

    validated_addr = validate_applied_tests(address_program)
    validated_data = validate_applied_tests(data_program)

    rows = [
        ("data bus", "64", len(data_program.applied), len(data_program.skipped),
         data_program.program_size, golden_data.cycles),
        ("address bus", "48", len(address_program.applied),
         len(address_program.skipped), address_program.program_size,
         golden_address.cycles),
    ]
    emit(
        "E3 — test application statistics (single-session programs)",
        format_table(
            ("bus", "MAFs", "applied", "conflicts", "bytes", "cycles"), rows
        ),
    )
    records = [
        ExperimentRecord("E3", "data-bus tests applied", "64/64",
                         f"{len(data_program.applied)}/64"),
        ExperimentRecord(
            "E3",
            "address-bus tests applied (1 program)",
            "41/48",
            f"{len(address_program.applied)}/48",
            note="stricter byte-exact conflict accounting; see EXPERIMENTS.md",
        ),
        ExperimentRecord(
            "E3",
            "address tests after multi-session",
            "48/48 (implied)",
            f"{plan.applied_total}/48 in {plan.session_count} sessions",
            note=f"{len(plan.unapplicable)} structurally unapplicable",
        ),
        ExperimentRecord("E3", "total execution cycles", "1720",
                         str(total_cycles)),
        ExperimentRecord(
            "E3",
            "applied tests observed on bus",
            "(not reported)",
            f"{len(validated_addr.confirmed) + len(validated_data.confirmed)}"
            f"/{len(address_program.applied) + len(data_program.applied)}",
        ),
    ]
    emit_records("E3 — record", records)
    assert validated_addr.all_confirmed and validated_data.all_confirmed
    assert len(data_program.applied) == 64
    assert 1000 <= total_cycles <= 2600
