"""Shared fixtures for the experiment benchmarks.

Each ``bench_eN_*.py`` regenerates one paper artifact (table or figure)
and prints the paper-vs-measured record; pytest-benchmark times the
representative kernel.  Expensive shared artifacts (defect libraries,
built programs) are session-scoped.

Library size: the paper uses 1000 defects per bus.  The benchmarks
default to the full 1000; set REPRO_BENCH_DEFECTS to shrink it for quick
runs.
"""

from __future__ import annotations

import os

import pytest

from repro import (
    SelfTestProgramBuilder,
    default_address_bus_setup,
    default_data_bus_setup,
)

DEFECT_COUNT = int(os.environ.get("REPRO_BENCH_DEFECTS", "1000"))


def emit(title: str, body: str) -> None:
    """Print one labelled benchmark section.

    Captured by pytest and shown in the summary (the project enables
    ``-rP``), so the regenerated tables/figures land in ``tee`` captures
    of benchmark runs.
    """
    line = "=" * 72
    print(f"\n{line}\n{title}\n{line}\n{body}")


@pytest.fixture(scope="session")
def defect_count():
    return DEFECT_COUNT


@pytest.fixture(scope="session")
def address_setup():
    return default_address_bus_setup(defect_count=DEFECT_COUNT)


@pytest.fixture(scope="session")
def data_setup():
    return default_data_bus_setup(defect_count=DEFECT_COUNT)


@pytest.fixture(scope="session")
def builder():
    return SelfTestProgramBuilder()


@pytest.fixture(scope="session")
def address_program(builder):
    return builder.build_address_bus_program()


@pytest.fixture(scope="session")
def data_program(builder):
    return builder.build_data_bus_program()
