"""Shared fixtures for the experiment benchmarks.

Each ``bench_eN_*.py`` regenerates one paper artifact (table or figure)
and logs the paper-vs-measured record; pytest-benchmark times the
representative kernel.  Expensive shared artifacts (defect libraries,
built programs) are session-scoped.

Observability: every benchmark runs inside its own
:func:`repro.obs.session`, and an autouse fixture serializes the phases,
metric snapshot, emitted sections and experiment records into a
``BENCH_<name>.json`` :class:`~repro.obs.RunReport` next to the stdout
output (directory override: ``REPRO_BENCH_REPORT_DIR``).  The JSON files
are schema-validated on write, so benchmark trajectories stay
self-describing and machine-readable.

Progress/reporting goes through the ``repro.bench`` logger (stdout, so
pytest capture and ``tee`` keep working) rather than bare ``print``.

Library size: the paper uses 1000 defects per bus.  The benchmarks
default to the full 1000; set REPRO_BENCH_DEFECTS to shrink it for quick
runs.

Engine: REPRO_BENCH_ENGINE selects the defect-simulation engine the
campaign benchmarks use (``exact`` — the default — or ``screened``; see
``repro.core.engine``).  Engines are outcome-identical, so paper records
do not depend on this; ``bench_engine_speedup.py`` asserts exactly that
while timing the difference.
"""

from __future__ import annotations

import logging
import os
import re
import sys
from pathlib import Path
from typing import Iterable, Optional

import pytest

from repro import (
    SelfTestProgramBuilder,
    default_address_bus_setup,
    default_data_bus_setup,
    obs,
)
from repro.analysis.records import ExperimentRecord, format_records

DEFECT_COUNT = int(os.environ.get("REPRO_BENCH_DEFECTS", "1000"))
REPORT_DIR = Path(os.environ.get("REPRO_BENCH_REPORT_DIR", "."))
BENCH_ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "exact")
if BENCH_ENGINE not in ("exact", "screened"):
    raise ValueError(
        f"REPRO_BENCH_ENGINE must be 'exact' or 'screened', "
        f"got {BENCH_ENGINE!r}"
    )
# Worker counts the parallel-campaign benchmark sweeps (comma-separated;
# the CI parallel-smoke job sets "2" to keep the quick run to one pool).
WORKER_COUNTS = tuple(
    int(token)
    for token in os.environ.get("REPRO_BENCH_WORKERS", "1,2,4").split(",")
    if token.strip()
)
if not WORKER_COUNTS or any(count < 1 for count in WORKER_COUNTS):
    raise ValueError(
        "REPRO_BENCH_WORKERS must be a comma-separated list of "
        f"positive worker counts, got {os.environ['REPRO_BENCH_WORKERS']!r}"
    )

logger = logging.getLogger("repro.bench")


class _CaptureFriendlyHandler(logging.StreamHandler):
    """Stream handler that follows pytest's stdout redirection."""

    def emit(self, record: logging.LogRecord) -> None:
        self.stream = sys.stdout
        super().emit(record)


if not logger.handlers:
    _handler = _CaptureFriendlyHandler()
    _handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(_handler)
    logger.setLevel(logging.INFO)
    logger.propagate = False


_current_report: Optional[obs.RunReport] = None


def emit(title: str, body: str) -> None:
    """Log one labelled benchmark section and mirror it into the
    current benchmark's RunReport."""
    line = "=" * 72
    logger.info("\n%s\n%s\n%s\n%s", line, title, line, body)
    if _current_report is not None:
        _current_report.add_section(title, body)


def emit_records(title: str, records: Iterable[ExperimentRecord]) -> None:
    """Log a paper-vs-measured record table and store the structured
    records in the RunReport (the machine-readable form of the table)."""
    records = list(records)
    emit(title, format_records(records))
    if _current_report is not None:
        _current_report.add_records(records)


@pytest.fixture(scope="session", autouse=True)
def bench_golden_cache(tmp_path_factory):
    """Point the golden-run artifact cache at a per-session directory.

    Benchmarks measure cold-vs-warm behaviour themselves
    (``bench_golden_cache.py``); an ambient developer cache would turn
    intended cold runs warm and skew every timing.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("golden-cache")
    )
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(autouse=True)
def bench_report(request):
    """Observe each benchmark and write its RunReport JSON.

    The report lands as ``BENCH_<test name>.json`` in the working
    directory (or ``REPRO_BENCH_REPORT_DIR``), schema-validated.
    """
    global _current_report
    name = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    name = re.sub(r"^test_", "", name)
    report = obs.RunReport(
        kind="benchmark",
        label=f"bench:{request.node.name}",
        config={"defects": DEFECT_COUNT, "engine": BENCH_ENGINE},
    )
    _current_report = report
    try:
        with obs.session(detail="metrics") as session:
            yield report
            report.phases = session.spans.phases()
            report.metrics = session.registry.snapshot()
    finally:
        _current_report = None
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    path = report.save(REPORT_DIR / f"BENCH_{name}.json")
    logger.info("run report written to %s", path)


@pytest.fixture(scope="session")
def defect_count():
    return DEFECT_COUNT


@pytest.fixture(scope="session")
def engine():
    """Simulation engine for campaign benchmarks (REPRO_BENCH_ENGINE)."""
    return BENCH_ENGINE


@pytest.fixture(scope="session")
def address_setup():
    return default_address_bus_setup(defect_count=DEFECT_COUNT)


@pytest.fixture(scope="session")
def data_setup():
    return default_data_bus_setup(defect_count=DEFECT_COUNT)


@pytest.fixture(scope="session")
def builder():
    return SelfTestProgramBuilder()


@pytest.fixture(scope="session")
def address_program(builder):
    return builder.build_address_bus_program()


@pytest.fixture(scope="session")
def data_program(builder):
    return builder.build_data_bus_program()
