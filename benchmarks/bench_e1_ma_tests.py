"""E1 — Fig. 1: the MA test vector pairs for every victim.

Regenerates the paper's Fig. 1 table (MA tests for victim Yi) for the
demonstrator's buses and checks the fault-count arithmetic of Section 5
(48 address-bus MAFs, 64 data-bus MAFs).
"""

from conftest import emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.core.maf import (
    FaultType,
    MAFault,
    enumerate_bus_faults,
    ma_vector_pair,
)
from repro.soc.bus import BusDirection


def generate_fig1_table(width: int):
    rows = []
    for fault_type in FaultType:
        fault = MAFault(victim=width // 2, fault_type=fault_type, width=width)
        pair = ma_vector_pair(fault)
        rows.append(
            (
                fault_type.value,
                "stable 0" if fault_type is FaultType.POSITIVE_GLITCH
                else "stable 1" if fault_type is FaultType.NEGATIVE_GLITCH
                else "rising" if fault_type is FaultType.RISING_DELAY
                else "falling",
                f"{pair.v1:0{width}b}",
                f"{pair.v2:0{width}b}",
            )
        )
    return rows


def test_e1_ma_tests(benchmark):
    rows = benchmark.pedantic(
        generate_fig1_table, args=(12,), rounds=3, iterations=1
    )
    emit(
        "E1 / Fig. 1 — MA tests for the middle victim of the 12-bit address bus",
        format_table(("fault", "victim", "v1", "v2"), rows),
    )
    address = enumerate_bus_faults(12)
    data = enumerate_bus_faults(
        8, (BusDirection.MEM_TO_CPU, BusDirection.CPU_TO_MEM)
    )
    records = [
        ExperimentRecord("E1", "address-bus MAFs (12x4)", "48", str(len(address))),
        ExperimentRecord("E1", "data-bus MAFs (8x4x2)", "64", str(len(data))),
        ExperimentRecord(
            "E1",
            "unique MA pairs per bus",
            "4N",
            str(len({(ma_vector_pair(f).v1, ma_vector_pair(f).v2) for f in address})),
        ),
    ]
    emit_records("E1 — fault-count record", records)
    assert len(address) == 48 and len(data) == 64
