"""A1 — ablations of the reproduction's design choices.

Three knobs DESIGN.md calls out, each isolated:

* **response compaction** (Section 4.3) — program size and test time
  with and without the ADD-accumulated signatures;
* **bus geometry** — the edge-relaxed spacing profile versus a uniform
  one: the uniform bus loses the paper's zero-coverage side lines
  (every interior line then has center-like net coupling);
* **placement order** — who wins contested bytes is order-dependent;
  the line-major default is compared against family-major sweeps.
"""

from conftest import emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.core.maf import FaultType
from repro.core.program_builder import SelfTestProgramBuilder
from repro.core.signature import capture_golden
from repro.xtalk.calibration import calibrate
from repro.xtalk.capacitance import extract_capacitance
from repro.xtalk.defects import generate_defect_library
from repro.xtalk.geometry import BusGeometry
from repro.xtalk.params import ElectricalParams


def ablate_compaction():
    compact = SelfTestProgramBuilder(compact_data_bus=True)
    plain = SelfTestProgramBuilder(compact_data_bus=False)
    rows = []
    for name, builder in (("compacted", compact), ("individual", plain)):
        program = builder.build_data_bus_program()
        golden = capture_golden(program)
        responses = len(set(program.response_addresses))
        rows.append((name, program.program_size, golden.cycles, responses))
    return rows


def ablate_geometry(count=300):
    params = ElectricalParams()
    rows = []
    for name, geometry in (
        ("edge-relaxed", BusGeometry.edge_relaxed(12)),
        ("uniform", BusGeometry.uniform(12)),
    ):
        caps = extract_capacitance(geometry)
        calibration = calibrate(caps, params)
        library = generate_defect_library(
            caps, calibration, count=count, seed=2001
        )
        incidence = library.per_wire_incidence()
        zero_lines = [w + 1 for w, n in sorted(incidence.items()) if n == 0]
        rows.append((name, f"{calibration.cth:.0f} fF", str(zero_lines)))
    return rows


def ablate_order():
    rows = []
    for name, order in (
        ("line-major dr/gp/gn/df (default)", "family"),
        ("given: family-major dr,df,gp,gn", "given"),
    ):
        builder = SelfTestProgramBuilder(address_order=order)
        if order == "given":
            faults = sorted(
                builder.address_faults(),
                key=lambda f: (
                    [
                        FaultType.RISING_DELAY,
                        FaultType.FALLING_DELAY,
                        FaultType.POSITIVE_GLITCH,
                        FaultType.NEGATIVE_GLITCH,
                    ].index(f.fault_type),
                    f.victim,
                ),
            )
            program = builder.build_address_bus_program(faults)
        else:
            program = builder.build_address_bus_program()
        rows.append((name, f"{len(program.applied)}/48"))
    return rows


def run_all():
    return ablate_compaction(), ablate_geometry(), ablate_order()


def test_a1_ablations(benchmark):
    compaction, geometry, order = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    emit(
        "A1 — response compaction (data bus, 64 tests)",
        format_table(("mode", "bytes", "cycles", "response cells"), compaction),
    )
    emit(
        "A1 — geometry ablation (which lines never become defective)",
        format_table(("geometry", "Cth", "zero-defect lines"), geometry),
    )
    emit(
        "A1 — placement order ablation (address bus, single session)",
        format_table(("order", "applied"), order),
    )
    records = [
        ExperimentRecord(
            "A1", "compaction saves response traffic", "(motivates §4.3)",
            f"{compaction[1][3]} -> {compaction[0][3]} response cells",
        ),
        ExperimentRecord(
            "A1", "edge-relaxed geometry produces Fig. 11 side lines",
            "lines 1/2/11/12 defect-free",
            f"uniform geometry: {geometry[1][2]}",
        ),
    ]
    emit_records("A1 — record", records)
    # Compaction strictly shrinks the program and its response footprint.
    assert compaction[0][1] < compaction[1][1]
    assert compaction[0][3] < compaction[1][3]
    # Edge-relaxed geometry yields the paper's four zero-defect lines.
    assert geometry[0][2] == "[1, 2, 11, 12]"
