"""E5 — Section 5: data-bus defect coverage.

The paper applies all 64 data-bus MA tests (both driving directions,
ADD-compacted responses) and reports 100 % defect coverage.
"""

from conftest import emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.core.coverage import DefectSimulator
from repro.soc.bus import BusDirection


def test_e5_databus_coverage(benchmark, data_setup, builder, data_program,
                             engine):
    simulator = DefectSimulator(
        data_program, data_setup.params, data_setup.calibration, bus="data",
        engine=engine,
    )
    outcomes = benchmark.pedantic(
        simulator.run_library, args=(data_setup.library,), rounds=1, iterations=1
    )
    detected = sum(1 for o in outcomes if o.detected)
    coverage = detected / len(outcomes)

    per_direction = {
        direction: sum(
            1
            for t in data_program.applied
            if t.fault.direction is direction
        )
        for direction in BusDirection
    }
    rows = [
        ("mem -> cpu (LDA/ADD)", per_direction[BusDirection.MEM_TO_CPU]),
        ("cpu -> mem (STA)", per_direction[BusDirection.CPU_TO_MEM]),
    ]
    emit(
        "E5 — data-bus test application by direction",
        format_table(("direction", "tests applied"), rows),
    )
    records = [
        ExperimentRecord("E5", "data-bus tests applied", "64/64",
                         f"{len(data_program.applied)}/64"),
        ExperimentRecord("E5", "data-bus defect coverage", "100%",
                         f"{100 * coverage:.1f}%"),
        ExperimentRecord("E5", "timeouts among detected", "(not reported)",
                         str(sum(1 for o in outcomes if o.timed_out))),
    ]
    emit_records("E5 — record", records)
    assert coverage == 1.0
