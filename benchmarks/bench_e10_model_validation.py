"""E10 — validation of the lumped error model against the RC network.

The high-level error model reduces each transition to closed-form
glitch/delay thresholds; this experiment checks those reductions against
the coupled-RC network solution (scipy matrix-exponential propagation)
over a sample of defective capacitance sets and MA patterns:

* delay: the Miller-factor Elmore estimate versus the ODE 50 %-crossing;
* glitch: amplitude monotonicity and decision agreement using
  analogously calibrated ODE thresholds.
"""

from conftest import emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.core.maf import FaultType, MAFault, ma_vector_pair
from repro.soc.bus import BusDirection
from repro.xtalk.rc_model import worst_case_delay
from repro.xtalk.waveform import simulate_transition

SAMPLE = 40


#: A defect counts as "clear" when the victim's net coupling is at least
#: this far from Cth; near-threshold cases are ambiguous under *any* pair
#: of first-order models.
CLEAR_MARGIN = 0.10


def _victim_at_threshold(caps, calibration, victim):
    """The nominal bus with ``victim``'s couplings scaled onto Cth."""
    n = caps.wire_count
    scale = calibration.cth / caps.net_coupling(victim)
    factors = [[1.0] * n for _ in range(n)]
    for j, _ in caps.neighbours(victim):
        factors[victim][j] = factors[j][victim] = scale
    return caps.perturbed(factors)


def compare(address_setup):
    params = address_setup.params
    calibration = address_setup.calibration
    width = address_setup.caps.wire_count
    delay_ratios = []
    agree = {"all": 0, "clear": 0}
    total = {"all": 0, "clear": 0}
    threshold_cache = {}

    def ode_thresholds(victim):
        if victim not in threshold_cache:
            at_threshold = _victim_at_threshold(
                address_setup.caps, calibration, victim
            )
            dpair = ma_vector_pair(
                MAFault(
                    victim=victim, fault_type=FaultType.RISING_DELAY, width=width
                )
            )
            delay = simulate_transition(
                at_threshold, params, dpair.v1, dpair.v2
            ).delay_to_half(victim)
            gpair = ma_vector_pair(
                MAFault(
                    victim=victim,
                    fault_type=FaultType.POSITIVE_GLITCH,
                    width=width,
                )
            )
            glitch = simulate_transition(
                at_threshold, params, gpair.v1, gpair.v2
            ).glitch_peak(victim)
            threshold_cache[victim] = (delay, glitch)
        return threshold_cache[victim]

    def tally(is_clear, matches):
        total["all"] += 1
        agree["all"] += matches
        if is_clear:
            total["clear"] += 1
            agree["clear"] += matches

    for defect in list(address_setup.library)[:SAMPLE]:
        victim = defect.defective_wires[0]
        net = defect.caps.net_coupling(victim)
        clear = abs(net - calibration.cth) / calibration.cth >= CLEAR_MARGIN
        delay_threshold, glitch_threshold = ode_thresholds(victim)

        dpair = ma_vector_pair(
            MAFault(victim=victim, fault_type=FaultType.RISING_DELAY, width=width)
        )
        waveform = simulate_transition(defect.caps, params, dpair.v1, dpair.v2)
        ode_delay = waveform.delay_to_half(victim)
        lumped = worst_case_delay(
            defect.caps, params, victim, BusDirection.CPU_TO_MEM
        )
        if ode_delay != float("inf"):
            delay_ratios.append(ode_delay / lumped)
        lumped_fails = lumped > calibration.margin_for(BusDirection.CPU_TO_MEM)
        tally(clear, lumped_fails == (ode_delay > delay_threshold))

        gp = ma_vector_pair(
            MAFault(
                victim=victim, fault_type=FaultType.POSITIVE_GLITCH, width=width
            )
        )
        gw = simulate_transition(defect.caps, params, gp.v1, gp.v2)
        tally(clear, (net > calibration.cth)
              == (gw.glitch_peak(victim) > glitch_threshold))
    return delay_ratios, agree, total


def test_e10_model_validation(benchmark, address_setup):
    delay_ratios, agree, total = benchmark.pedantic(
        compare, args=(address_setup,), rounds=1, iterations=1
    )
    clear_rate = agree["clear"] / max(1, total["clear"])
    all_rate = agree["all"] / max(1, total["all"])
    rows = [
        ("delay ratio (ODE/lumped) min", f"{min(delay_ratios):.3f}"),
        ("delay ratio (ODE/lumped) max", f"{max(delay_ratios):.3f}"),
        ("decision agreement (all defects)",
         f"{agree['all']}/{total['all']} ({100 * all_rate:.1f}%)"),
        (f"decision agreement (margin > {CLEAR_MARGIN:.0%})",
         f"{agree['clear']}/{total['clear']} ({100 * clear_rate:.1f}%)"),
    ]
    emit(
        "E10 — lumped error model vs coupled-RC network "
        f"({SAMPLE} defects, MA patterns)",
        format_table(("quantity", "value"), rows),
    )
    records = [
        ExperimentRecord(
            "E10",
            "lumped/ODE pass-fail agreement (clear cases)",
            "(model adopted from [1])",
            f"{100 * clear_rate:.1f}%",
            note="near-threshold cases are ambiguous in any model pair",
        ),
        ExperimentRecord(
            "E10",
            "Elmore delay tracking",
            "(first-order)",
            f"within {100 * (max(delay_ratios) - 1):.0f}% above, "
            f"{100 * (1 - min(delay_ratios)):.0f}% below",
        ),
    ]
    emit_records("E10 — record", records)
    assert clear_rate >= 0.9
    assert 0.5 < min(delay_ratios) and max(delay_ratios) < 2.0
