"""Parallel campaign — the Fig. 11 sweep sharded over worker processes.

Times the E4 per-line address-bus campaign through the campaign layer's
process backend at each worker count in ``REPRO_BENCH_WORKERS``
(default 1, 2, 4) and — always, whatever the library size — asserts
that every worker count produces a coverage report **bit-identical** to
the serial exact engine (per-line detected sets included).  The
equality assertion is what the CI parallel-smoke job (2 workers, 50
defects) is for; the wall-clock floor only applies at representative
library sizes, where per-shard fixed costs (fork, per-worker golden
capture) are amortized.

A journal-resumed run is also checked for identity: the serial
campaign is interrupted halfway (journal truncated to half its
records) and resumed in parallel — the paper's campaign numbers must
not depend on who computed which half.
"""

import os
import time

from conftest import DEFECT_COUNT, WORKER_COUNTS, emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.core.coverage import address_bus_line_coverage

#: Below this library size, fixed campaign costs (program building,
#: per-worker golden capture, pool startup) dominate and wall-clock
#: ratios are noise — the speedup floor is only enforced at
#: representative sizes.
SPEEDUP_MIN_DEFECTS = 500
#: Required wall-clock speedup of the 4-worker sweep over serial.
SPEEDUP_AT_4_WORKERS = 1.7
#: The 4-worker floor additionally requires this much hardware: on a
#: core-starved host (e.g. a single-CPU container) worker processes
#: time-slice one core and parallelism can only lose.  Coverage
#: equality is asserted regardless — only the wall-clock gate is
#: hardware-conditional.
MIN_CPUS_FOR_FLOOR = 4

try:
    AVAILABLE_CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # non-Linux
    AVAILABLE_CPUS = os.cpu_count() or 1


def _series(report):
    """The backend-independent content of a coverage report."""
    return [
        (line.line, line.individual, line.cumulative, frozenset(line.detected))
        for line in report.lines
    ]


def test_campaign_parallel(benchmark, address_setup, builder, tmp_path):
    start = time.perf_counter()
    serial_report = address_bus_line_coverage(
        address_setup.library, address_setup.params,
        address_setup.calibration, builder=builder, engine="exact",
    )
    serial_time = time.perf_counter() - start
    serial_series = _series(serial_report)

    timings = {1: serial_time}
    for workers in WORKER_COUNTS:
        if workers == 1:
            continue
        start = time.perf_counter()
        report = address_bus_line_coverage(
            address_setup.library, address_setup.params,
            address_setup.calibration, builder=builder, engine="exact",
            workers=workers,
        )
        timings[workers] = time.perf_counter() - start
        # Hard contract, enforced at every library size: identical
        # coverage at every worker count.
        assert _series(report) == serial_series, (
            f"{workers}-worker campaign disagrees with serial coverage"
        )

    # Interrupt-and-resume must also be invisible in the results: run
    # journaled, keep only the first half of the records, resume with
    # the highest worker count.
    journal = tmp_path / "fig11.jsonl"
    address_bus_line_coverage(
        address_setup.library, address_setup.params,
        address_setup.calibration, builder=builder, engine="exact",
        journal=journal,
    )
    lines = journal.read_text().splitlines(keepends=True)
    with open(journal, "w") as stream:
        stream.writelines(lines[: len(lines) // 2])
    resumed_report = address_bus_line_coverage(
        address_setup.library, address_setup.params,
        address_setup.calibration, builder=builder, engine="exact",
        workers=max(WORKER_COUNTS), journal=journal, resume=True,
    )
    assert _series(resumed_report) == serial_series, (
        "journal-resumed campaign disagrees with serial coverage"
    )

    rows = [
        (f"{workers} worker{'s' if workers > 1 else ''}",
         f"{seconds:.2f}s", f"{serial_time / seconds:.2f}x")
        for workers, seconds in sorted(timings.items())
    ]
    emit(
        f"parallel campaign — E4 per-line sweep, {DEFECT_COUNT} defects, "
        f"exact engine, {AVAILABLE_CPUS} CPU(s) available",
        format_table(("backend", "wall clock", "speedup vs serial"), rows),
    )

    # Time the fastest configuration for the pytest-benchmark record.
    best_workers = min(timings, key=timings.get)
    benchmark.pedantic(
        address_bus_line_coverage,
        args=(address_setup.library, address_setup.params,
              address_setup.calibration),
        kwargs={"builder": builder, "engine": "exact",
                "workers": best_workers},
        rounds=1,
        iterations=1,
    )

    records = [
        ExperimentRecord(
            "campaign", "parallel == serial coverage (all worker counts)",
            "identical", "identical",
        ),
        ExperimentRecord(
            "campaign", "journal-resumed == serial coverage",
            "identical", "identical",
        ),
    ]
    speedup_at_4 = None
    if 4 in timings:
        speedup_at_4 = serial_time / timings[4]
        records.append(ExperimentRecord(
            "campaign", "4-worker speedup",
            f">= {SPEEDUP_AT_4_WORKERS}x at {SPEEDUP_MIN_DEFECTS}+ "
            f"defects on {MIN_CPUS_FOR_FLOOR}+ CPUs",
            f"{speedup_at_4:.2f}x on {AVAILABLE_CPUS} CPU(s)",
        ))
    emit_records("parallel campaign — record", records)

    if DEFECT_COUNT >= SPEEDUP_MIN_DEFECTS and speedup_at_4 is not None:
        if AVAILABLE_CPUS >= MIN_CPUS_FOR_FLOOR:
            assert speedup_at_4 >= SPEEDUP_AT_4_WORKERS, (
                f"4 workers only {speedup_at_4:.2f}x faster than serial"
            )
        else:
            # No silent gating: say exactly why the floor did not apply.
            emit(
                "parallel campaign — speedup floor skipped",
                f"only {AVAILABLE_CPUS} CPU(s) available "
                f"(< {MIN_CPUS_FOR_FLOOR}); measured "
                f"{speedup_at_4:.2f}x at 4 workers — coverage equality "
                "was still asserted at every worker count",
            )
