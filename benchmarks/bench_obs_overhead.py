"""OBS — observability overhead on the E4 (Fig. 11) kernel.

The acceptance gate for the telemetry layer: running the per-line
address-bus coverage campaign with metrics collection enabled must cost
less than 5 % over the no-op path.

Measuring a ~1 % effect on a shared machine needs care: wall-clock noise
between identical runs here reaches tens of percent (scheduler
contention, frequency scaling), and it is auto-correlated over seconds,
so a handful of long repeats cannot resolve the gate.  The procedure
that works:

* many short rounds (a reduced defect library keeps one kernel run well
  under a second), alternating/rotating the arm order each round so no
  arm is systematically measured during the slow phase of a round;
* garbage collection disabled during timing, removing both random GC
  pauses and the systematic pause difference between arms (the enabled
  arm allocates more);
* the per-arm MINIMUM over all rounds — noise is additive and
  one-sided, so with enough rounds each arm's minimum converges to its
  quiet-window cost, which is the true cost of the code path.

The ``full`` detail level (per-cycle FSM occupancy, per-defect spans)
is measured too but only reported — it trades speed for depth by
design.
"""

import gc
import time

from conftest import DEFECT_COUNT, emit, emit_records

from repro import default_address_bus_setup
from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.core.coverage import address_bus_line_coverage
from repro.core.program_builder import SelfTestProgramBuilder
from repro.obs import runtime as obs_runtime
from repro.obs import session

#: The comparison needs many repeats of the E4 kernel, so it runs on a
#: reduced library regardless of REPRO_BENCH_DEFECTS.
OVERHEAD_DEFECTS = min(DEFECT_COUNT, 20)
ROUNDS = 30
OVERHEAD_BUDGET = 0.05


def test_obs_overhead_e4(benchmark):
    setup = default_address_bus_setup(defect_count=OVERHEAD_DEFECTS)
    builder = SelfTestProgramBuilder()

    def workload():
        return address_bus_line_coverage(
            setup.library, setup.params, setup.calibration, builder=builder
        )

    def run_noop():
        with obs_runtime.suspended():
            workload()

    def run_metrics():
        # The autouse bench fixture already has a metrics-level session
        # active, so this is the instrumented arm as benchmarks see it.
        workload()

    def run_full():
        with session(detail="full"):
            workload()

    # Warm every arm (allocator pools, bytecode specialization); an
    # unwarmed arm reads several percent slow on its first round.
    run_noop()
    run_metrics()
    run_full()

    arms = (("noop", run_noop), ("metrics", run_metrics),
            ("full", run_full))
    times = {name: [] for name, _ in arms}
    gc.collect()
    gc.disable()
    try:
        for round_index in range(ROUNDS):
            for offset in range(len(arms)):
                arm, runner = arms[(round_index + offset) % len(arms)]
                start = time.perf_counter()
                runner()
                times[arm].append(time.perf_counter() - start)
    finally:
        gc.enable()

    benchmark.pedantic(run_noop, rounds=1, iterations=1)

    best = {arm: min(samples) for arm, samples in times.items()}
    metrics_overhead = best["metrics"] / best["noop"] - 1.0
    full_overhead = best["full"] / best["noop"] - 1.0
    rows = [
        ("disabled (no-op)", f"{1e3 * best['noop']:.1f} ms", "baseline"),
        ("enabled, detail=metrics", f"{1e3 * best['metrics']:.1f} ms",
         f"{100 * metrics_overhead:+.2f}%"),
        ("enabled, detail=full", f"{1e3 * best['full']:.1f} ms",
         f"{100 * full_overhead:+.2f}%"),
    ]
    emit(
        f"OBS — instrumentation overhead on the E4 kernel "
        f"({OVERHEAD_DEFECTS} defects, min over {ROUNDS} "
        f"order-rotated rounds, gc off)",
        format_table(("mode", "wall time", "overhead"), rows),
    )
    records = [
        ExperimentRecord("OBS", "metrics-mode overhead on E4", "< 5%",
                         f"{100 * metrics_overhead:.2f}%"),
        ExperimentRecord("OBS", "full-detail overhead on E4",
                         "(not budgeted)", f"{100 * full_overhead:.2f}%",
                         note="adds per-cycle FSM occupancy + spans"),
    ]
    emit_records("OBS — record", records)
    assert metrics_overhead < OVERHEAD_BUDGET
