"""E9 — Section 5 overlap claim.

"A large overlap exists among the defects set detected by different MA
tests.  Of all the defects detectable by one MA test, only a tiny
fraction cannot be detected by any other MA tests."  This is why the
paper's program reaches 100 % coverage despite 7 missing tests.
"""

from conftest import emit, emit_records

from repro.analysis.records import ExperimentRecord
from repro.analysis.tables import format_table
from repro.core.coverage import address_bus_line_coverage


def test_e9_overlap(benchmark, address_setup, builder, engine):
    report = benchmark.pedantic(
        address_bus_line_coverage,
        args=(address_setup.library, address_setup.params,
              address_setup.calibration),
        kwargs={"builder": builder, "engine": engine},
        rounds=1,
        iterations=1,
    )
    total = report.library_size
    detected_sets = {line.line: line.detected for line in report.lines}
    all_detected = set().union(*detected_sets.values())
    exclusive = {
        line: len(
            detected
            - set().union(
                *(d for other, d in detected_sets.items() if other != line)
            )
        )
        for line, detected in detected_sets.items()
    }
    rows = [
        (line, len(detected_sets[line]), exclusive[line])
        for line in sorted(detected_sets)
    ]
    emit(
        "E9 — overlap between per-line MA test detected sets",
        format_table(("line", "detected", "exclusively detected"), rows),
    )
    exclusive_total = sum(exclusive.values())
    records = [
        ExperimentRecord(
            "E9",
            "defects detected by exactly one line's tests",
            "a tiny fraction",
            f"{exclusive_total}/{len(all_detected)} "
            f"({100 * exclusive_total / max(1, len(all_detected)):.1f}%)",
        ),
        ExperimentRecord(
            "E9",
            "coverage without any single line's tests",
            "still ~100%",
            f">= {100 * (len(all_detected) - max(exclusive.values())) / total:.1f}%",
        ),
    ]
    emit_records("E9 — record", records)
    assert exclusive_total < 0.25 * len(all_detected)
