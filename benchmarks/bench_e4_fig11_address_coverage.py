"""E4 — Fig. 11: individual and cumulative defect coverage per
address-bus interconnect.

The paper's headline figure: per-line MA test programs evaluated against
the 1000-defect library; side lines (1, 2, 11, 12) show zero individual
coverage; the cumulative coverage reaches 100 %.
"""

from conftest import emit, emit_records

from repro.analysis.charts import coverage_chart
from repro.analysis.records import ExperimentRecord
from repro.core.coverage import address_bus_line_coverage


def test_e4_fig11(benchmark, address_setup, builder, address_program, engine):
    report = benchmark.pedantic(
        address_bus_line_coverage,
        args=(address_setup.library, address_setup.params,
              address_setup.calibration),
        kwargs={"builder": builder, "full_program": address_program,
                "engine": engine},
        rounds=1,
        iterations=1,
    )
    emit(
        "E4 / Fig. 11 — crosstalk defect coverage of MA test programs "
        f"({report.library_size} defects)",
        coverage_chart(
            [(l.line, l.individual, l.cumulative) for l in report.lines]
        ),
    )
    lines = {l.line: l for l in report.lines}
    records = [
        ExperimentRecord("E4/Fig.11", "individual coverage, lines 1/2/11/12",
                         "0", f"{lines[1].individual:.2f}/"
                              f"{lines[2].individual:.2f}/"
                              f"{lines[11].individual:.2f}/"
                              f"{lines[12].individual:.2f}"),
        ExperimentRecord("E4/Fig.11", "center lines dominate", "yes",
                         f"line6 ind = {lines[6].individual:.2f}"),
        ExperimentRecord("E4/Fig.11", "cumulative coverage", "100%",
                         f"{100 * report.cumulative_coverage:.1f}%"),
        ExperimentRecord("E4/Fig.11", "full-program coverage", "100%",
                         f"{100 * report.full_program_coverage:.1f}%",
                         note="despite skipped tests (overlap)"),
    ]
    emit_records("E4 — record", records)
    assert lines[1].individual == lines[12].individual == 0.0
    assert report.cumulative_coverage >= 0.99
    assert report.full_program_coverage >= 0.99
